"""repro — an executable reproduction of *A Distributed Systems
Perspective on Industrial IoT* (Konrad Iwanicki, ICDCS 2018).

The paper is a vision piece: it defines the sensing-and-actuation layer
of industrial IoT (Fig. 1) and analyzes it along interoperability,
scalability, and dependability.  This library realizes that analysis as
a running system: a deterministic simulation of constrained wireless
devices, a full low-power network stack (duty-cycled MACs, RPL-style
routing with RNFD and partition handling), CoAP middleware with legacy
gateways, CRDT replication, in-network aggregation, an HVAC soft-safety
case study, security machinery, and fault injection — plus an
experiment harness that regenerates a quantitative result for every
claim the paper makes (see DESIGN.md and EXPERIMENTS.md).

Quick start::

    from repro import IIoTSystem, grid_topology

    system = IIoTSystem.build(grid_topology(side=5), seed=1)
    system.start()
    system.run(300.0)
    print(f"joined: {system.joined_fraction():.0%}")
"""

from repro.core.system import IIoTSystem, SystemConfig
from repro.deployment.topology import (
    CampusTopology,
    Topology,
    building_topology,
    campus_topology,
    clustered_site_topology,
    grid_topology,
    line_topology,
    random_topology,
)
from repro.net.stack import NetworkStack, StackConfig
from repro.parallel import TrialExecutor
from repro.radio.medium import Medium, Radio
from repro.radio.propagation import LogDistanceModel, UnitDiskModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog

__version__ = "1.0.0"

__all__ = [
    "IIoTSystem",
    "LogDistanceModel",
    "Medium",
    "NetworkStack",
    "Radio",
    "Simulator",
    "StackConfig",
    "SystemConfig",
    "Topology",
    "TraceLog",
    "TrialExecutor",
    "UnitDiskModel",
    "__version__",
    "building_topology",
    "clustered_site_topology",
    "grid_topology",
    "line_topology",
    "random_topology",
]
