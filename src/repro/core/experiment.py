"""Seeded parameter sweeps.

Every benchmark is a sweep: for each parameter value, run the scenario
under several seeds and reduce the per-trial metrics to means.  Seeds
are derived deterministically so re-running a benchmark reproduces its
table exactly — including under ``jobs > 1``, where trials execute on a
process pool but are merged back strictly by trial index (see
:mod:`repro.parallel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.parallel import TrialExecutor


def seeds_for(base: int, repetitions: int) -> List[int]:
    """Deterministic seed list for one sweep point."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    return [base * 10_007 + i * 7919 + 1 for i in range(repetitions)]


@dataclass
class Trial:
    """One scenario run: its parameters, seed, and measured metrics."""

    params: Dict[str, Any]
    seed: int
    metrics: Dict[str, float]


@dataclass
class Sweep:
    """A one-dimensional parameter sweep with repetitions.

    ``scenario(value, seed)`` runs one trial and returns a metric dict;
    :meth:`run` accumulates trials, :meth:`rows` averages them per
    sweep value in insertion order.
    """

    parameter: str
    trials: List[Trial] = field(default_factory=list)

    def run(
        self,
        values: Sequence[Any],
        scenario: Callable[[Any, int], Dict[str, float]],
        repetitions: int = 3,
        base_seed: int = 1,
        on_trial: Optional[Callable[[Trial], None]] = None,
        jobs: int = 1,
    ) -> "Sweep":
        """Execute the sweep deterministically, optionally in parallel.

        ``jobs`` > 1 runs trials on a process pool
        (:class:`~repro.parallel.TrialExecutor`); results are merged by
        trial index, never by arrival order, so the trial list — and
        therefore :meth:`rows` — is byte-identical to a serial run.
        Scenarios that cannot be pickled (closures, lambdas) silently
        fall back to serial execution.

        ``on_trial``, when given, observes each completed trial — e.g.
        to assert per-run invariants or stream progress — without
        affecting the sweep itself.  It always runs in the parent
        process, in trial order.
        """
        tasks: List[Tuple[Any, int]] = [
            (value, seed)
            for index, value in enumerate(values)
            for seed in seeds_for(base_seed + index, repetitions)
        ]
        executor = TrialExecutor(jobs)
        for (value, seed), metrics in zip(tasks, executor.imap(scenario, tasks)):
            trial = Trial(params={self.parameter: value}, seed=seed,
                          metrics=metrics)
            self.trials.append(trial)
            if on_trial is not None:
                on_trial(trial)
        return self

    def rows(self) -> List[Dict[str, Any]]:
        """Per-value mean of every metric, in sweep order.

        Every row carries the same metric columns, in first-appearance
        order over the trial list (deterministic for any ``jobs`` count,
        because trials are index-ordered).  A metric missing from *all*
        trials of a value renders as ``float("nan")``; a metric present
        in only some of them averages over the trials that reported it.
        """
        ordered: List[Any] = []
        grouped: Dict[Any, List[Trial]] = {}
        metric_names: List[str] = []
        for trial in self.trials:
            value = trial.params[self.parameter]
            if value not in grouped:
                grouped[value] = []
                ordered.append(value)
            grouped[value].append(trial)
            for name in trial.metrics:
                if name not in metric_names:
                    metric_names.append(name)
        rows = []
        for value in ordered:
            trials = grouped[value]
            row: Dict[str, Any] = {self.parameter: value}
            for name in metric_names:
                samples = [
                    t.metrics[name] for t in trials if name in t.metrics
                ]
                row[name] = sum(samples) / len(samples) if samples else math.nan
            rows.append(row)
        return rows
