"""Seeded parameter sweeps.

Every benchmark is a sweep: for each parameter value, run the scenario
under several seeds and reduce the per-trial metrics to means.  Seeds
are derived deterministically so re-running a benchmark reproduces its
table exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


def seeds_for(base: int, repetitions: int) -> List[int]:
    """Deterministic seed list for one sweep point."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    return [base * 10_007 + i * 7919 + 1 for i in range(repetitions)]


@dataclass
class Trial:
    """One scenario run: its parameters, seed, and measured metrics."""

    params: Dict[str, Any]
    seed: int
    metrics: Dict[str, float]


@dataclass
class Sweep:
    """A one-dimensional parameter sweep with repetitions.

    ``scenario(value, seed)`` runs one trial and returns a metric dict;
    :meth:`run` accumulates trials, :meth:`rows` averages them per
    sweep value in insertion order.
    """

    parameter: str
    trials: List[Trial] = field(default_factory=list)

    def run(
        self,
        values: Sequence[Any],
        scenario: Callable[[Any, int], Dict[str, float]],
        repetitions: int = 3,
        base_seed: int = 1,
        on_trial: Optional[Callable[[Trial], None]] = None,
    ) -> "Sweep":
        """Execute the sweep (synchronously, deterministically).

        ``on_trial``, when given, observes each completed trial — e.g.
        to assert per-run invariants or stream progress — without
        affecting the sweep itself.
        """
        for index, value in enumerate(values):
            for seed in seeds_for(base_seed + index, repetitions):
                metrics = scenario(value, seed)
                trial = Trial(params={self.parameter: value}, seed=seed,
                              metrics=metrics)
                self.trials.append(trial)
                if on_trial is not None:
                    on_trial(trial)
        return self

    def rows(self) -> List[Dict[str, Any]]:
        """Per-value mean of every metric, in sweep order."""
        ordered: List[Any] = []
        grouped: Dict[Any, List[Trial]] = {}
        for trial in self.trials:
            value = trial.params[self.parameter]
            if value not in grouped:
                grouped[value] = []
                ordered.append(value)
            grouped[value].append(trial)
        rows = []
        for value in ordered:
            trials = grouped[value]
            row: Dict[str, Any] = {self.parameter: value}
            metric_names: List[str] = []
            for trial in trials:
                for name in trial.metrics:
                    if name not in metric_names:
                        metric_names.append(name)
            for name in metric_names:
                samples = [
                    t.metrics[name] for t in trials if name in t.metrics
                ]
                row[name] = sum(samples) / len(samples) if samples else float("nan")
            rows.append(row)
        return rows
