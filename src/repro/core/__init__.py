"""The core library: the paper's architecture, executable.

- :mod:`repro.core.system` — :class:`IIoTSystem`, the three-tier
  architecture of Fig. 1 (sensing/actuation, application logic, data
  storage) assembled over a simulated deployment;
- :mod:`repro.core.metrics` — cross-layer measurement: delivery,
  latency, duty cycle, energy, convergence;
- :mod:`repro.core.experiment` — seeded parameter sweeps;
- :mod:`repro.core.report` — the ASCII tables the benchmarks print;
- :mod:`repro.core.taxonomy` — the paper's evaluation axes
  (interoperability, scalability, dependability) as first-class
  assessments over measured data.
"""

from repro.core.analysis import (
    IntervalEstimate,
    LinearFit,
    confidence_interval,
    linear_fit,
    sweep_intervals,
)
from repro.core.experiment import Sweep, Trial, seeds_for
from repro.core.metrics import (
    EnergySummary,
    NetworkSummary,
    collect_energy,
    collect_network,
    percentile,
)
from repro.core.report import ascii_table, format_value, write_csv
from repro.core.system import IIoTSystem, SystemConfig
from repro.core.taxonomy import (
    AxisAssessment,
    DependabilityReport,
    ScalabilityReport,
    assess_dependability,
    assess_scalability,
)

__all__ = [
    "AxisAssessment",
    "DependabilityReport",
    "EnergySummary",
    "IIoTSystem",
    "IntervalEstimate",
    "LinearFit",
    "confidence_interval",
    "linear_fit",
    "sweep_intervals",
    "NetworkSummary",
    "ScalabilityReport",
    "Sweep",
    "SystemConfig",
    "Trial",
    "ascii_table",
    "assess_dependability",
    "assess_scalability",
    "collect_energy",
    "collect_network",
    "format_value",
    "percentile",
    "seeds_for",
    "write_csv",
]
