"""IIoTSystem: Fig. 1 of the paper, assembled and runnable.

The three logical tiers:

- **sensing and actuation** — :class:`~repro.devices.node.DeviceNode`
  instances on a shared medium, built from a
  :class:`~repro.deployment.topology.Topology`;
- **application logic** — the border router's services: the middleware
  :class:`~repro.middleware.gateway.Gateway`, aggregation roots, remote
  controllers;
- **data storage** — an in-memory time-series store fed by the
  application tier (a real deployment would put a historian here; the
  substitution preserves the interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.deployment.topology import Topology
from repro.devices.node import DeviceNode
from repro.devices.platform import CLASS_1_MOTE, CLASS_2_GATEWAY, PlatformProfile
from repro.middleware.gateway import Gateway
from repro.net.rpl.dodag import RplState
from repro.net.stack import StackConfig
from repro.radio.medium import Medium
from repro.radio.propagation import LinkQualityModel, UnitDiskModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class SystemConfig:
    """How to materialize a topology into a running system."""

    stack: StackConfig = field(default_factory=StackConfig)
    node_platform: PlatformProfile = CLASS_1_MOTE
    root_platform: PlatformProfile = CLASS_2_GATEWAY
    trace_enabled: bool = True
    #: Attach the default runtime invariant checkers (repro.checking).
    #: Off by default so benchmarks pay nothing; checkers are passive
    #: observers, so enabling them does not change simulation outcomes.
    invariant_checking: bool = False
    #: Attach the observability layer (repro.obs): metrics registry +
    #: packet-lifecycle span tracing.  Off by default; like checking it
    #: observes without perturbing event order or RNG state.
    observability: bool = False
    #: Fraction of span *traces* to store (1.0 = everything).  Sampling
    #: is deterministic and derived from the run seed — never
    #: wall-clock — and only thins stored spans: metrics stay exact and
    #: the simulation is never perturbed.  Ignored (forced to 1.0)
    #: under gated runs (``REPRO_BENCH_CHECK=1``).
    span_sample_rate: float = 1.0
    #: Ring-buffer bound on stored spans (None = unbounded).  When
    #: full, oldest spans are evicted first, except the gated
    #: categories in :data:`repro.obs.GATED_SPAN_CATEGORIES`, which are
    #: never dropped.  Ignored under gated runs.
    span_max_stored: Optional[int] = None
    #: Allow the medium's spatial grid index (repro.radio.medium).  The
    #: index is trace-exact, so this exists only for A/B benchmarking
    #: against the brute-force scans.
    medium_spatial_index: bool = True
    #: Windowed telemetry scrape period in sim seconds (repro.obs.
    #: timeseries).  None (the default) attaches no engine and keeps
    #: the zero-diff guarantee of uninstrumented runs; a value requires
    #: ``observability=True`` and *does* schedule simulator events (the
    #: scrape timer), like NodeHealthSampler.  Enabling it also attaches
    #: the flight recorder (repro.obs.recorder).
    telemetry_interval_s: Optional[float] = None
    #: Telemetry retention-ring depth: how many closed windows the
    #: engine keeps (older ones are counted as dropped, never silently
    #: lost).  Bounds telemetry memory at city scale.
    telemetry_retention: int = 120
    #: Use fixed-bucket log-scale histogram sketches instead of exact
    #: value series (repro.obs.registry.SketchHistogram).  Opt-in:
    #: exact histograms remain the default so diff baselines and
    #: percentile semantics are unchanged unless a run asks for
    #: bounded-memory histograms.
    histogram_sketch: bool = False
    #: Histogram exemplar reservoir bound: keep at most this many
    #: ``(value, trace_id)`` exemplars per log bucket per series
    #: (repro.obs.registry).  Exemplars annotate metrics — they never
    #: change counter/gauge/histogram values, so gated runs and diff
    #: baselines are unaffected at any setting.  0 disables exemplars.
    exemplar_max_per_bucket: int = 4
    #: Trickle variant override for every node's DIO timer, one of
    #: :data:`repro.net.rpl.trickle.TRICKLE_VARIANTS` ("classic",
    #: "adaptive-imin", "adaptive-k").  None keeps whatever
    #: ``StackConfig.rpl.trickle_variant`` says (default classic); a
    #: value replaces the stack's RplConfig so whole-system experiments
    #: flip the variant axis with one knob.
    trickle_variant: Optional[str] = None


class TimeSeriesStore:
    """The data-storage tier: named (time, value) series."""

    def __init__(self) -> None:
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    def append(self, name: str, time: float, value: float) -> None:
        """Record one point."""
        self.series.setdefault(name, []).append((time, value))

    def query(self, name: str, since: float = float("-inf"),
              until: float = float("inf")) -> List[Tuple[float, float]]:
        """Points of one series inside a time window."""
        return [
            (t, v) for t, v in self.series.get(name, [])
            if since <= t <= until
        ]

    def latest(self, name: str) -> Optional[Tuple[float, float]]:
        points = self.series.get(name)
        return points[-1] if points else None

    def __len__(self) -> int:
        return len(self.series)


class IIoTSystem:
    """A complete industrial IoT system over a simulated deployment."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        trace: TraceLog,
        topology: Topology,
        config: SystemConfig,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.trace = trace
        self.topology = topology
        self.config = config
        self.nodes: Dict[int, DeviceNode] = {}
        self.storage = TimeSeriesStore()
        self._gateway: Optional[Gateway] = None
        self._activated: set = set()
        self.obs = None
        self.telemetry = None
        self.recorder = None
        if config.trickle_variant is not None:
            # Validate the name up front (a typo should fail the build,
            # not the first node), then push it into the stack's RPL
            # config so every router picks it up.
            from repro.net.rpl.trickle import make_trickle_variant
            make_trickle_variant(config.trickle_variant)
            config.stack.rpl = replace(
                config.stack.rpl, trickle_variant=config.trickle_variant)
        if config.telemetry_interval_s is not None and not config.observability:
            raise ValueError(
                "SystemConfig(telemetry_interval_s=...) requires "
                "observability=True: the engine scrapes the obs registry")
        if config.observability:
            # Imported lazily, mirroring the checking import below.
            from repro.obs import Observability
            self.obs = Observability(
                span_sample_rate=config.span_sample_rate,
                span_seed=sim.seed,
                span_max=config.span_max_stored,
                histogram_sketch=config.histogram_sketch,
                exemplar_max_per_bucket=config.exemplar_max_per_bucket,
            )
            self.obs.attach(trace)
            if config.telemetry_interval_s is not None:
                from repro.obs.recorder import FlightRecorder
                from repro.obs.timeseries import TelemetryEngine
                self.telemetry = TelemetryEngine.for_system(
                    self, interval_s=config.telemetry_interval_s,
                    retention=config.telemetry_retention)
                self.recorder = FlightRecorder(self.telemetry,
                                               spans=self.obs.spans)
                self.obs.telemetry = self.telemetry
                self.obs.recorder = self.recorder
        self._build_nodes()
        self.checkers = None
        if config.invariant_checking:
            # Imported lazily: checking depends on this module's peers.
            from repro.checking import default_suite
            self.checkers = default_suite(self)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        topology: Topology,
        config: Optional[SystemConfig] = None,
        link_model: Optional[LinkQualityModel] = None,
        seed: int = 0,
    ) -> "IIoTSystem":
        """Materialize a topology into an (unstarted) system."""
        config = config if config is not None else SystemConfig()
        sim = Simulator(seed=seed)
        trace = TraceLog(enabled=config.trace_enabled)
        model = link_model if link_model is not None else UnitDiskModel(radius_m=25.0)
        medium = Medium(sim, model, trace,
                        spatial_index=config.medium_spatial_index)
        return cls(sim, medium, trace, topology, config)

    def _build_nodes(self) -> None:
        for node_id in self.topology.node_ids():
            is_root = node_id == self.topology.root_id
            platform = (
                self.config.root_platform if is_root
                else self.config.node_platform
            )
            self.nodes[node_id] = DeviceNode(
                self.sim, self.medium, node_id,
                self.topology.positions[node_id],
                stack_config=self.config.stack,
                platform=platform,
                is_root=is_root,
                trace=self.trace,
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def root(self) -> DeviceNode:
        """The border router."""
        return self.nodes[self.topology.root_id]

    def start(self, node_ids: Optional[List[int]] = None) -> None:
        """Activate nodes (all, or a rollout stage's subset).

        The root activates with the first call regardless of subset —
        nothing joins a DODAG without its root.
        """
        targets = node_ids if node_ids is not None else self.topology.node_ids()
        if self.telemetry is not None:
            self.telemetry.start()  # idempotent; first window one interval in
        if self.topology.root_id not in self._activated:
            self.root.start()
            self._activated.add(self.topology.root_id)
        for node_id in targets:
            if node_id in self._activated:
                continue
            self.nodes[node_id].start()
            self._activated.add(node_id)

    def activate(self, node_id: int) -> None:
        """Activate one node (rollout callback form)."""
        self.start([node_id])

    def run(self, duration_s: float) -> None:
        """Advance simulated time by ``duration_s``."""
        self.sim.run(until=self.sim.now + duration_s)

    # ------------------------------------------------------------------
    # application-logic tier
    # ------------------------------------------------------------------
    @property
    def gateway(self) -> Gateway:
        """The middleware gateway (created on first access)."""
        if self._gateway is None:
            self._gateway = Gateway(self.root.stack, trace=self.trace)
        return self._gateway

    def add_field_sensors(
        self, name: str, phenomenon, skip_root: bool = True
    ) -> None:
        """Attach one phenomenon-observing sensor to every device."""
        for node in self.nodes.values():
            if skip_root and node.is_root:
                continue
            node.add_sensor(name, phenomenon)

    # ------------------------------------------------------------------
    # health introspection
    # ------------------------------------------------------------------
    def joined_fraction(self) -> float:
        """Fraction of activated non-root nodes joined to the DODAG."""
        members = [
            self.nodes[nid] for nid in self._activated
            if nid != self.topology.root_id
        ]
        if not members:
            return 1.0
        joined = sum(
            1 for node in members
            if node.stack.rpl.state is RplState.JOINED
        )
        return joined / len(members)

    def converged(self, threshold: float = 1.0) -> bool:
        return self.joined_fraction() >= threshold

    def active_nodes(self) -> List[DeviceNode]:
        return [self.nodes[nid] for nid in sorted(self._activated)]
