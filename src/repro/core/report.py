"""ASCII tables and CSV output for benchmark results."""

from __future__ import annotations

import csv
import math
from typing import Any, Dict, List, Optional, Sequence


def format_value(value: Any) -> str:
    """Human-oriented scalar formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value == float("inf"):
            return "inf"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def ascii_table(
    rows: Sequence[Dict[str, Any]],
    title: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [
        [format_value(row.get(column, "")) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(path: str, rows: Sequence[Dict[str, Any]]) -> None:
    """Persist sweep rows for external plotting."""
    if not rows:
        return
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
