"""Cross-layer measurement helpers.

Experiments read protocol counters and the trace; these helpers reduce
them to the summary statistics the benchmark tables print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.devices.node import DeviceNode
from repro.sim.trace import TraceLog


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile; NaN on empty input."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    index = fraction * (len(ordered) - 1)
    low = int(math.floor(index))
    high = int(math.ceil(index))
    if low == high or ordered[low] == ordered[high]:
        # The equality case also avoids interpolation rounding ever
        # producing a value a few ulps outside [min, max].
        return ordered[low]
    weight = index - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; NaN on empty input."""
    return sum(values) / len(values) if values else float("nan")


@dataclass
class NetworkSummary:
    """End-to-end datagram statistics over a node population."""

    sent: int
    delivered: int
    forwarded: int
    dropped: int
    latencies_s: List[float]

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 1.0

    @property
    def median_latency_s(self) -> float:
        return percentile(self.latencies_s, 0.5)

    @property
    def p95_latency_s(self) -> float:
        return percentile(self.latencies_s, 0.95)


def collect_network(
    nodes: Iterable[DeviceNode],
    trace: Optional[TraceLog] = None,
    since: float = float("-inf"),
) -> NetworkSummary:
    """Aggregate stack counters (+ latencies from the trace if given)."""
    sent = delivered = forwarded = dropped = 0
    for node in nodes:
        stats = node.stack.stats
        sent += stats.datagrams_sent
        delivered += stats.datagrams_delivered
        forwarded += stats.datagrams_forwarded
        dropped += (
            stats.datagrams_dropped_no_route
            + stats.datagrams_dropped_ttl
            + stats.datagrams_dropped_link
        )
    latencies: List[float] = []
    if trace is not None:
        latencies = [
            record.data["latency"]
            for record in trace.query("net.delivered", since=since)
        ]
    return NetworkSummary(
        sent=sent, delivered=delivered,
        forwarded=forwarded, dropped=dropped,
        latencies_s=latencies,
    )


@dataclass
class EnergySummary:
    """Per-node charge/duty-cycle over a window."""

    node_id: int
    duty_cycle: float
    average_current_ma: float
    projected_lifetime_days: float


def collect_energy(
    nodes: Iterable[DeviceNode], now: float, skip_root: bool = True
) -> List[EnergySummary]:
    """Energy summaries for a population (roots excluded by default —
    they are mains powered)."""
    summaries = []
    for node in nodes:
        if skip_root and node.is_root:
            continue
        summaries.append(
            EnergySummary(
                node_id=node.node_id,
                duty_cycle=node.stack.mac.duty_cycle(),
                average_current_ma=node.energy.average_current_ma(now),
                projected_lifetime_days=node.energy.projected_lifetime_days(now),
            )
        )
    return summaries


def convergence_times(trace: TraceLog, node_count: int,
                      fraction: float = 0.9) -> Optional[float]:
    """Time at which ``fraction`` of nodes had first joined the DODAG."""
    firsts: Dict[int, float] = {}
    for record in trace.query("rpl.joined"):
        if record.node is not None and record.node not in firsts:
            firsts[record.node] = record.time
    if len(firsts) < math.ceil(fraction * node_count):
        return None
    ordered = sorted(firsts.values())
    return ordered[math.ceil(fraction * node_count) - 1]
