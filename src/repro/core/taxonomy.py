"""The paper's evaluation axes as first-class assessments.

The contribution of the paper is a *taxonomy*: industrial IoT systems
should be judged on interoperability, scalability (size / geographic /
administrative), and dependability (reliability / safety / availability
/ maintainability / security).  This module turns that rubric into code:
assessments take *measured* quantities from experiments and produce
graded verdicts with the evidence attached, so a deployment's report
reads like the paper's Section headings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class AxisAssessment:
    """One axis's verdict."""

    axis: str
    #: Grade in [0, 1]: 1 = the property holds strongly.
    score: float
    verdict: str
    evidence: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError("score must be in [0, 1]")


def _grade(ratio: float, good: float, bad: float) -> float:
    """Map a ratio onto [0, 1], linear between the good and bad anchor."""
    if good == bad:
        raise ValueError("good and bad anchors must differ")
    t = (ratio - bad) / (good - bad)
    return max(0.0, min(1.0, t))


# ----------------------------------------------------------------------
# scalability (§IV)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScalabilityReport:
    """The three scalability axes of §IV."""

    size: AxisAssessment
    geographic: AxisAssessment
    administrative: AxisAssessment

    def axes(self) -> List[AxisAssessment]:
        return [self.size, self.geographic, self.administrative]


def assess_scalability(
    small_delivery: float,
    large_delivery: float,
    scale_factor: float,
    latency_per_hop_s: float,
    coexistence_prr_alone: float,
    coexistence_prr_shared: float,
) -> ScalabilityReport:
    """Grade a system's scalability from paired measurements.

    Parameters mirror experiments E2 (delivery at two sizes), E3
    (per-hop latency → geographic), and E6 (PRR alone vs with co-located
    tenants → administrative).
    """
    degradation = large_delivery / small_delivery if small_delivery else 0.0
    size = AxisAssessment(
        axis="size",
        score=_grade(degradation, good=1.0, bad=0.5),
        verdict=(
            f"delivery retained {degradation:.0%} across a "
            f"{scale_factor:.0f}x growth"
        ),
        evidence={
            "small_delivery": small_delivery,
            "large_delivery": large_delivery,
            "scale_factor": scale_factor,
        },
    )
    geographic = AxisAssessment(
        axis="geographic",
        # 10 ms/hop is sync-flood territory, 1 s/hop is heavy duty cycling.
        score=_grade(math.log10(max(latency_per_hop_s, 1e-4)),
                     good=-2.0, bad=0.0),
        verdict=f"{latency_per_hop_s * 1000:.0f} ms per wireless hop",
        evidence={"latency_per_hop_s": latency_per_hop_s},
    )
    coexistence = (
        coexistence_prr_shared / coexistence_prr_alone
        if coexistence_prr_alone else 0.0
    )
    administrative = AxisAssessment(
        axis="administrative",
        score=_grade(coexistence, good=1.0, bad=0.3),
        verdict=(
            f"PRR retained {coexistence:.0%} with co-located tenants"
        ),
        evidence={
            "prr_alone": coexistence_prr_alone,
            "prr_shared": coexistence_prr_shared,
        },
    )
    return ScalabilityReport(size=size, geographic=geographic,
                             administrative=administrative)


# ----------------------------------------------------------------------
# dependability (§V)
# ----------------------------------------------------------------------
def availability_score(service_availability: float) -> float:
    """The taxonomy's availability grade: "three nines" scores 1.0,
    anything at or below 90 % scores 0.  Shared by
    :func:`assess_dependability` and the dependability gate so the CLI
    and the report cannot drift apart."""
    return _grade(service_availability, good=0.999, bad=0.9)



@dataclass(frozen=True)
class DependabilityReport:
    """The five dependability axes of §V."""

    reliability: AxisAssessment
    safety: AxisAssessment
    availability: AxisAssessment
    maintainability: AxisAssessment
    security: AxisAssessment

    def axes(self) -> List[AxisAssessment]:
        return [self.reliability, self.safety, self.availability,
                self.maintainability, self.security]


def assess_dependability(
    delivery_ratio: float,
    worst_comfort_violation_c: float,
    sla_breach_c: float,
    service_availability: float,
    recovery_time_s: Optional[float],
    recovery_target_s: float,
    injected_commands_applied: int,
    injected_commands_total: int,
) -> DependabilityReport:
    """Grade dependability from the E7–E11 measurement family."""
    reliability = AxisAssessment(
        axis="reliability",
        score=_grade(delivery_ratio, good=0.99, bad=0.8),
        verdict=f"end-to-end delivery ratio {delivery_ratio:.1%}",
        evidence={"delivery_ratio": delivery_ratio},
    )
    safety_margin = (
        1.0 - worst_comfort_violation_c / sla_breach_c
        if sla_breach_c else 0.0
    )
    safety = AxisAssessment(
        axis="safety",
        score=max(0.0, min(1.0, safety_margin)),
        verdict=(
            f"worst soft-safety violation {worst_comfort_violation_c:.1f} C "
            f"of {sla_breach_c:.1f} C SLA"
        ),
        evidence={"worst_violation_c": worst_comfort_violation_c},
    )
    availability = AxisAssessment(
        axis="availability",
        score=availability_score(service_availability),
        verdict=f"service availability {service_availability:.2%}",
        evidence={"availability": service_availability},
    )
    if recovery_time_s is None:
        maintainability = AxisAssessment(
            axis="maintainability", score=0.0,
            verdict="did not self-heal within the experiment window",
        )
    else:
        maintainability = AxisAssessment(
            axis="maintainability",
            score=_grade(recovery_time_s, good=0.0, bad=recovery_target_s),
            verdict=f"self-healed in {recovery_time_s:.0f} s unaided",
            evidence={"recovery_time_s": recovery_time_s},
        )
    if injected_commands_total:
        blocked = 1.0 - injected_commands_applied / injected_commands_total
    else:
        blocked = 1.0
    security = AxisAssessment(
        axis="security",
        score=blocked,
        verdict=(
            f"blocked {blocked:.0%} of injected actuation commands"
        ),
        evidence={
            "injected_applied": float(injected_commands_applied),
            "injected_total": float(injected_commands_total),
        },
    )
    return DependabilityReport(
        reliability=reliability, safety=safety, availability=availability,
        maintainability=maintainability, security=security,
    )


def taxonomy_table(reports: List[AxisAssessment]) -> List[Dict[str, object]]:
    """Rows for :func:`repro.core.report.ascii_table`."""
    return [
        {"axis": a.axis, "score": round(a.score, 2), "verdict": a.verdict}
        for a in reports
    ]
