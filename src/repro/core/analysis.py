"""Statistical analysis over trial data.

Experiments report means; papers report means *with confidence*.  This
module adds Student-t confidence intervals for repeated trials and a
least-squares slope helper used to verify linear-growth claims (e.g.
E3's latency-per-hop) quantitatively rather than by eyeball.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from scipy import stats


@dataclass(frozen=True)
class IntervalEstimate:
    """A mean with its two-sided confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} ({self.confidence:.0%})"


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> IntervalEstimate:
    """Student-t CI of the mean (exact for small n, normal for large)."""
    if not samples:
        raise ValueError("samples must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return IntervalEstimate(mean=mean, lower=mean, upper=mean,
                                confidence=confidence, n=1)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(variance / n)
    t = stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    return IntervalEstimate(
        mean=mean, lower=mean - t * sem, upper=mean + t * sem,
        confidence=confidence, n=n,
    )


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line with goodness of fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(points: Sequence[Tuple[float, float]]) -> LinearFit:
    """Ordinary least squares over (x, y) pairs."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    result = stats.linregress(xs, ys)
    return LinearFit(slope=float(result.slope),
                     intercept=float(result.intercept),
                     r_squared=float(result.rvalue ** 2))


def sweep_intervals(
    trials: Sequence, parameter: str, metric: str,
    confidence: float = 0.95,
) -> List[Dict[str, object]]:
    """Per-sweep-value CI rows from :class:`repro.core.experiment.Trial`
    lists — drop-in enrichment of ``Sweep.rows()``."""
    grouped: Dict[object, List[float]] = {}
    order: List[object] = []
    for trial in trials:
        value = trial.params[parameter]
        if value not in grouped:
            grouped[value] = []
            order.append(value)
        if metric in trial.metrics:
            grouped[value].append(trial.metrics[metric])
    rows = []
    for value in order:
        estimate = confidence_interval(grouped[value], confidence)
        rows.append({
            parameter: value,
            f"{metric} mean": estimate.mean,
            f"{metric} ci95 low": estimate.lower,
            f"{metric} ci95 high": estimate.upper,
            "trials": estimate.n,
        })
    return rows
