"""Device models for the sensing and actuation layer.

The paper's §II-B peculiarities live here: platform classes with real
resource envelopes (:mod:`repro.devices.platform`), radio-state energy
accounting and batteries (:mod:`repro.devices.energy`), sensors sampling
synthetic physical phenomena with noise/drift/stuck-at faults
(:mod:`repro.devices.sensors`, :mod:`repro.devices.phenomena`), and
actuators with rate limits and delays (:mod:`repro.devices.actuators`).
"""

from repro.devices.actuators import Actuator, ActuatorCommand, OnOffActuator
from repro.devices.energy import Battery, EnergyMeter
from repro.devices.inference import (
    InferencePartitioner,
    Layer,
    PartitionCost,
    example_keyword_spotting_model,
)
from repro.devices.node import DeviceNode
from repro.devices.phenomena import (
    CompositeField,
    DiurnalField,
    Phenomenon,
    RandomWalkField,
    StepEventField,
    UniformField,
)
from repro.devices.platform import (
    CLASS_0_MOTE,
    CLASS_1_MOTE,
    CLASS_2_GATEWAY,
    PLATFORMS,
    PlatformProfile,
)
from repro.devices.sensors import Sensor, SensorConfig, SensorFault

__all__ = [
    "Actuator",
    "ActuatorCommand",
    "Battery",
    "CLASS_0_MOTE",
    "CLASS_1_MOTE",
    "CLASS_2_GATEWAY",
    "CompositeField",
    "DeviceNode",
    "DiurnalField",
    "EnergyMeter",
    "InferencePartitioner",
    "Layer",
    "PartitionCost",
    "example_keyword_spotting_model",
    "OnOffActuator",
    "PLATFORMS",
    "Phenomenon",
    "PlatformProfile",
    "RandomWalkField",
    "Sensor",
    "SensorConfig",
    "SensorFault",
    "StepEventField",
    "UniformField",
]
