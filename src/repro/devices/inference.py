"""Edge-inference partitioning (paper §IV-B, refs [19], [20]).

The paper's closing size-scalability example: "migrating parts of deep
neural networks to low-power devices to exploit the tradeoff between
communication and computation".  DeepX-style systems split a network at
a layer boundary: the device computes the first *k* layers and ships the
layer-k activation; the gateway finishes the rest.

This module models that decision for a Class-1 device: per-layer compute
cost (multiply-accumulates) against the platform's CPU energy, and the
activation size against radio airtime and energy.  The canonical shape —
early layers are cheap but produce *huge* activations, late layers are
expensive but tiny — makes the optimal split an interior point, which
experiment E14 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.devices.platform import CLASS_1_MOTE, PlatformProfile
from repro.radio.medium import BITRATE_BPS, PHY_OVERHEAD_BYTES

#: Energy per multiply-accumulate on a Class-1 MCU, joules.  Software
#: fixed-point MAC at ~8 cycles: 8 / 8 MHz * 1.8 mA * 3 V ≈ 5.4 nJ.
DEFAULT_JOULES_PER_MAC = 5.4e-9
#: MAC operations per second the MCU sustains (8 MHz / ~8 cycles).
DEFAULT_MACS_PER_SECOND = 1.0e6


@dataclass(frozen=True)
class Layer:
    """One network layer as the partitioner sees it."""

    name: str
    #: Multiply-accumulate operations to evaluate the layer.
    mac_ops: float
    #: Bytes of the layer's output activation.
    output_bytes: int

    def __post_init__(self) -> None:
        if self.mac_ops < 0 or self.output_bytes < 0:
            raise ValueError("layer costs must be non-negative")


@dataclass(frozen=True)
class PartitionCost:
    """The price of one split point."""

    split_after: int  # layers [0, split) run on-device
    compute_energy_j: float
    radio_energy_j: float
    compute_latency_s: float
    radio_latency_s: float
    uplink_bytes: int

    @property
    def total_energy_j(self) -> float:
        return self.compute_energy_j + self.radio_energy_j

    @property
    def total_latency_s(self) -> float:
        return self.compute_latency_s + self.radio_latency_s


@dataclass(frozen=True)
class InferencePartitioner:
    """Evaluates split points of a layered model on a device.

    ``input_bytes`` is what split 0 (pure offload) must transmit — the
    raw sample.  ``effective_throughput_bps`` defaults to the raw PHY
    rate; pass a duty-cycled estimate (e.g. from
    :class:`repro.net.mac.analysis.LplExpectations`) for deployment-
    accurate latency.
    """

    layers: Tuple[Layer, ...]
    input_bytes: int
    platform: PlatformProfile = CLASS_1_MOTE
    joules_per_mac: float = DEFAULT_JOULES_PER_MAC
    macs_per_second: float = DEFAULT_MACS_PER_SECOND
    effective_throughput_bps: float = float(BITRATE_BPS)
    #: Radio energy per transmitted byte (TX current at the PHY rate).
    radio_joules_per_byte: Optional[float] = None

    def _radio_j_per_byte(self) -> float:
        if self.radio_joules_per_byte is not None:
            return self.radio_joules_per_byte
        byte_airtime = 8.0 / BITRATE_BPS
        return (byte_airtime * self.platform.tx_current_ma / 1000.0
                * self.platform.supply_voltage_v)

    def uplink_bytes_at(self, split_after: int) -> int:
        """Bytes transmitted when the first ``split_after`` layers run
        on-device."""
        if not 0 <= split_after <= len(self.layers):
            raise ValueError("split point out of range")
        if split_after == 0:
            return self.input_bytes
        return self.layers[split_after - 1].output_bytes

    def cost(self, split_after: int) -> PartitionCost:
        """Full device-side cost of one split point."""
        local = self.layers[:split_after]
        macs = sum(layer.mac_ops for layer in local)
        payload = self.uplink_bytes_at(split_after)
        # Frame overhead per fragment-sized unit.
        frame_payload = 90
        frames = max(1, -(-payload // frame_payload))
        wire_bytes = payload + frames * PHY_OVERHEAD_BYTES
        return PartitionCost(
            split_after=split_after,
            compute_energy_j=macs * self.joules_per_mac,
            radio_energy_j=wire_bytes * self._radio_j_per_byte(),
            compute_latency_s=macs / self.macs_per_second,
            radio_latency_s=wire_bytes * 8.0 / self.effective_throughput_bps,
            uplink_bytes=payload,
        )

    def sweep(self) -> List[PartitionCost]:
        """Costs for every split point, 0 (offload all) .. N (all local)."""
        return [self.cost(k) for k in range(len(self.layers) + 1)]

    def best_split(self, objective: str = "energy") -> PartitionCost:
        """The split minimizing total energy or latency."""
        key = {
            "energy": lambda c: c.total_energy_j,
            "latency": lambda c: c.total_latency_s,
        }.get(objective)
        if key is None:
            raise ValueError("objective must be 'energy' or 'latency'")
        return min(self.sweep(), key=key)


def example_keyword_spotting_model() -> Tuple[Tuple[Layer, ...], int]:
    """A small audio-event CNN with the canonical taper.

    Raw input: 1 s of 16-bit audio at 4 kHz = 8000 bytes.  Early conv
    layers shrink the activation fast; the dense tail is compute-heavy
    but emits a 10-byte class vector.
    """
    layers = (
        Layer("conv1", mac_ops=6.0e5, output_bytes=4000),
        Layer("pool1", mac_ops=2.0e4, output_bytes=1000),
        Layer("conv2", mac_ops=8.0e5, output_bytes=500),
        Layer("pool2", mac_ops=1.0e4, output_bytes=120),
        Layer("dense1", mac_ops=1.2e6, output_bytes=32),
        Layer("dense2", mac_ops=3.0e5, output_bytes=10),
    )
    return layers, 8000
