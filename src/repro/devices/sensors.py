"""Sensors: noisy, drifting, occasionally faulty observers of phenomena.

A sensor is *placed*: its position is fixed by the phenomenon it must
observe (the paper's §IV-A point that software placement is not free at
this layer).  Fault modes — stuck-at, offset drift, dead — feed the
maintainability experiment's automated-diagnosis half (§V-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.devices.phenomena import Phenomenon
from repro.sim.kernel import Simulator


class SensorFault(enum.Enum):
    """Injectable sensor fault modes."""

    NONE = "none"
    STUCK = "stuck"          # repeats the last good value forever
    OFFSET = "offset"        # systematic bias (miscalibration)
    DRIFT = "drift"          # bias growing since fault onset
    DEAD = "dead"            # returns None


@dataclass(frozen=True)
class SensorConfig:
    """Measurement characteristics."""

    noise_sigma: float = 0.1
    quantization: float = 0.01
    #: Slow calibration drift in value units per day.
    drift_per_day: float = 0.0
    offset_fault_bias: float = 5.0
    #: Bias growth under an injected DRIFT fault, value units per hour.
    fault_drift_per_hour: float = 2.0

    def validate(self) -> None:
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if self.quantization < 0:
            raise ValueError("quantization must be non-negative")


class Sensor:
    """One measurement channel on a device."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        phenomenon: Phenomenon,
        position: Tuple[float, float],
        config: Optional[SensorConfig] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.phenomenon = phenomenon
        self.position = position
        self.config = config if config is not None else SensorConfig()
        self.config.validate()
        self.fault = SensorFault.NONE
        self.readings_taken = 0
        self._last_good: Optional[float] = None
        self._fault_since: Optional[float] = None
        self._rng = sim.substream(f"sensor.{name}.{position}")

    def inject_fault(self, fault: SensorFault) -> None:
        """Switch the sensor into a fault mode (diagnosis experiments)."""
        self.fault = fault
        self._fault_since = self.sim.now if fault is not SensorFault.NONE else None

    def clear_fault(self) -> None:
        self.fault = SensorFault.NONE
        self._fault_since = None

    def read(self) -> Optional[float]:
        """Take one measurement now; None if the sensor is dead."""
        self.readings_taken += 1
        if self.fault is SensorFault.DEAD:
            return None
        if self.fault is SensorFault.STUCK:
            return self._last_good
        truth = self.phenomenon.value_at(self.sim.now, self.position)
        value = truth + self._rng.gauss(0.0, self.config.noise_sigma)
        value += self.config.drift_per_day * (self.sim.now / 86_400.0)
        if self.fault is SensorFault.OFFSET:
            value += self.config.offset_fault_bias
        if self.fault is SensorFault.DRIFT and self._fault_since is not None:
            hours = (self.sim.now - self._fault_since) / 3600.0
            value += self.config.fault_drift_per_hour * hours
        if self.config.quantization > 0:
            steps = round(value / self.config.quantization)
            value = steps * self.config.quantization
        self._last_good = value
        return value

    def ground_truth(self) -> float:
        """The noiseless field value (for experiment error metrics)."""
        return self.phenomenon.value_at(self.sim.now, self.position)
