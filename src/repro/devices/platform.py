"""Hardware platform profiles (RFC 7228 device classes).

The paper stresses that sensing-and-actuation-layer platforms sit *on
the lower extreme of the spectrum* of computing capability.  RFC 7228
formalizes this as Class 0/1/2 constrained devices; the profiles below
carry the resource envelopes and radio current draws that the energy
model and the interoperability experiments consume.  Current figures
follow the CC2420/TelosB lineage of the systems the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PlatformProfile:
    """Static description of one device platform."""

    name: str
    #: RFC 7228 class: 0 (<<10 KiB RAM), 1 (~10 KiB), 2 (~50 KiB+).
    device_class: int
    ram_kib: int
    flash_kib: int
    #: Radio current draws.
    tx_current_ma: float
    rx_current_ma: float
    sleep_current_ua: float
    cpu_active_current_ma: float
    supply_voltage_v: float
    #: Whether the device is mains powered (border routers usually are).
    mains_powered: bool = False

    def validate(self) -> None:
        if self.device_class not in (0, 1, 2):
            raise ValueError("device_class must be 0, 1, or 2")
        if min(self.tx_current_ma, self.rx_current_ma, self.sleep_current_ua) < 0:
            raise ValueError("currents must be non-negative")

    @property
    def sleep_current_ma(self) -> float:
        return self.sleep_current_ua / 1000.0


#: Coin-cell sensor tag: barely enough RAM for a MAC and one app.
CLASS_0_MOTE = PlatformProfile(
    name="class0-tag",
    device_class=0,
    ram_kib=4,
    flash_kib=48,
    tx_current_ma=17.4,
    rx_current_ma=18.8,
    sleep_current_ua=5.1,
    cpu_active_current_ma=1.8,
    supply_voltage_v=3.0,
)

#: TelosB-class mote: the workhorse of the cited sensornet literature.
CLASS_1_MOTE = PlatformProfile(
    name="class1-mote",
    device_class=1,
    ram_kib=10,
    flash_kib=48,
    tx_current_ma=17.4,
    rx_current_ma=18.8,
    sleep_current_ua=5.1,
    cpu_active_current_ma=1.8,
    supply_voltage_v=3.0,
)

#: Mains-powered border router / gateway.
CLASS_2_GATEWAY = PlatformProfile(
    name="class2-gateway",
    device_class=2,
    ram_kib=256,
    flash_kib=2048,
    tx_current_ma=17.4,
    rx_current_ma=18.8,
    sleep_current_ua=20.0,
    cpu_active_current_ma=40.0,
    supply_voltage_v=3.3,
    mains_powered=True,
)

PLATFORMS: Dict[str, PlatformProfile] = {
    profile.name: profile
    for profile in (CLASS_0_MOTE, CLASS_1_MOTE, CLASS_2_GATEWAY)
}
