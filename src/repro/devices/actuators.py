"""Actuators: the write path into the physical world.

An actuator accepts commands (possibly arriving over the lossy network,
possibly delayed), applies rate limits and actuation delay, and exposes
its applied output for physical process models to consume.  Command
history and rejected-command counters feed the security experiment:
unauthenticated injected commands either corrupt this history (security
off) or are rejected at the MAC filter (security on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class ActuatorCommand:
    """A setpoint command for one actuator."""

    target: float
    issued_at: float
    issuer: int = -1


class Actuator:
    """A continuous actuator with slew-rate limiting and delay.

    ``output`` moves toward the commanded target at ``slew_per_s`` once
    ``actuation_delay_s`` has elapsed since the command was applied.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        initial: float = 0.0,
        minimum: float = 0.0,
        maximum: float = 1.0,
        slew_per_s: float = float("inf"),
        actuation_delay_s: float = 0.0,
    ) -> None:
        if minimum > maximum:
            raise ValueError("minimum must not exceed maximum")
        self.sim = sim
        self.name = name
        self.minimum = minimum
        self.maximum = maximum
        self.slew_per_s = slew_per_s
        self.actuation_delay_s = actuation_delay_s
        self._output = self._clamp(initial)
        self._target = self._output
        self._target_since = 0.0
        self.commands: List[ActuatorCommand] = []
        self.commands_applied = 0
        self.commands_rejected = 0

    def _clamp(self, value: float) -> float:
        return min(max(value, self.minimum), self.maximum)

    def command(self, target: float, issuer: int = -1) -> bool:
        """Apply a setpoint command.  Out-of-range targets are clamped;
        the command is recorded either way."""
        cmd = ActuatorCommand(target=target, issued_at=self.sim.now, issuer=issuer)
        self.commands.append(cmd)
        self._advance_output()
        self._target = self._clamp(target)
        self._target_since = self.sim.now + self.actuation_delay_s
        self.commands_applied += 1
        return True

    def reject(self, target: float, issuer: int = -1) -> None:
        """Record a command that was refused (failed authentication)."""
        self.commands_rejected += 1

    def _advance_output(self) -> None:
        now = self.sim.now
        if now < self._target_since:
            return
        dt = now - self._target_since
        if self.slew_per_s == float("inf"):
            self._output = self._target
            return
        delta = self._target - self._output
        step = self.slew_per_s * dt
        if abs(delta) <= step:
            self._output = self._target
        else:
            self._output += step if delta > 0 else -step
        self._target_since = now

    @property
    def output(self) -> float:
        """Current physical output (advances lazily with time)."""
        self._advance_output()
        return self._output

    @property
    def target(self) -> float:
        return self._target


class OnOffActuator(Actuator):
    """A binary actuator (relay, valve): output snaps to 0 or 1."""

    def __init__(self, sim: Simulator, name: str, initial: bool = False,
                 actuation_delay_s: float = 0.0) -> None:
        super().__init__(
            sim, name,
            initial=1.0 if initial else 0.0,
            minimum=0.0, maximum=1.0,
            actuation_delay_s=actuation_delay_s,
        )

    def command(self, target: float, issuer: int = -1) -> bool:
        return super().command(1.0 if target >= 0.5 else 0.0, issuer)

    @property
    def is_on(self) -> bool:
        return self.output >= 0.5
