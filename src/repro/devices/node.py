"""DeviceNode: one embedded device, fully assembled.

Binds a network stack, a platform profile with its energy meter, and the
node's sensors and actuators into the unit that deployments are built
from.  Applications attach behaviour (sampling loops, control loops)
through the stack's socket API or :mod:`repro.sim.process` processes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.devices.actuators import Actuator
from repro.devices.energy import Battery, EnergyMeter
from repro.devices.platform import CLASS_1_MOTE, PlatformProfile
from repro.devices.phenomena import Phenomenon
from repro.devices.sensors import Sensor, SensorConfig
from repro.net.stack import NetworkStack, StackConfig
from repro.radio.medium import Medium
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


class DeviceNode:
    """A complete sensing-and-actuation-layer device."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: Tuple[float, float],
        stack_config: Optional[StackConfig] = None,
        platform: PlatformProfile = CLASS_1_MOTE,
        battery: Optional[Battery] = None,
        is_root: bool = False,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.position = position
        self.platform = platform
        self.is_root = is_root
        self.stack = NetworkStack(
            sim, medium, node_id, position,
            config=stack_config, is_root=is_root, trace=trace,
        )
        self.energy = EnergyMeter(self.stack.radio, platform, battery)
        self.sensors: Dict[str, Sensor] = {}
        self.actuators: Dict[str, Actuator] = {}

    # ------------------------------------------------------------------
    def add_sensor(
        self,
        name: str,
        phenomenon: Phenomenon,
        config: Optional[SensorConfig] = None,
    ) -> Sensor:
        """Attach a sensor channel observing ``phenomenon`` here."""
        if name in self.sensors:
            raise ValueError(f"sensor {name!r} already attached")
        sensor = Sensor(self.sim, name, phenomenon, self.position, config)
        self.sensors[name] = sensor
        return sensor

    def add_actuator(self, actuator: Actuator) -> Actuator:
        """Attach an actuator channel."""
        if actuator.name in self.actuators:
            raise ValueError(f"actuator {actuator.name!r} already attached")
        self.actuators[actuator.name] = actuator
        return actuator

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the device (stack up, energy window starts)."""
        self.stack.start()
        self.energy.reset(self.sim.now)

    def stop(self) -> None:
        self.stack.stop()

    def fail(self) -> None:
        """Crash-stop the device."""
        self.stack.fail()

    def recover(self) -> None:
        self.stack.recover()

    @property
    def alive(self) -> bool:
        return self.stack.alive

    def read(self, sensor_name: str) -> Optional[float]:
        """Read one sensor by name."""
        return self.sensors[sensor_name].read()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceNode(id={self.node_id}, pos={self.position}, "
            f"platform={self.platform.name}, root={self.is_root})"
        )
