"""Radio-state energy accounting and battery lifetime projection.

The funnel-effect experiment (E4) and every lifetime claim rest on
this conversion: the radio records how long it spent in SLEEP / LISTEN /
TX; the meter multiplies residencies by the platform's current draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.devices.platform import PlatformProfile
from repro.radio.medium import Radio, RadioState

#: Seconds per hour, for mAh conversions.
_SECONDS_PER_HOUR = 3600.0


@dataclass
class Battery:
    """An ideal battery (no self-discharge curve; capacity in mAh)."""

    capacity_mah: float = 2600.0  # two AA cells, roughly

    def validate(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError("capacity_mah must be positive")

    @property
    def capacity_mas(self) -> float:
        """Capacity in milliamp-seconds."""
        return self.capacity_mah * _SECONDS_PER_HOUR


class EnergyMeter:
    """Converts one radio's state residencies into charge and energy.

    The meter is read-only with respect to the radio; call
    :meth:`charge_consumed_mas` at any simulated time.
    """

    def __init__(
        self,
        radio: Radio,
        platform: PlatformProfile,
        battery: Optional[Battery] = None,
    ) -> None:
        self.radio = radio
        self.platform = platform
        self.battery = battery if battery is not None else Battery()
        self._baseline: Dict[RadioState, float] = {s: 0.0 for s in RadioState}
        self._start_time = 0.0

    def reset(self, now: float) -> None:
        """Start a fresh accounting window at simulated time ``now``."""
        self._baseline = self.radio.flush_state_time()
        self._start_time = now

    def state_seconds(self) -> Dict[RadioState, float]:
        """Per-state residency since the last reset."""
        current = self.radio.flush_state_time()
        return {
            state: current[state] - self._baseline[state] for state in RadioState
        }

    def charge_consumed_mas(self) -> float:
        """Charge drawn since the last reset, in milliamp-seconds."""
        times = self.state_seconds()
        return (
            times[RadioState.TX] * self.platform.tx_current_ma
            + times[RadioState.LISTEN] * self.platform.rx_current_ma
            + times[RadioState.SLEEP] * self.platform.sleep_current_ma
        )

    def energy_joules(self) -> float:
        """Energy drawn since the last reset."""
        return self.charge_consumed_mas() / 1000.0 * self.platform.supply_voltage_v

    def average_current_ma(self, now: float) -> float:
        """Mean current over the accounting window."""
        elapsed = now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self.charge_consumed_mas() / elapsed

    def projected_lifetime_days(self, now: float) -> float:
        """Battery life extrapolated from the window's mean current.

        Mains-powered platforms report infinity — border routers do not
        die of battery, which is exactly why the funnel effect around
        them hurts the *battery-powered* nodes nearby.
        """
        if self.platform.mains_powered:
            return float("inf")
        current = self.average_current_ma(now)
        if current <= 0:
            return float("inf")
        return self.battery.capacity_mah / current / 24.0

    def depleted(self, now: float) -> bool:
        """True once the accumulated charge exceeds battery capacity."""
        if self.platform.mains_powered:
            return False
        return self.charge_consumed_mas() >= self.battery.capacity_mas
