"""Synthetic physical phenomena for sensors to observe.

Real deployments sense real fields; the reproduction substitutes
deterministic synthetic fields (substitution table in DESIGN.md).  A
:class:`Phenomenon` maps ``(time, position)`` to a value, which gives
spatially-coherent readings — essential for the in-network aggregation
experiments, where MIN/MAX/AVG over a coherent field is the whole point.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Protocol, Tuple

Position = Tuple[float, float]


class Phenomenon(Protocol):
    """A scalar field over space and time."""

    def value_at(self, time: float, position: Position) -> float:
        """Field value at ``position`` at simulated ``time``."""
        ...


@dataclass(frozen=True)
class UniformField:
    """The same value everywhere — the simplest test field."""

    value: float = 20.0

    def value_at(self, time: float, position: Position) -> float:
        return self.value


@dataclass(frozen=True)
class DiurnalField:
    """A sinusoidal daily cycle with a linear spatial gradient.

    Models ambient temperature: warm afternoons, cold nights, and a
    gradient across the site (e.g. the sunny side of a building).  The
    paper's §II-B notes devices face "low and high temperatures,
    sometimes in sub-diurnal cycles" — this is that cycle.
    """

    mean: float = 18.0
    amplitude: float = 7.0
    period_s: float = 86_400.0
    #: Value increase per meter along x.
    gradient_per_m: float = 0.01
    phase_s: float = 0.0

    def value_at(self, time: float, position: Position) -> float:
        cycle = math.sin(2 * math.pi * (time + self.phase_s) / self.period_s)
        return self.mean + self.amplitude * cycle + self.gradient_per_m * position[0]


class RandomWalkField:
    """A temporally-correlated random walk, identical across space.

    Values are generated lazily per time step and cached, so repeated
    queries are deterministic for a given seed.
    """

    def __init__(
        self,
        start: float = 50.0,
        step_sigma: float = 0.5,
        step_s: float = 10.0,
        seed: int = 0,
        lower: float = float("-inf"),
        upper: float = float("inf"),
    ) -> None:
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        self.start = start
        self.step_sigma = step_sigma
        self.step_s = step_s
        self.lower = lower
        self.upper = upper
        self._rng = random.Random(seed)
        self._values: List[float] = [start]

    def value_at(self, time: float, position: Position) -> float:
        index = max(0, int(time / self.step_s))
        while len(self._values) <= index:
            step = self._rng.gauss(0.0, self.step_sigma)
            value = self._values[-1] + step
            self._values.append(min(max(value, self.lower), self.upper))
        return self._values[index]


@dataclass(frozen=True)
class StepEventField:
    """A base level with a step change during an event window.

    Models alarm conditions (a leak, a hot spot) that the control-loop
    and safety experiments must detect and react to.
    """

    base: float = 0.0
    event_value: float = 100.0
    event_start_s: float = float("inf")
    event_end_s: float = float("inf")
    #: Radius around the epicenter affected by the event; inf = global.
    epicenter: Position = (0.0, 0.0)
    radius_m: float = float("inf")

    def value_at(self, time: float, position: Position) -> float:
        if not self.event_start_s <= time < self.event_end_s:
            return self.base
        dx = position[0] - self.epicenter[0]
        dy = position[1] - self.epicenter[1]
        if math.hypot(dx, dy) > self.radius_m:
            return self.base
        return self.event_value


@dataclass
class CompositeField:
    """Sum of component fields (e.g. diurnal cycle + event spike)."""

    components: List[Phenomenon] = field(default_factory=list)

    def value_at(self, time: float, position: Position) -> float:
        return sum(c.value_at(time, position) for c in self.components)
