"""Per-node health telemetry sampled on a sim-time cadence.

The paper's maintainability argument (§V) is that field failures are
diagnosed from *node vitals*, not packet captures: a parent flap shows
up as rank churn, congestion as MAC queue growth, an energy bug as a
duty-cycle outlier, a stalled merge as replica staleness.  The
:class:`NodeHealthSampler` walks every node of an
:class:`~repro.core.system.IIoTSystem` on a fixed period and writes one
gauge set per node into the run's
:class:`~repro.obs.registry.Registry`:

==============================  =============================================
gauge                           source
==============================  =============================================
``health.duty_cycle``           MAC radio-on fraction (``MacLayer.duty_cycle``)
``health.avg_current_ma``       :class:`~repro.devices.energy.EnergyMeter`
``health.mac_queue``            current transmit-queue depth
``health.mac_queue_drops``      cumulative queue overflow drops
``health.neighbors``            RPL neighbor-table size
``health.rank``                 current RPL rank
``health.parent``               preferred parent id (-1 when detached)
``health.alive``                1 while the node is up
``health.crdt_staleness_s``     seconds since the CRDT replica changed
==============================  =============================================

The sampler is deliberately **not** auto-attached by
``SystemConfig(observability=True)``: sampling schedules simulator
events, and the observability layer guarantees it never changes the
event sequence of an uninstrumented run (``bench_perf_core`` pins
obs-off and obs-on runs to identical event streams).  Attach it
explicitly where a health table is wanted — ``repro report`` does.

Determinism: nodes are visited in sorted id order and gauges carry the
node id as a label, so per-trial snapshots merge identically for any
``jobs`` count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import IIoTSystem
    from repro.crdt.replication import NetworkReplicator


class NodeHealthSampler:
    """Samples per-node health gauges into the system's registry."""

    def __init__(
        self,
        system: "IIoTSystem",
        period_s: float = 30.0,
        replicators: Optional[Dict[int, "NetworkReplicator"]] = None,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        obs = system.trace.obs
        if obs is None:
            raise ValueError(
                "NodeHealthSampler needs an observability bundle; build the "
                "system with SystemConfig(observability=True)"
            )
        self.system = system
        self.registry = obs.registry
        self.period_s = period_s
        self.replicators = replicators if replicators is not None else {}
        self.samples_taken = 0
        self._timer = PeriodicTimer(system.sim, period_s, self.sample_once)
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic sampling (first sample one period in)."""
        if self._started:
            return
        self._started = True
        self._timer.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._timer.stop()

    # ------------------------------------------------------------------
    def sample_once(self) -> None:
        """Take one health sample of every node, in sorted id order."""
        now = self.system.sim.now
        registry = self.registry
        self.samples_taken += 1
        registry.set("health.samples", self.samples_taken)
        registry.set("health.sampled_at_s", now)
        for node_id in sorted(self.system.nodes):
            node = self.system.nodes[node_id]
            stack = node.stack
            registry.set("health.alive", 1.0 if stack.alive else 0.0,
                         node=node_id)
            registry.set("health.duty_cycle", stack.mac.duty_cycle(),
                         node=node_id)
            registry.set("health.avg_current_ma",
                         node.energy.average_current_ma(now), node=node_id)
            registry.set("health.mac_queue", stack.mac.queue_length,
                         node=node_id)
            registry.set("health.mac_queue_drops", stack.mac.stats.queue_drops,
                         node=node_id)
            registry.set("health.neighbors", len(stack.rpl.neighbors),
                         node=node_id)
            registry.set("health.rank", stack.rpl.rank, node=node_id)
            parent = stack.rpl.preferred_parent
            registry.set("health.parent",
                         parent if parent is not None else -1, node=node_id)
            replicator = self.replicators.get(node_id)
            if replicator is not None:
                registry.set("health.crdt_staleness_s",
                             replicator.staleness(now), node=node_id)


def health_rows(snapshot_or_registry) -> list:
    """Per-node health table rows from a Registry or MetricsSnapshot.

    Returns dicts keyed by short column names, one row per node that has
    at least one ``health.*`` gauge, sorted by node id.
    """
    columns = {
        "alive": "health.alive",
        "duty_cycle": "health.duty_cycle",
        "avg_ma": "health.avg_current_ma",
        "queue": "health.mac_queue",
        "q_drops": "health.mac_queue_drops",
        "nbrs": "health.neighbors",
        "rank": "health.rank",
        "parent": "health.parent",
        "crdt_stale_s": "health.crdt_staleness_s",
    }
    gauges = getattr(snapshot_or_registry, "gauges", None)
    if gauges is None:  # a live Registry
        gauges = snapshot_or_registry.snapshot().gauges
    per_node: Dict[int, Dict[str, float]] = {}
    for (name, labels), value in gauges.items():
        if not name.startswith("health."):
            continue
        label_map = dict(labels)
        if "node" not in label_map:
            continue
        per_node.setdefault(label_map["node"], {})[name] = value
    rows = []
    for node_id in sorted(per_node):
        values = per_node[node_id]
        row = {"node": node_id}
        for short, metric in columns.items():
            if metric in values:
                row[short] = values[metric]
        rows.append(row)
    return rows
