"""The opt-in simulation profiler.

Answers "where does simulation *wall time* go?" by timing every event
callback the kernel dispatches and attributing it to a category:

- bound protocol methods report as ``Class.method`` (``CsmaMac._cca``);
- lightweight processes (:mod:`repro.sim.process`) report as
  ``process.<name>`` so a sensor loop is distinguishable from the
  generic ``Process._resume`` trampoline;
- plain functions and lambdas report by qualified name.

Installation replaces nothing: the kernel checks a single attribute per
event (``Simulator._profiler``), so an uninstalled profiler costs one
``is None`` branch and runs with zero allocation on the hot path.
Profiling itself never touches simulated time or randomness, so a
profiled run computes identical results to an unprofiled one.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator


class SimProfiler:
    """Wall-time and event-count attribution per callback category."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        #: category -> [event_count, total_wall_seconds]
        self.entries: Dict[str, List[float]] = {}
        self._sim: Optional[Simulator] = None
        if sim is not None:
            self.install(sim)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self, sim: Simulator) -> "SimProfiler":
        if sim._profiler is not None:
            raise RuntimeError("simulator already has a profiler installed")
        sim._profiler = self
        self._sim = sim
        return self

    def uninstall(self) -> None:
        if self._sim is not None:
            self._sim._profiler = None
            self._sim = None

    # ------------------------------------------------------------------
    # the kernel-facing hook
    # ------------------------------------------------------------------
    def record(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` under timing (called by ``Simulator.step``)."""
        category = self._category(callback)
        start = time.perf_counter()
        try:
            callback()
        finally:
            wall = time.perf_counter() - start
            entry = self.entries.get(category)
            if entry is None:
                self.entries[category] = [1, wall]
            else:
                entry[0] += 1
                entry[1] += wall

    @staticmethod
    def _category(callback: Callable[[], None]) -> str:
        owner = getattr(callback, "__self__", None)
        # A Process._resume trampoline: attribute to the process itself.
        if owner is not None and hasattr(owner, "_generator") and hasattr(owner, "name"):
            name = owner.name or getattr(owner._generator, "__name__", "anonymous")
            return f"process.{name}"
        qualname = getattr(callback, "__qualname__", None)
        return qualname if qualname else type(callback).__name__

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_wall_s(self) -> float:
        return sum(entry[1] for entry in self.entries.values())

    @property
    def total_events(self) -> int:
        return int(sum(entry[0] for entry in self.entries.values()))

    def hotspots(self, limit: int = 10) -> List[Tuple[str, int, float, float]]:
        """Top categories as ``(category, events, wall_s, fraction)``.

        Sorted by wall time descending, then category name for a stable
        order under ties.
        """
        total = self.total_wall_s or 1.0
        ranked = sorted(
            self.entries.items(), key=lambda item: (-item[1][1], item[0])
        )
        return [
            (category, int(count), wall, wall / total)
            for category, (count, wall) in ranked[:limit]
        ]

    def table(self, limit: int = 10) -> str:
        """The hot-spot table, rendered."""
        rows = self.hotspots(limit)
        if not rows:
            return "(no events profiled)"
        width = max(len(category) for category, *_ in rows)
        lines = [f"{'category'.ljust(width)}  {'events':>9}  "
                 f"{'wall [s]':>9}  {'share':>6}"]
        for category, events, wall, fraction in rows:
            lines.append(f"{category.ljust(width)}  {events:>9,}  "
                         f"{wall:>9.4f}  {fraction:>6.1%}")
        return "\n".join(lines)
