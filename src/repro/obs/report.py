"""``python -m repro report`` — the observability CLI dashboard.

Runs a small instrumented deployment end to end (DODAG convergence,
then CoAP request traffic from the border router to every leaf, one
in-network aggregation query, and a gossiped CRDT counter) with the
full observability stack attached — metrics registry, span tracing,
node-health sampling, and the kernel profiler — and renders what it
saw: delivery counters, latency percentiles, duty cycles, control-plane
activity, a per-node health table, trace hot categories, wall-time hot
spots, and reconstructed lifecycle trees for a data-plane packet, a
control-plane event, and a middleware round.  ``--export DIR``
additionally writes the JSONL/CSV/JSON artifacts for offline analysis
(``metrics.json`` feeds ``python -m repro diff``).

The module is imported lazily by :mod:`repro.__main__` (it pulls in
:mod:`repro.core`, which :mod:`repro.obs` itself must not import).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aggregation.service import AggregationService
from repro.core.metrics import percentile
from repro.core.system import IIoTSystem, SystemConfig
from repro.crdt import CrdtReplica, GCounter, NetworkReplicator
from repro.deployment.topology import grid_topology
from repro.devices.phenomena import DiurnalField
from repro.middleware.coap import CoapClient, CoapServer, CoapTransport
from repro.middleware.coap.resource import CallbackResource
from repro.devices.sensors import SensorFault
from repro.faults.plan import FaultPlan, FaultPlanRuntime
from repro.obs.export import export_run
from repro.obs.health import NodeHealthSampler, health_rows
from repro.obs.profiler import SimProfiler


@dataclass
class ReportRun:
    """Everything one instrumented demo run produced."""

    system: IIoTSystem
    profiler: Optional[SimProfiler]
    requests_sent: int = 0
    responses: int = 0
    failures: int = 0
    #: Trace ids of requests that were answered, in completion order.
    answered_traces: List[int] = field(default_factory=list)
    health: Optional[NodeHealthSampler] = None
    agg_results: List = field(default_factory=list)
    fault_plan: Optional[FaultPlanRuntime] = None


def _demo_fault_plan(system, traffic_s: float) -> FaultPlan:
    """One of every scripted fault kind, scaled into the traffic window."""
    now = system.sim.now
    spacing = 20.0
    side = system.topology.size ** 0.5
    node_ids = sorted(nid for nid in system.nodes
                      if nid != system.topology.root_id)
    center = spacing * (side - 1) / 2.0
    return (
        FaultPlan()
        .crash(now + 0.10 * traffic_s, node_ids[-1],
               recover_after_s=0.20 * traffic_s)
        .sensor_fault(now + 0.25 * traffic_s, node_ids[0], "temp",
                      SensorFault.STUCK, clear_after_s=0.30 * traffic_s)
        .partition(now + 0.40 * traffic_s, cut_x=spacing * (side - 1) - 10.0,
                   heal_after_s=0.20 * traffic_s)
        .flap_link(now + 0.65 * traffic_s, node_ids[0], node_ids[1],
                   down_s=0.05 * traffic_s, cycles=2, up_s=0.05 * traffic_s)
        .interference(now + 0.70 * traffic_s, 0.20 * traffic_s,
                      position=(center, center))
    )


def run_demo(
    side: int = 3,
    converge_s: float = 180.0,
    traffic_s: float = 120.0,
    seed: int = 2018,
    profile: bool = True,
    faults: bool = False,
    span_sample_rate: float = 1.0,
    span_max_stored: Optional[int] = None,
    telemetry_interval_s: Optional[float] = None,
    live_sink=None,
) -> ReportRun:
    """Build, converge, and exercise one fully instrumented system.

    ``telemetry_interval_s`` attaches the windowed telemetry engine and
    flight recorder; ``live_sink`` (a writable text handle) streams each
    closed window as JSONL while the run advances — the ``--live`` wire
    that ``python -m repro tail`` reads.
    """
    config = SystemConfig(observability=True,
                          span_sample_rate=span_sample_rate,
                          span_max_stored=span_max_stored,
                          telemetry_interval_s=telemetry_interval_s)
    system = IIoTSystem.build(grid_topology(side), config=config, seed=seed)
    if live_sink is not None and system.telemetry is not None:
        system.telemetry.sink = live_sink
    profiler = SimProfiler(system.sim) if profile else None
    system.add_field_sensors("temp", DiurnalField(mean=21.0))
    system.start()
    system.run(converge_s)

    # Every non-root node serves its sensor reading; the root polls them.
    for node in system.nodes.values():
        if node.is_root:
            continue
        transport = CoapTransport(node.stack)
        server = CoapServer(transport)
        server.add_resource(CallbackResource(
            "/temp", on_get=lambda n=node: (n.sensors["temp"].read(), 4)))
    client = CoapClient(CoapTransport(system.root.stack))
    run = ReportRun(system=system, profiler=profiler)

    # Middleware under observation: one epoch-aggregation query and a
    # gossiped CRDT counter, so the dashboard has anti-entropy rounds
    # and aggregation epochs to show alongside the data plane.
    services = {nid: AggregationService(node)
                for nid, node in system.nodes.items()}
    epoch_s = max(20.0, traffic_s / 4.0)
    services[system.topology.root_id].run_query(
        "temp", "avg", epoch_s=epoch_s, on_result=run.agg_results.append,
    )
    replicators: Dict[int, NetworkReplicator] = {}
    for nid, node in system.nodes.items():
        replica = CrdtReplica(nid, GCounter(nid))
        replicators[nid] = NetworkReplicator(node.stack, replica)
        replicators[nid].start()
        replica.mutate(lambda s: s.increment())
        replicators[nid].notify_local_update()

    # Per-node health telemetry on a sim-time cadence (explicitly
    # attached: the sampler schedules events, so it is never implied by
    # observability=True alone).
    run.health = NodeHealthSampler(system, period_s=30.0,
                                   replicators=replicators)
    run.health.start()

    spans = system.obs.spans

    def poll(node_id: int) -> None:
        before = set(spans.trace_ids()) if spans is not None else set()

        def on_response(response) -> None:
            if response is None:
                run.failures += 1
                return
            run.responses += 1
            if spans is not None:
                new = [t for t in spans.trace_ids() if t not in before]
                if new:
                    run.answered_traces.append(new[0])

        client.get(node_id, "/temp", on_response)
        run.requests_sent += 1

    targets = sorted(nid for nid in system.nodes if nid != system.topology.root_id)
    interval = max(1.0, traffic_s / (2 * max(1, len(targets))))
    for index, node_id in enumerate(targets):
        system.sim.schedule(index * interval, lambda n=node_id: poll(n))
    if faults:
        run.fault_plan = _demo_fault_plan(system, traffic_s).install(system)
    system.run(traffic_s)

    # Freeze end-of-run levels into the registry as gauges.
    run.health.sample_once()
    registry = system.obs.registry
    for node_id in sorted(system.nodes):
        node = system.nodes[node_id]
        registry.set("radio.duty_cycle", node.stack.mac.duty_cycle(),
                     node=node_id)
    return run


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _section(title: str) -> str:
    return f"\n{title}\n{'-' * len(title)}"


def _first_trace_of(spans, categories) -> Optional[int]:
    """The lowest trace id containing a span of one of ``categories``."""
    for trace_id in spans.trace_ids():
        for span in spans.spans_for(trace_id):
            if span.category in categories:
                return trace_id
    return None


def _format_table(rows: List[Dict], columns: List[str]) -> List[str]:
    """Fixed-width text table; floats shortened, missing cells blank."""
    def cell(row: Dict, col: str) -> str:
        value = row.get(col, "")
        if isinstance(value, float):
            return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
        return str(value)

    widths = {c: max(len(c), max((len(cell(r, c)) for r in rows), default=0))
              for c in columns}
    lines = ["  ".join(f"{c:>{widths[c]}}" for c in columns)]
    for row in rows:
        lines.append("  ".join(f"{cell(row, c):>{widths[c]}}" for c in columns))
    return lines


def render_report(run: ReportRun, top: int = 8) -> str:
    """The dashboard, as printable text."""
    system = run.system
    registry = system.obs.registry
    trace = system.trace
    lines: List[str] = []
    lines.append(
        f"observability report — {system.topology.size} nodes, "
        f"t={system.sim.now:.0f}s, seed={system.sim.seed}, "
        f"{system.joined_fraction():.0%} joined"
    )

    lines.append(_section("delivery"))
    sent = registry.total("net.sent")
    delivered = registry.total("net.delivered")
    ratio = delivered / sent if sent else 0.0
    lines.append(f"datagrams: sent={sent:.0f} delivered={delivered:.0f} "
                 f"({ratio:.0%}) forwarded={registry.total('net.forwarded'):.0f} "
                 f"dropped={registry.total('net.dropped'):.0f}")
    lines.append(f"coap: requests={run.requests_sent} responses={run.responses} "
                 f"failures={run.failures} "
                 f"retransmits={registry.total('coap.retransmit'):.0f}")
    lines.append(f"mac tx: {registry.total('mac.tx'):.0f} jobs, "
                 f"queue drops={registry.total('mac.queue_drop'):.0f}")
    from repro.net.mac.analysis import mac_summary_lines
    lines.extend(mac_summary_lines(
        [system.nodes[nid].stack.mac for nid in sorted(system.nodes)]))

    latencies = registry.values("net.latency_s")
    lines.append(_section("end-to-end latency"))
    if latencies:
        lines.append(
            f"n={len(latencies)}  p50={percentile(latencies, 0.5):.4f}s  "
            f"p95={percentile(latencies, 0.95):.4f}s  "
            f"max={max(latencies):.4f}s"
        )
        exemplars = registry.exemplars_for("net.latency_s")[:3]
        if exemplars:
            # The histogram's worst exemplar traces, linked so the p95
            # row leads straight to attributable span trees.
            lines.append("worst exemplar traces: " + ", ".join(
                f"{trace} ({value:.4f}s)" for value, trace in exemplars)
                + "  [python -m repro explain --trace ID]")
    else:
        lines.append("(no delivered datagrams)")

    duty = [system.nodes[nid].stack.mac.duty_cycle()
            for nid in sorted(system.nodes)]
    lines.append(_section("radio duty cycle"))
    lines.append(f"min={min(duty):.1%}  mean={sum(duty) / len(duty):.1%}  "
                 f"max={max(duty):.1%}")

    lines.append(_section("control plane"))
    lines.append(
        f"rpl: dio={registry.total('rpl.dio'):.0f} "
        f"dao={registry.total('rpl.dao'):.0f} "
        f"parent switches={registry.total('rpl.parent_change'):.0f} "
        f"detaches={registry.total('rpl.detach'):.0f}"
    )
    trickle_tx = registry.total("rpl.trickle.tx")
    trickle_sup = registry.total("rpl.trickle.suppressed")
    fired = trickle_tx + trickle_sup
    suppression = trickle_sup / fired if fired else 0.0
    lines.append(
        f"trickle: tx={trickle_tx:.0f} suppressed={trickle_sup:.0f} "
        f"({suppression:.0%}) resets={registry.total('rpl.trickle.reset'):.0f}"
    )
    rnfd_probes = registry.total("rnfd.probe")
    if rnfd_probes:
        lines.append(
            f"rnfd: probes={rnfd_probes:.0f} "
            f"locally_down={registry.total('rnfd.locally_down'):.0f} "
            f"verdicts={registry.total('rnfd.globally_down'):.0f}"
        )

    lines.append(_section("middleware"))
    lines.append(
        f"aggregation: partials={registry.total('agg.partial'):.0f} "
        f"folds={registry.total('agg.fold'):.0f} "
        f"epochs={registry.total('agg.result'):.0f}"
        + (f" (last avg={run.agg_results[-1].value:.1f} over "
           f"{run.agg_results[-1].node_count} nodes)" if run.agg_results else "")
    )
    lines.append(
        f"crdt: anti-entropy rounds={registry.total('crdt.gossip'):.0f} "
        f"({registry.total('crdt.gossip_bytes'):.0f} B) "
        f"merges={registry.total('crdt.merge'):.0f}"
    )
    lags = registry.values("crdt.merge_lag_s")
    if lags:
        lines.append(
            f"merge convergence lag: n={len(lags)} "
            f"p50={percentile(lags, 0.5):.1f}s p95={percentile(lags, 0.95):.1f}s"
        )

    spans = system.obs.spans
    if spans is not None:
        fault_spans = sorted(
            (s for s in spans.spans.values()
             if s.category.startswith("fault.")),
            key=lambda s: (s.start, s.span_id),
        )
        if fault_spans:
            lines.append(_section("fault timeline"))
            lines.append(f"injected: {registry.total('fault.injected'):.0f} "
                         f"fault events across {len(fault_spans)} spans")
            for span in fault_spans:
                end = f"{span.end:.0f}" if span.end is not None else "open"
                where = f" node={span.node}" if span.node is not None else ""
                extras = " ".join(f"{k}={v}"
                                  for k, v in sorted(span.data.items()))
                lines.append(
                    f"t={span.start:.0f}..{end}s {span.category}{where}"
                    + (f" {extras}" if extras else "")
                )

    telemetry = system.telemetry
    if telemetry is not None:
        lines.append(_section("telemetry windows"))
        lines.append(
            f"interval={telemetry.interval_s:g}s closed={telemetry.windows_closed} "
            f"retained={len(telemetry.windows)} dropped={telemetry.dropped} "
            f"alerts={telemetry.alerts_fired}")
        last = telemetry.last_window
        if last is not None:
            lines.append(
                f"last window {last.index} t={last.start:.0f}..{last.end:.0f}s: "
                f"sent={last.counter_total('net.sent'):.0f} "
                f"delivered={last.counter_total('net.delivered'):.0f} "
                f"mac.tx={last.counter_total('mac.tx'):.0f}")
        recorder = system.recorder
        if recorder is not None and recorder.dumps:
            lines.append(f"flight dumps: {len(recorder.dumps)} "
                         f"(+{recorder.suppressed} suppressed)")

    rows = health_rows(registry)
    if rows:
        lines.append(_section("node health (last sample)"))
        columns = ["node", "alive", "duty_cycle", "avg_ma", "queue",
                   "q_drops", "nbrs", "rank", "parent", "crdt_stale_s"]
        lines.extend(_format_table(rows, columns))

    lines.append(_section(f"top trace categories (of {len(trace.counters)})"))
    ranked = sorted(trace.counters.items(), key=lambda kv: (-kv[1], kv[0]))
    for category, count in ranked[:top]:
        lines.append(f"{category:<28} {count:>9,}")

    if run.profiler is not None:
        lines.append(_section("simulation wall-time hot spots"))
        lines.append(run.profiler.table(top))

    spans = system.obs.spans
    if spans is not None and run.answered_traces:
        lines.append(_section("sample packet lifecycle (first answered GET)"))
        lines.append(spans.render(run.answered_traces[0]))

    if spans is not None:
        control = _first_trace_of(spans, ("rpl.parent_switch", "rnfd.verdict"))
        if control is not None:
            lines.append(_section("sample control-plane lifecycle"))
            lines.append(spans.render(control))
        middleware = _first_trace_of(spans, ("crdt.anti_entropy", "agg.epoch",
                                             "agg.partial"))
        if middleware is not None:
            lines.append(_section("sample middleware lifecycle"))
            lines.append(spans.render(middleware))

    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def report_main(argv) -> int:
    """``python -m repro report`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Run an instrumented demo deployment and print the "
                    "observability dashboard (metrics, spans, profiler).",
    )
    parser.add_argument("--side", type=int, default=3,
                        help="grid side length (default: 3 -> 9 nodes)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="seconds of CoAP traffic after convergence")
    parser.add_argument("--seed", type=int, default=2018,
                        help="simulation seed (default: 2018)")
    parser.add_argument("--top", type=int, default=8,
                        help="rows per ranked table (default: 8)")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip kernel wall-time profiling")
    parser.add_argument("--faults", action="store_true",
                        help="drive a demo fault plan (crash, sensor fault, "
                             "partition, link flap, interference) through "
                             "the traffic window")
    parser.add_argument("--export", metavar="DIR",
                        help="write spans.jsonl / metrics.csv / trace.jsonl "
                             "into DIR")
    parser.add_argument("--span-sample-rate", type=float, default=1.0,
                        metavar="RATE",
                        help="store only this fraction of span traces "
                             "(0..1, default 1.0; metrics stay exact, "
                             "ignored under gated runs)")
    parser.add_argument("--span-max-stored", type=int, default=None,
                        metavar="N",
                        help="ring-buffer bound on stored spans")
    parser.add_argument("--live", metavar="PATH", default=None,
                        help="stream telemetry windows as JSONL to PATH "
                             "('-' for stdout) while the run advances; "
                             "follow with `python -m repro tail PATH -f`")
    parser.add_argument("--telemetry-interval", type=float, default=None,
                        metavar="S",
                        help="telemetry window length in sim seconds "
                             "(default: duration/10 when --live is given, "
                             "else telemetry stays off)")
    args = parser.parse_args(argv)
    if args.side < 2:
        parser.error("--side must be >= 2")
    if not 0.0 <= args.span_sample_rate <= 1.0:
        parser.error("--span-sample-rate must be in [0, 1]")
    if args.telemetry_interval is not None and args.telemetry_interval <= 0:
        parser.error("--telemetry-interval must be positive")

    interval = args.telemetry_interval
    if interval is None and args.live is not None:
        interval = max(1.0, args.duration / 10.0)
    sink = None
    sink_file = None
    if args.live is not None:
        import sys as _sys
        if args.live == "-":
            sink = _sys.stdout
        else:
            sink = sink_file = open(args.live, "w")
    try:
        run = run_demo(side=args.side, traffic_s=args.duration, seed=args.seed,
                       profile=not args.no_profile, faults=args.faults,
                       span_sample_rate=args.span_sample_rate,
                       span_max_stored=args.span_max_stored,
                       telemetry_interval_s=interval,
                       live_sink=sink)
    finally:
        if sink_file is not None:
            sink_file.close()
    print(render_report(run, top=args.top))
    if args.export:
        written: Dict[str, int] = export_run(
            run.system.trace, args.export,
            snapshot=run.system.obs.registry.snapshot(),
            topology=run.system.topology)
        print(_section("exported"))
        for name in sorted(written):
            print(f"{args.export}/{name}: {written[name]} records")
    return 0
