"""The labeled metrics registry.

Three instrument kinds, all labeled:

- :class:`Counter` — monotonically increasing occurrence counts
  (``mac.tx``, ``net.dropped``);
- :class:`Gauge` — last-written level samples (``radio.duty_cycle``);
- :class:`Histogram` — full-resolution value series with exact
  percentiles (``net.latency_s``).

A fourth, opt-in representation trades exactness for bounded memory:
:class:`SketchHistogram`, a fixed log-scale bucket sketch selected per
registry with ``Registry(histogram_sketch=True)``.  City-scale runs
(10k–50k nodes, PR 7) would otherwise retain every latency sample for
the whole run; the sketch keeps O(buckets) per series while preserving
exact ``count``/``sum``/``min``/``max`` and ±~15% quantile estimates.

Instruments are addressed as ``registry.counter("mac.tx", node=3)``;
the ``(name, sorted label items)`` pair identifies one time series.

Determinism is the design center: :meth:`Registry.snapshot` captures a
plain-data :class:`MetricsSnapshot` (picklable, so trial workers can
return one per run), and :meth:`MetricsSnapshot.merge` combines
snapshots *in the order given*.  Trial executors yield results in
submission order regardless of worker scheduling, so merging per-trial
snapshots produces byte-identical aggregates for every ``jobs`` count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import percentile

#: One time-series key: metric name + sorted ``(label, value)`` items.
SeriesKey = Tuple[str, Tuple[Tuple[str, Any], ...]]

#: Frozen sketch payload: ``(count, sum, min, max, ((bucket, n), ...))``
#: with buckets sorted by index — plain data, picklable, mergeable.
SketchData = Tuple[int, float, float, float, Tuple[Tuple[int, int], ...]]

#: Frozen exemplar reservoir: ``(cap, ((bucket, ((value, trace), ...)),
#: ...))`` with buckets sorted by index and entries in observation
#: order — plain data, picklable, mergeable in the order given.
ExemplarData = Tuple[int, Tuple[Tuple[int, Tuple[Tuple[float, int], ...]], ...]]


def _series_key(name: str, labels: Dict[str, Any]) -> SeriesKey:
    return name, tuple(sorted(labels.items()))


# ----------------------------------------------------------------------
# exemplar reservoirs (shared by both histogram representations)
# ----------------------------------------------------------------------
# Exemplars link histogram buckets back to the span traces that landed
# in them: ``observe(..., exemplar=trace_id)`` keeps the first ``cap``
# ``(value, trace_id)`` pairs per log bucket (the same bucket index the
# sketch uses, so exact and sketch registries agree on placement).
# First-K is the deterministic reservoir policy: observation order is
# seed-determined, and merging concatenates per bucket in the order
# given before re-truncating — byte-identical for every jobs count.
# Exemplars never feed back into the metric values themselves.
def _add_exemplar(self, value: float, trace_id: int) -> None:
    """Remember ``trace_id`` as an exemplar for ``value``'s bucket."""
    if self.exemplar_cap <= 0:
        return
    bucket = _sketch_bucket(value)
    entries = self.exemplars.get(bucket)
    if entries is None:
        entries = self.exemplars[bucket] = []
    if len(entries) < self.exemplar_cap:
        entries.append((value, int(trace_id)))


def _freeze_exemplars(self) -> ExemplarData:
    """Plain-data view of the reservoir (buckets sorted by index)."""
    return (self.exemplar_cap,
            tuple((idx, tuple(entries))
                  for idx, entries in sorted(self.exemplars.items())))


def merge_exemplars(a: ExemplarData, b: ExemplarData) -> ExemplarData:
    """Merge two frozen reservoirs *in the order given*.

    Per bucket: concatenate ``a``'s entries then ``b``'s, re-truncate to
    the cap (first snapshot's cap wins, mirroring gauge last-write /
    first-structure conventions).  Order-given merging keeps the result
    byte-identical across jobs counts and chunksizes.
    """
    cap = a[0]
    buckets: Dict[int, List[Tuple[float, int]]] = {idx: list(entries) for idx, entries in a[1]}
    for idx, entries in b[1]:
        buckets.setdefault(idx, []).extend(entries)
    return (cap, tuple((idx, tuple(entries[:cap]))
                       for idx, entries in sorted(buckets.items())))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A last-written level."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """An exact value series (simulation scale permits full resolution).

    ``record`` is the bound ``values.append`` — hot paths cache the
    instrument and call ``instrument.record(v)``, which is one C call
    and works identically on :class:`SketchHistogram`.
    """

    __slots__ = ("name", "labels", "values", "record",
                 "exemplar_cap", "exemplars")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...],
                 exemplar_cap: int = 0) -> None:
        self.name = name
        self.labels = labels
        self.values: List[float] = []
        self.record = self.values.append
        self.exemplar_cap = exemplar_cap
        self.exemplars: Dict[int, List[Tuple[float, int]]] = {}

    def observe(self, value: float) -> None:
        self.values.append(value)

    add_exemplar = _add_exemplar
    freeze_exemplars = _freeze_exemplars

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    def percentile(self, fraction: float) -> float:
        return percentile(self.values, fraction)


# ----------------------------------------------------------------------
# log-scale histogram sketch (opt-in, bounded memory)
# ----------------------------------------------------------------------
#: Bucket resolution: 8 buckets per decade → bucket edges grow by
#: 10^(1/8) ≈ 1.33×, so a quantile estimate is within ~±15% of exact.
_SKETCH_BUCKETS_PER_DECADE = 8
#: Values at/below 10^-9 (and zero/negative) share the low clamp bucket;
#: values at/above 10^9 share the high clamp bucket.  The exact
#: ``min``/``max`` carried alongside keep clamped estimates honest.
_SKETCH_LO_IDX = -9 * _SKETCH_BUCKETS_PER_DECADE          # edge 1e-9
_SKETCH_HI_IDX = 9 * _SKETCH_BUCKETS_PER_DECADE           # edge 1e9
_SKETCH_UNDER_IDX = _SKETCH_LO_IDX - 1                    # zero/negative/tiny


def _sketch_bucket(value: float) -> int:
    if value < 1e-9:
        return _SKETCH_UNDER_IDX
    idx = math.floor(math.log10(value) * _SKETCH_BUCKETS_PER_DECADE)
    if idx < _SKETCH_LO_IDX:
        return _SKETCH_UNDER_IDX
    if idx >= _SKETCH_HI_IDX:
        return _SKETCH_HI_IDX
    return idx


def _sketch_bucket_value(idx: int, lo: float, hi: float) -> float:
    """Representative value of a bucket, clamped to the exact [min, max]."""
    if idx <= _SKETCH_UNDER_IDX:
        rep = 0.0
    else:
        rep = 10.0 ** ((idx + 0.5) / _SKETCH_BUCKETS_PER_DECADE)
    return min(max(rep, lo), hi)


def sketch_percentile(data: SketchData, fraction: float) -> float:
    """Quantile estimate from a frozen sketch (bucket midpoint walk)."""
    count, _total, lo, hi, buckets = data
    if count == 0:
        return 0.0
    rank = fraction * (count - 1)
    seen = 0
    for idx, n in buckets:
        seen += n
        if seen > rank:
            return _sketch_bucket_value(idx, lo, hi)
    return hi


def merge_sketch(a: SketchData, b: SketchData) -> SketchData:
    """Elementwise-merge two frozen sketches (commutative, lossless)."""
    counts: Dict[int, int] = dict(a[4])
    for idx, n in b[4]:
        counts[idx] = counts.get(idx, 0) + n
    count = a[0] + b[0]
    lo = min(a[2], b[2]) if count else 0.0
    hi = max(a[3], b[3]) if count else 0.0
    if a[0] == 0:
        lo, hi = b[2], b[3]
    elif b[0] == 0:
        lo, hi = a[2], a[3]
    return (count, a[1] + b[1], lo, hi, tuple(sorted(counts.items())))


class SketchHistogram:
    """Fixed-bucket log-scale histogram: O(buckets) memory per series.

    Drop-in for :class:`Histogram` at every *write* site (``observe`` /
    the cached ``record`` callable); readers that need raw samples
    (``Registry.values``) get an empty list — the sketch keeps none.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max",
                 "buckets", "record", "exemplar_cap", "exemplars")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...],
                 exemplar_cap: int = 0) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}
        self.record = self.observe
        self.exemplar_cap = exemplar_cap
        self.exemplars: Dict[int, List[Tuple[float, int]]] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = _sketch_bucket(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    add_exemplar = _add_exemplar
    freeze_exemplars = _freeze_exemplars

    def freeze(self) -> SketchData:
        if self.count == 0:
            return (0, 0.0, 0.0, 0.0, ())
        return (self.count, self.sum, self.min, self.max,
                tuple(sorted(self.buckets.items())))

    def percentile(self, fraction: float) -> float:
        return sketch_percentile(self.freeze(), fraction)


class Registry:
    """Get-or-create instrument store for one run (or one trial).

    ``histogram_sketch=True`` swaps every histogram for a
    :class:`SketchHistogram`: same write API, bounded memory, and the
    snapshot lands in :attr:`MetricsSnapshot.sketches` instead of
    ``histograms``.  The mode is per-registry (never mixed), so merge
    partners always agree on representation.
    """

    def __init__(self, histogram_sketch: bool = False,
                 exemplar_max_per_bucket: int = 4) -> None:
        self.histogram_sketch = histogram_sketch
        self.exemplar_max_per_bucket = exemplar_max_per_bucket
        self._histogram_cls = SketchHistogram if histogram_sketch else Histogram
        self._counters: Dict[SeriesKey, Counter] = {}
        self._gauges: Dict[SeriesKey, Gauge] = {}
        self._histograms: Dict[SeriesKey, Any] = {}
        # Instrument lookup caches keyed on the *call-site* label order
        # ((name, tuple(labels.items()))), so the hot path skips the
        # per-call sort in _series_key after first touch.  Different
        # orderings of the same labels simply cache to the same
        # instrument under two cache keys.
        self._counter_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Counter] = {}
        self._gauge_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Gauge] = {}
        self._histogram_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Any] = {}

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        cache_key = (name, tuple(labels.items()))
        instrument = self._counter_cache.get(cache_key)
        if instrument is None:
            key = _series_key(name, labels)
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(name, key[1])
            self._counter_cache[cache_key] = instrument
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        cache_key = (name, tuple(labels.items()))
        instrument = self._gauge_cache.get(cache_key)
        if instrument is None:
            key = _series_key(name, labels)
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(name, key[1])
            self._gauge_cache[cache_key] = instrument
        return instrument

    def histogram(self, name: str, **labels: Any) -> Any:
        cache_key = (name, tuple(labels.items()))
        instrument = self._histogram_cache.get(cache_key)
        if instrument is None:
            key = _series_key(name, labels)
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = self._histogram_cls(
                    name, key[1], self.exemplar_max_per_bucket)
            self._histogram_cache[cache_key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # one-shot conveniences (the instrumentation hot path)
    # ------------------------------------------------------------------
    # These inline the cache probe instead of delegating to
    # counter()/gauge()/histogram(): the delegation would re-pack the
    # labels dict into kwargs a second time per call, and these three
    # run once per packet/hop/frame in instrumented runs — the
    # overhead-percentage number in BENCH_core.json is mostly them.
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        instrument = self._counter_cache.get((name, tuple(labels.items())))
        if instrument is None:
            instrument = self.counter(name, **labels)
        instrument.inc(amount)

    def set(self, name: str, value: float, **labels: Any) -> None:
        instrument = self._gauge_cache.get((name, tuple(labels.items())))
        if instrument is None:
            instrument = self.gauge(name, **labels)
        instrument.value = value

    def observe(self, name: str, value: float, exemplar: Optional[int] = None,
                **labels: Any) -> None:
        # ``exemplar`` is an explicit keyword (ahead of **labels) so a
        # trace id is never mistaken for a label dimension.
        instrument = self._histogram_cache.get((name, tuple(labels.items())))
        if instrument is None:
            instrument = self.histogram(name, **labels)
        # `record` is values.append (exact) or SketchHistogram.observe
        # (sketch) — bound once at instrument construction, so the mode
        # branch costs nothing here.
        instrument.record(value)
        if exemplar is not None:
            instrument.add_exemplar(value, exemplar)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def values(self, name: str) -> List[float]:
        """Concatenated histogram observations over every label set,
        in deterministic (sorted-key) order.

        Sketch-mode registries keep no raw samples, so this is empty —
        use ``snapshot().sketches`` (count/sum/quantile estimates)
        instead.
        """
        if self.histogram_sketch:
            return []
        out: List[float] = []
        for key in sorted(self._histograms, key=repr):
            if key[0] == name:
                out.extend(self._histograms[key].values)
        return out

    def exemplars_for(self, name: str) -> List[Tuple[float, int]]:
        """Live view of :meth:`MetricsSnapshot.exemplars_for`: every
        ``(value, trace_id)`` exemplar of ``name``, worst first."""
        out: List[Tuple[float, int]] = []
        for key in sorted(self._histograms, key=repr):
            if key[0] == name:
                for entries in self._histograms[key].exemplars.values():
                    out.extend(entries)
        out.sort(key=lambda entry: (-entry[0], entry[1]))
        return out

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze the registry into plain, picklable data."""
        exemplars = {k: h.freeze_exemplars()
                     for k, h in self._histograms.items() if h.exemplars}
        if self.histogram_sketch:
            return MetricsSnapshot(
                counters={k: c.value for k, c in self._counters.items()},
                gauges={k: g.value for k, g in self._gauges.items()},
                sketches={k: h.freeze() for k, h in self._histograms.items()},
                exemplars=exemplars,
            )
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={k: tuple(h.values) for k, h in self._histograms.items()},
            exemplars=exemplars,
        )


@dataclass
class MetricsSnapshot:
    """A frozen registry: plain dicts keyed by :data:`SeriesKey`.

    Equality is value equality over every series, which is what the
    ``jobs=1`` vs ``jobs=N`` identity tests compare.
    """

    counters: Dict[SeriesKey, float] = field(default_factory=dict)
    gauges: Dict[SeriesKey, float] = field(default_factory=dict)
    histograms: Dict[SeriesKey, Tuple[float, ...]] = field(default_factory=dict)
    sketches: Dict[SeriesKey, SketchData] = field(default_factory=dict)
    #: Exemplar reservoirs per histogram series — annotation, never a
    #: metric: `repro diff` and `rows()` ignore it by design.
    exemplars: Dict[SeriesKey, ExemplarData] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Combine snapshots *in the order given*.

        Counters, histograms, and sketches are commutative (sum /
        concatenate / bucket-add); gauges are last-write-wins, which is
        why order matters and why callers must merge in trial-index
        order (the order every :class:`~repro.parallel.TrialExecutor`
        already yields).
        """
        merged = cls()
        for snap in snapshots:
            for key, value in snap.counters.items():
                merged.counters[key] = merged.counters.get(key, 0.0) + value
            for key, value in snap.gauges.items():
                merged.gauges[key] = value
            for key, values in snap.histograms.items():
                merged.histograms[key] = merged.histograms.get(key, ()) + tuple(values)
            for key, data in snap.sketches.items():
                prior = merged.sketches.get(key)
                merged.sketches[key] = data if prior is None else merge_sketch(prior, data)
            for key, data in snap.exemplars.items():
                prior = merged.exemplars.get(key)
                merged.exemplars[key] = data if prior is None else merge_exemplars(prior, data)
        return merged

    # ------------------------------------------------------------------
    def counter_total(self, name: str) -> float:
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def histogram_values(self, name: str) -> List[float]:
        out: List[float] = []
        for key in sorted(self.histograms, key=repr):
            if key[0] == name:
                out.extend(self.histograms[key])
        return out

    def exemplars_for(self, name: str) -> List[Tuple[float, int]]:
        """Every ``(value, trace_id)`` exemplar recorded for ``name``,
        across label sets and buckets, sorted by descending value (ties
        by trace id) — index 0 is the worst case on record."""
        out: List[Tuple[float, int]] = []
        for key in sorted(self.exemplars, key=repr):
            if key[0] == name:
                for _idx, entries in self.exemplars[key][1]:
                    out.extend(entries)
        out.sort(key=lambda entry: (-entry[0], entry[1]))
        return out

    # ------------------------------------------------------------------
    # JSON round trip (the `repro diff` interchange format)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON shape: series listed in deterministic key order.

        Label keys are always strings (they arrive as kwargs); label
        values survive the round trip for JSON scalars (str/int/float/
        bool), which is every label the codebase emits.
        """
        def series(mapping: Dict[SeriesKey, Any]) -> List[Dict[str, Any]]:
            out = []
            for key in sorted(mapping, key=repr):
                name, labels = key
                value = mapping[key]
                out.append({"name": name, "labels": dict(labels),
                            "value": list(value) if isinstance(value, tuple) else value})
            return out

        payload = {
            "format": "repro.metrics/1",
            "counters": series(self.counters),
            "gauges": series(self.gauges),
            "histograms": series(self.histograms),
        }
        if self.sketches:
            # Additive key: emitted only when present so exact-mode
            # exports stay byte-identical to pre-sketch baselines.
            sketch_rows = []
            for key in sorted(self.sketches, key=repr):
                name, labels = key
                count, total, lo, hi, buckets = self.sketches[key]
                sketch_rows.append({
                    "name": name, "labels": dict(labels),
                    "count": count, "sum": total, "min": lo, "max": hi,
                    "buckets": [[idx, n] for idx, n in buckets],
                })
            payload["sketches"] = sketch_rows
        if self.exemplars:
            # Additive key, same contract as "sketches": absent unless
            # exemplars were recorded, so pre-exemplar baselines stay
            # byte-identical.
            exemplar_rows = []
            for key in sorted(self.exemplars, key=repr):
                name, labels = key
                cap, buckets = self.exemplars[key]
                exemplar_rows.append({
                    "name": name, "labels": dict(labels), "cap": cap,
                    "buckets": [[idx, [[value, trace] for value, trace in entries]]
                                for idx, entries in buckets],
                })
            payload["exemplars"] = exemplar_rows
        return payload

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "MetricsSnapshot":
        if payload.get("format") != "repro.metrics/1":
            raise ValueError(f"not a repro metrics snapshot: format={payload.get('format')!r}")

        def key_of(entry: Dict[str, Any]) -> SeriesKey:
            return entry["name"], tuple(sorted(entry.get("labels", {}).items()))

        snap = cls()
        for entry in payload.get("counters", []):
            snap.counters[key_of(entry)] = float(entry["value"])
        for entry in payload.get("gauges", []):
            snap.gauges[key_of(entry)] = float(entry["value"])
        for entry in payload.get("histograms", []):
            snap.histograms[key_of(entry)] = tuple(float(v) for v in entry["value"])
        for entry in payload.get("sketches", []):
            snap.sketches[key_of(entry)] = (
                int(entry["count"]), float(entry["sum"]),
                float(entry["min"]), float(entry["max"]),
                tuple((int(i), int(n)) for i, n in entry["buckets"]),
            )
        for entry in payload.get("exemplars", []):
            snap.exemplars[key_of(entry)] = (
                int(entry["cap"]),
                tuple((int(idx), tuple((float(v), int(t)) for v, t in entries))
                      for idx, entries in entry["buckets"]),
            )
        return snap

    def rows(self) -> List[Dict[str, Any]]:
        """Flat, deterministically ordered rows (the CSV export shape)."""
        rows: List[Dict[str, Any]] = []

        def label_str(items: Tuple[Tuple[str, Any], ...]) -> str:
            return ",".join(f"{k}={v}" for k, v in items)

        for key in sorted(self.counters, key=repr):
            rows.append({"kind": "counter", "name": key[0],
                         "labels": label_str(key[1]),
                         "value": self.counters[key]})
        for key in sorted(self.gauges, key=repr):
            rows.append({"kind": "gauge", "name": key[0],
                         "labels": label_str(key[1]),
                         "value": self.gauges[key]})
        for key in sorted(self.histograms, key=repr):
            values = self.histograms[key]
            rows.append({"kind": "histogram", "name": key[0],
                         "labels": label_str(key[1]),
                         "value": sum(values), "count": len(values),
                         "p50": percentile(values, 0.5),
                         "p95": percentile(values, 0.95)})
        for key in sorted(self.sketches, key=repr):
            data = self.sketches[key]
            rows.append({"kind": "sketch", "name": key[0],
                         "labels": label_str(key[1]),
                         "value": data[1], "count": data[0],
                         "p50": sketch_percentile(data, 0.5),
                         "p95": sketch_percentile(data, 0.95)})
        return rows
