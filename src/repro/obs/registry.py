"""The labeled metrics registry.

Three instrument kinds, all labeled:

- :class:`Counter` — monotonically increasing occurrence counts
  (``mac.tx``, ``net.dropped``);
- :class:`Gauge` — last-written level samples (``radio.duty_cycle``);
- :class:`Histogram` — full-resolution value series with exact
  percentiles (``net.latency_s``).

Instruments are addressed as ``registry.counter("mac.tx", node=3)``;
the ``(name, sorted label items)`` pair identifies one time series.

Determinism is the design center: :meth:`Registry.snapshot` captures a
plain-data :class:`MetricsSnapshot` (picklable, so trial workers can
return one per run), and :meth:`MetricsSnapshot.merge` combines
snapshots *in the order given*.  Trial executors yield results in
submission order regardless of worker scheduling, so merging per-trial
snapshots produces byte-identical aggregates for every ``jobs`` count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import percentile

#: One time-series key: metric name + sorted ``(label, value)`` items.
SeriesKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _series_key(name: str, labels: Dict[str, Any]) -> SeriesKey:
    return name, tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A last-written level."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """An exact value series (simulation scale permits full resolution)."""

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    def percentile(self, fraction: float) -> float:
        return percentile(self.values, fraction)


class Registry:
    """Get-or-create instrument store for one run (or one trial)."""

    def __init__(self) -> None:
        self._counters: Dict[SeriesKey, Counter] = {}
        self._gauges: Dict[SeriesKey, Gauge] = {}
        self._histograms: Dict[SeriesKey, Histogram] = {}
        # Instrument lookup caches keyed on the *call-site* label order
        # ((name, tuple(labels.items()))), so the hot path skips the
        # per-call sort in _series_key after first touch.  Different
        # orderings of the same labels simply cache to the same
        # instrument under two cache keys.
        self._counter_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Counter] = {}
        self._gauge_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Gauge] = {}
        self._histogram_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Histogram] = {}

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        cache_key = (name, tuple(labels.items()))
        instrument = self._counter_cache.get(cache_key)
        if instrument is None:
            key = _series_key(name, labels)
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(name, key[1])
            self._counter_cache[cache_key] = instrument
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        cache_key = (name, tuple(labels.items()))
        instrument = self._gauge_cache.get(cache_key)
        if instrument is None:
            key = _series_key(name, labels)
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(name, key[1])
            self._gauge_cache[cache_key] = instrument
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        cache_key = (name, tuple(labels.items()))
        instrument = self._histogram_cache.get(cache_key)
        if instrument is None:
            key = _series_key(name, labels)
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(name, key[1])
            self._histogram_cache[cache_key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # one-shot conveniences (the instrumentation hot path)
    # ------------------------------------------------------------------
    # These inline the cache probe instead of delegating to
    # counter()/gauge()/histogram(): the delegation would re-pack the
    # labels dict into kwargs a second time per call, and these three
    # run once per packet/hop/frame in instrumented runs — the
    # overhead-percentage number in BENCH_core.json is mostly them.
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        instrument = self._counter_cache.get((name, tuple(labels.items())))
        if instrument is None:
            instrument = self.counter(name, **labels)
        instrument.inc(amount)

    def set(self, name: str, value: float, **labels: Any) -> None:
        instrument = self._gauge_cache.get((name, tuple(labels.items())))
        if instrument is None:
            instrument = self.gauge(name, **labels)
        instrument.value = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        instrument = self._histogram_cache.get((name, tuple(labels.items())))
        if instrument is None:
            instrument = self.histogram(name, **labels)
        instrument.values.append(value)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def values(self, name: str) -> List[float]:
        """Concatenated histogram observations over every label set,
        in deterministic (sorted-key) order."""
        out: List[float] = []
        for key in sorted(self._histograms, key=repr):
            if key[0] == name:
                out.extend(self._histograms[key].values)
        return out

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze the registry into plain, picklable data."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={k: tuple(h.values) for k, h in self._histograms.items()},
        )


@dataclass
class MetricsSnapshot:
    """A frozen registry: plain dicts keyed by :data:`SeriesKey`.

    Equality is value equality over every series, which is what the
    ``jobs=1`` vs ``jobs=N`` identity tests compare.
    """

    counters: Dict[SeriesKey, float] = field(default_factory=dict)
    gauges: Dict[SeriesKey, float] = field(default_factory=dict)
    histograms: Dict[SeriesKey, Tuple[float, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Combine snapshots *in the order given*.

        Counters and histograms are commutative (sum / concatenate);
        gauges are last-write-wins, which is why order matters and why
        callers must merge in trial-index order (the order every
        :class:`~repro.parallel.TrialExecutor` already yields).
        """
        merged = cls()
        for snap in snapshots:
            for key, value in snap.counters.items():
                merged.counters[key] = merged.counters.get(key, 0.0) + value
            for key, value in snap.gauges.items():
                merged.gauges[key] = value
            for key, values in snap.histograms.items():
                merged.histograms[key] = merged.histograms.get(key, ()) + tuple(values)
        return merged

    # ------------------------------------------------------------------
    def counter_total(self, name: str) -> float:
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def histogram_values(self, name: str) -> List[float]:
        out: List[float] = []
        for key in sorted(self.histograms, key=repr):
            if key[0] == name:
                out.extend(self.histograms[key])
        return out

    # ------------------------------------------------------------------
    # JSON round trip (the `repro diff` interchange format)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON shape: series listed in deterministic key order.

        Label keys are always strings (they arrive as kwargs); label
        values survive the round trip for JSON scalars (str/int/float/
        bool), which is every label the codebase emits.
        """
        def series(mapping: Dict[SeriesKey, Any]) -> List[Dict[str, Any]]:
            out = []
            for key in sorted(mapping, key=repr):
                name, labels = key
                value = mapping[key]
                out.append({"name": name, "labels": dict(labels),
                            "value": list(value) if isinstance(value, tuple) else value})
            return out

        return {
            "format": "repro.metrics/1",
            "counters": series(self.counters),
            "gauges": series(self.gauges),
            "histograms": series(self.histograms),
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "MetricsSnapshot":
        if payload.get("format") != "repro.metrics/1":
            raise ValueError(f"not a repro metrics snapshot: format={payload.get('format')!r}")

        def key_of(entry: Dict[str, Any]) -> SeriesKey:
            return entry["name"], tuple(sorted(entry.get("labels", {}).items()))

        snap = cls()
        for entry in payload.get("counters", []):
            snap.counters[key_of(entry)] = float(entry["value"])
        for entry in payload.get("gauges", []):
            snap.gauges[key_of(entry)] = float(entry["value"])
        for entry in payload.get("histograms", []):
            snap.histograms[key_of(entry)] = tuple(float(v) for v in entry["value"])
        return snap

    def rows(self) -> List[Dict[str, Any]]:
        """Flat, deterministically ordered rows (the CSV export shape)."""
        rows: List[Dict[str, Any]] = []

        def label_str(items: Tuple[Tuple[str, Any], ...]) -> str:
            return ",".join(f"{k}={v}" for k, v in items)

        for key in sorted(self.counters, key=repr):
            rows.append({"kind": "counter", "name": key[0],
                         "labels": label_str(key[1]),
                         "value": self.counters[key]})
        for key in sorted(self.gauges, key=repr):
            rows.append({"kind": "gauge", "name": key[0],
                         "labels": label_str(key[1]),
                         "value": self.gauges[key]})
        for key in sorted(self.histograms, key=repr):
            values = self.histograms[key]
            rows.append({"kind": "histogram", "name": key[0],
                         "labels": label_str(key[1]),
                         "value": sum(values), "count": len(values),
                         "p50": percentile(values, 0.5),
                         "p95": percentile(values, 0.95)})
        return rows
