"""``python -m repro tail`` — follow a run's telemetry stream.

Reads the window-JSONL wire format written by ``report --live`` (or any
:class:`~repro.obs.timeseries.TelemetryEngine` with a sink) and renders
one line per closed window.  With ``--follow`` it keeps polling the
file for new windows — the operator's view of a sweep in flight; the
poll uses wall-clock by necessity, which is fine because tailing only
*reads* a finished byte stream and can never perturb the run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, IO, Optional


def render_window_line(payload: Dict[str, Any], top: int = 3) -> str:
    """One human line per window: time range, activity, top movers."""
    counters = payload.get("counters", [])
    ranked = sorted(counters, key=lambda e: (-e["value"], e["name"]))[:top]

    def label_str(entry: Dict[str, Any]) -> str:
        labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
        return f"{entry['name']}{{{labels}}}" if labels else entry["name"]

    movers = "  ".join(f"{label_str(e)}={e['value']:g}" for e in ranked)
    alerts = payload.get("alerts", [])
    alert_str = f"  ALERTS: {','.join(alerts)}" if alerts else ""
    return (f"window {payload['index']:>4}  "
            f"t={payload['start']:.1f}..{payload['end']:.1f}s  "
            f"series={len(counters)}c/{len(payload.get('gauges', []))}g/"
            f"{len(payload.get('histograms', []))}h"
            f"{'  ' + movers if movers else ''}{alert_str}")


def _emit(line: str, raw: bool, out: IO[str]) -> None:
    payload = json.loads(line)
    if payload.get("format") != "repro.window/1":
        return
    out.write((line.strip() if raw else render_window_line(payload)) + "\n")
    out.flush()


def tail_main(argv, out: Optional[IO[str]] = None,
              sleep=time.sleep) -> int:
    """``python -m repro tail`` entry point.

    ``out``/``sleep`` are injectable for tests; production callers use
    stdout and real sleeping.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro tail",
        description="Render a run's telemetry window stream "
                    "(the JSONL written by `repro report --live PATH`).",
    )
    parser.add_argument("path", help="telemetry JSONL file to read")
    parser.add_argument("-f", "--follow", action="store_true",
                        help="keep polling for new windows (Ctrl-C to stop)")
    parser.add_argument("--interval", type=float, default=0.5, metavar="S",
                        help="poll interval in wall seconds with --follow "
                             "(default: 0.5)")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="stop after N windows (useful with --follow)")
    parser.add_argument("--raw", action="store_true",
                        help="print the raw JSONL lines instead of the "
                             "rendered summary")
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be positive")
    if args.limit is not None and args.limit < 1:
        parser.error("--limit must be >= 1")

    out = sys.stdout if out is None else out
    shown = 0
    try:
        with open(args.path, "r") as handle:
            while True:
                line = handle.readline()
                if line.endswith("\n"):
                    if line.strip():
                        _emit(line, args.raw, out)
                        shown += 1
                        if args.limit is not None and shown >= args.limit:
                            return 0
                    continue
                # At EOF (or a partially written last line): stop, or
                # poll for more when following.
                if not args.follow:
                    return 0
                sleep(args.interval)
                # rewind over any partial line so it is re-read whole
                if line:
                    handle.seek(handle.tell() - len(line))
    except KeyboardInterrupt:
        return 0
    except FileNotFoundError:
        print(f"tail: no such file: {args.path}", file=sys.stderr)
        return 2
