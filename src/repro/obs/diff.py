"""Metrics-snapshot diffing: the regression-hunting workhorse.

``python -m repro diff A.json B.json`` loads two exported
:class:`~repro.obs.registry.MetricsSnapshot` files (written by
``repro report --export``, ``benchmarks`` run with
``--export-metrics``/``REPRO_BENCH_EXPORT_METRICS=1``, or
:func:`repro.obs.export.write_metrics_json`), aligns every metric key,
and reports relative deltas.  ``--fail-on R`` makes the exit code
non-zero when any aligned series moved by more than the fraction ``R``
— which is what lets a Makefile gate (``make diff-core``) catch a
silent behaviour change the way the taxonomy gates caught the PR-2
medium rework.

Alignment rules: counters and gauges compare value-to-value;
histograms compare count, sum, p50 and p95 as four derived series.
Series present on only one side are always reported (and count as
failures under ``--fail-on``, since an appearing/disappearing metric is
a behaviour change too).
"""

from __future__ import annotations

import argparse
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.metrics import percentile
from repro.obs.registry import MetricsSnapshot, SeriesKey, sketch_percentile


@dataclass
class MetricDelta:
    """One aligned series and how far it moved."""

    kind: str
    name: str
    labels: Tuple[Tuple[str, Any], ...]
    a: Optional[float]
    b: Optional[float]

    @property
    def rel(self) -> float:
        """Relative change |b-a|/|a|; inf for one-sided series."""
        if self.a is None or self.b is None:
            return math.inf
        if self.a == self.b:
            return 0.0
        if self.a == 0.0:
            return math.inf
        return abs(self.b - self.a) / abs(self.a)

    @property
    def key(self) -> str:
        label_str = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{label_str}}}" if label_str else self.name


def _scalar_series(snap: MetricsSnapshot) -> Dict[Tuple[str, str, Tuple], float]:
    """Flatten a snapshot into comparable scalar series."""
    out: Dict[Tuple[str, str, Tuple], float] = {}
    for (name, labels), value in snap.counters.items():
        out[("counter", name, labels)] = value
    for (name, labels), value in snap.gauges.items():
        out[("gauge", name, labels)] = value
    for (name, labels), values in snap.histograms.items():
        out[("histogram", f"{name}.count", labels)] = float(len(values))
        out[("histogram", f"{name}.sum", labels)] = sum(values)
        if values:
            out[("histogram", f"{name}.p50", labels)] = percentile(values, 0.5)
            out[("histogram", f"{name}.p95", labels)] = percentile(values, 0.95)
    for (name, labels), data in snap.sketches.items():
        # Sketches diff on the same derived series as exact histograms
        # (count/sum exact; quantiles are bucket estimates on both
        # sides, so equal-seed runs still diff to zero).
        count, total = data[0], data[1]
        out[("sketch", f"{name}.count", labels)] = float(count)
        out[("sketch", f"{name}.sum", labels)] = total
        if count:
            out[("sketch", f"{name}.p50", labels)] = sketch_percentile(data, 0.5)
            out[("sketch", f"{name}.p95", labels)] = sketch_percentile(data, 0.95)
    return out


def diff_snapshots(
    a: MetricsSnapshot, b: MetricsSnapshot
) -> List[MetricDelta]:
    """Every aligned (and one-sided) series, sorted by descending
    relative change, ties broken by key for determinism."""
    series_a = _scalar_series(a)
    series_b = _scalar_series(b)
    deltas: List[MetricDelta] = []
    for key in set(series_a) | set(series_b):
        kind, name, labels = key
        deltas.append(MetricDelta(
            kind=kind, name=name, labels=labels,
            a=series_a.get(key), b=series_b.get(key),
        ))
    # One-sided series (rel=inf) first, then by descending rel; key
    # breaks ties so the ordering is deterministic.
    deltas.sort(key=lambda d: (0 if d.rel == math.inf else 1,
                               -min(d.rel, 1e18), d.key))
    return deltas


def load_snapshot(path: str) -> MetricsSnapshot:
    with open(path, "r", encoding="utf-8") as handle:
        return MetricsSnapshot.from_jsonable(json.load(handle))


def render_deltas(
    deltas: List[MetricDelta],
    threshold: float = 0.0,
    top: int = 40,
    show_all: bool = False,
) -> str:
    changed = [d for d in deltas if d.rel > threshold]
    lines = [
        f"{len(deltas)} aligned series, {len(changed)} over "
        f"threshold {threshold:g}",
    ]
    shown = deltas if show_all else changed[:top]
    if changed and not show_all and len(changed) > top:
        lines[0] += f" (showing top {top})"
    if shown:
        width = max(len(d.key) for d in shown)
        width = min(width, 64)
        for d in shown:
            a = "-" if d.a is None else f"{d.a:g}"
            b = "-" if d.b is None else f"{d.b:g}"
            rel = "new/gone" if d.rel == math.inf else f"{d.rel * 100:+.1f}%"
            marker = "!" if d.rel > threshold else " "
            lines.append(f" {marker} {d.key:<{width}}  {a} -> {b}  ({rel})")
    else:
        lines.append("  no differences")
    return "\n".join(lines)


def deltas_jsonable(
    deltas: List[MetricDelta],
    fail_on: Optional[float],
    exit_code: int,
) -> Dict[str, Any]:
    """The machine-readable diff shape behind ``repro diff --json``.

    Stable interchange format ``repro.diff/1``; ``rel`` is null for
    one-sided series (JSON has no infinity).
    """
    threshold = fail_on if fail_on is not None else 0.0
    return {
        "format": "repro.diff/1",
        "series": len(deltas),
        "changed": sum(1 for d in deltas if d.rel > threshold),
        "fail_on": fail_on,
        "exit": exit_code,
        "deltas": [
            {
                "key": d.key,
                "kind": d.kind,
                "name": d.name,
                "labels": dict(d.labels),
                "a": d.a,
                "b": d.b,
                "rel": None if d.rel == math.inf else d.rel,
                "one_sided": d.a is None or d.b is None,
                "over_threshold": d.rel > threshold,
            }
            for d in deltas
        ],
    }


def diff_main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.  Exit codes: 0 = within threshold, 1 = at least
    one series moved more than ``--fail-on``, 2 = usage/load error."""
    parser = argparse.ArgumentParser(
        prog="python -m repro diff",
        description="Diff two exported metrics snapshots.",
    )
    parser.add_argument("snapshot_a", help="baseline metrics JSON")
    parser.add_argument("snapshot_b", help="candidate metrics JSON")
    parser.add_argument("--fail-on", type=float, default=None, metavar="REL",
                        help="exit 1 when any series moves by more than this "
                             "relative fraction (e.g. 0.05 = 5%%)")
    parser.add_argument("--filter", default=None, metavar="PREFIX",
                        help="only consider metric names with this prefix")
    parser.add_argument("--top", type=int, default=40,
                        help="show at most this many changed series")
    parser.add_argument("--show-all", action="store_true",
                        help="list every aligned series, changed or not")
    parser.add_argument("--json", action="store_true",
                        help="emit the full delta list as repro.diff/1 JSON "
                             "instead of the human-readable table")
    args = parser.parse_args(argv)

    try:
        snap_a = load_snapshot(args.snapshot_a)
        snap_b = load_snapshot(args.snapshot_b)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        if args.json:
            print(json.dumps({"format": "repro.diff/1", "error": str(exc),
                              "exit": 2}))
        else:
            print(f"error: {exc}")
        return 2

    deltas = diff_snapshots(snap_a, snap_b)
    if args.filter:
        deltas = [d for d in deltas if d.name.startswith(args.filter)]
    threshold = args.fail_on if args.fail_on is not None else 0.0
    exit_code = 0
    if args.fail_on is not None and any(d.rel > args.fail_on for d in deltas):
        exit_code = 1
    if args.json:
        print(json.dumps(deltas_jsonable(deltas, args.fail_on, exit_code),
                         indent=1, sort_keys=True))
    else:
        print(render_deltas(deltas, threshold=threshold, top=args.top,
                            show_all=args.show_all))
    return exit_code
