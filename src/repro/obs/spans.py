"""Packet-lifecycle span tracing.

A *span* is one timed step of a datagram's journey — a CoAP request, a
network-layer send, one forwarding hop, one MAC job, one frame airtime —
linked to its parent by id.  All spans of one journey share a trace id,
so the whole path (app → CoAP → RPL forwarding hops → MAC
attempts/retransmissions → radio airtime and per-receiver outcomes)
reconstructs as a tree after the run.

The :class:`SpanContext` handle is threaded through the stack as the
``trace_ctx`` attribute of datagrams, packets, and MAC frames; every
layer that sees a context attaches its own child spans to it.  Ids are
allocated from per-tracer counters in event-execution order, so a seeded
run produces identical span ids run over run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


class SpanContext:
    """A cheap immutable reference to one span inside one trace."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One recorded step; ``end`` is None while the step is open.

    A plain ``__slots__`` class (not a dataclass): span construction is
    the single hottest allocation of an instrumented run, and skipping
    the per-instance ``__dict__`` keeps each record small and cheap.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "category", "node",
                 "start", "end", "data")

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
        category: str,
        node: Optional[int],
        start: float,
        end: Optional[float] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.category = category
        self.node = node
        self.start = start
        self.end = end
        self.data = data if data is not None else {}

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span(id={self.span_id}, trace={self.trace_id}, "
                f"parent={self.parent_id}, {self.category!r}, node={self.node}, "
                f"t={self.start}..{self.end}, data={self.data})")


@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    def depth(self) -> int:
        """Number of levels in this subtree (a leaf is depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def categories(self) -> List[str]:
        """Every category in the subtree, preorder."""
        return [node.span.category for node in self.walk()]

    def walk(self) -> Iterator["SpanNode"]:
        """Every node of the subtree, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


class SpanTracer:
    """Records spans and reconstructs per-trace trees."""

    def __init__(self) -> None:
        self.spans: Dict[int, Span] = {}
        self._by_trace: Dict[int, List[int]] = {}
        self._next_trace = 1
        self._next_span = 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def start(
        self,
        parent: Optional[SpanContext],
        category: str,
        node: Optional[int],
        t: float,
        **data: Any,
    ) -> SpanContext:
        """Open a span.  ``parent=None`` starts a fresh trace."""
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span_id = self._next_span
        self._next_span += 1
        self.spans[span_id] = Span(span_id, trace_id, parent_id,
                                   category, node, t, None, data)
        by_trace = self._by_trace.get(trace_id)
        if by_trace is None:
            by_trace = self._by_trace[trace_id] = []
        by_trace.append(span_id)
        return SpanContext(trace_id, span_id)

    def finish(self, ctx: SpanContext, t: float, **data: Any) -> None:
        """Close a span (idempotent: the first end time wins)."""
        span = self.spans.get(ctx.span_id)
        if span is None:
            return
        if span.end is None:
            span.end = t
        if data:
            span.data.update(data)

    def event(
        self,
        parent: SpanContext,
        category: str,
        node: Optional[int],
        t: float,
        **data: Any,
    ) -> SpanContext:
        """A zero-duration child span (a point occurrence on the path).

        Built closed in one allocation rather than via start()+finish().
        """
        span_id = self._next_span
        self._next_span += 1
        trace_id = parent.trace_id
        self.spans[span_id] = Span(span_id, trace_id, parent.span_id,
                                   category, node, t, t, data)
        by_trace = self._by_trace.get(trace_id)
        if by_trace is None:
            by_trace = self._by_trace[trace_id] = []
        by_trace.append(span_id)
        return SpanContext(trace_id, span_id)

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------
    def trace_ids(self) -> List[int]:
        return sorted(self._by_trace)

    def spans_for(self, trace_id: int) -> List[Span]:
        """Spans of one trace in recording (event-execution) order."""
        return [self.spans[sid] for sid in self._by_trace.get(trace_id, [])]

    def tree(self, trace_id: int) -> Optional[SpanNode]:
        """Rebuild one trace's span tree; None for unknown traces.

        Children sort by ``(start, span_id)``; multiple roots (possible
        if a root span was never recorded) are grafted under the
        earliest one.
        """
        spans = self.spans_for(trace_id)
        if not spans:
            return None
        nodes = {span.span_id: SpanNode(span) for span in spans}
        roots: List[SpanNode] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.span.start, n.span.span_id))
        root = roots[0]
        for orphan in roots[1:]:
            root.children.append(orphan)
        return root

    def traces_overlapping(self, since: float, until: float) -> List[int]:
        """Trace ids with at least one span inside ``[since, until]``."""
        hits = []
        for trace_id, span_ids in sorted(self._by_trace.items()):
            for sid in span_ids:
                span = self.spans[sid]
                end = span.end if span.end is not None else span.start
                if end >= since and span.start <= until:
                    hits.append(trace_id)
                    break
        return hits

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, trace_id: int) -> str:
        """Indented one-line-per-span rendering of a trace tree."""
        root = self.tree(trace_id)
        if root is None:
            return f"trace {trace_id}: <no spans>"
        lines = [f"trace {trace_id}:"]

        def visit(node: SpanNode, depth: int) -> None:
            span = node.span
            where = f" node={span.node}" if span.node is not None else ""
            extras = " ".join(f"{k}={v!r}" for k, v in sorted(span.data.items()))
            open_mark = "" if span.end is not None else " [open]"
            lines.append(
                f"  {'  ' * depth}{span.category}{where} "
                f"t={span.start:.4f}+{span.duration:.4f}s"
                f"{open_mark}{(' ' + extras) if extras else ''}"
            )
            for child in node.children:
                visit(child, depth + 1)

        visit(root, 0)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)
