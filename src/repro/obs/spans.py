"""Packet-lifecycle span tracing.

A *span* is one timed step of a datagram's journey — a CoAP request, a
network-layer send, one forwarding hop, one MAC job, one frame airtime —
linked to its parent by id.  All spans of one journey share a trace id,
so the whole path (app → CoAP → RPL forwarding hops → MAC
attempts/retransmissions → radio airtime and per-receiver outcomes)
reconstructs as a tree after the run.

The :class:`SpanContext` handle is threaded through the stack as the
``trace_ctx`` attribute of datagrams, packets, and MAC frames; every
layer that sees a context attaches its own child spans to it.  Ids are
allocated from per-tracer counters in event-execution order, so a seeded
run produces identical span ids run over run.

Two storage knobs keep long instrumented runs cheap (both default off,
so a plain ``SpanTracer()`` records everything, byte-identically to
every earlier release):

- **Sampling** (``sample_rate`` < 1.0) keeps a deterministic,
  seed-derived fraction of *traces* — whole trees, never torn ones.
  The decision hashes ``(sample_seed, trace_id)``; wall-clock and
  global RNG state are never consulted, so a seeded run samples the
  same traces every time, and trace *ids* advance exactly as in an
  unsampled run.
- **The ring buffer** (``max_spans``) bounds stored spans: once full,
  the oldest spans are evicted first — except *pinned* categories
  (the ones dependability gates and repro bundles grade), which are
  never dropped no matter how old.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


class SpanContext:
    """A cheap immutable reference to one span inside one trace."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One recorded step; ``end`` is None while the step is open.

    A plain ``__slots__`` class (not a dataclass): span construction is
    the single hottest allocation of an instrumented run, and skipping
    the per-instance ``__dict__`` keeps each record small and cheap.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "category", "node",
                 "start", "end", "data")

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
        category: str,
        node: Optional[int],
        start: float,
        end: Optional[float] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.category = category
        self.node = node
        self.start = start
        self.end = end
        self.data = data if data is not None else {}

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span(id={self.span_id}, trace={self.trace_id}, "
                f"parent={self.parent_id}, {self.category!r}, node={self.node}, "
                f"t={self.start}..{self.end}, data={self.data})")


@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    def depth(self) -> int:
        """Number of levels in this subtree (a leaf is depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def categories(self) -> List[str]:
        """Every category in the subtree, preorder."""
        return [node.span.category for node in self.walk()]

    def walk(self) -> Iterator["SpanNode"]:
        """Every node of the subtree, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


class SpanTracer:
    """Records spans and reconstructs per-trace trees.

    Parameters
    ----------
    sample_rate:
        Fraction of traces to keep, in ``[0.0, 1.0]``.  1.0 (default)
        records everything.  Sampling is per-*trace* — a kept trace
        stores every one of its spans, so reconstructed trees are
        always complete.
    sample_seed:
        Seed folded into the per-trace sampling hash.  Derive it from
        the run's master seed: same seed, same sampled traces, every
        run — never wall-clock, never global RNG.
    max_spans:
        Ring-buffer bound on *stored* spans; None (default) stores
        unboundedly.  When full, the oldest non-pinned spans are
        evicted first.
    pinned_categories:
        Categories the ring buffer must never evict (exact category or
        its first dotted segment: ``"fault"`` pins ``"fault.crash"``).
        These are the records dependability gates and repro bundles
        grade; they survive even if the buffer overruns its bound.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        sample_seed: int = 0,
        max_spans: Optional[int] = None,
        pinned_categories: Iterable[str] = (),
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0.0, 1.0]")
        if max_spans is not None and max_spans < 1:
            raise ValueError("max_spans must be >= 1 (or None)")
        self.spans: Dict[int, Span] = {}
        self._by_trace: Dict[int, List[int]] = {}
        self._next_trace = 1
        self._next_span = 1
        self.sample_rate = sample_rate
        self.sample_seed = sample_seed
        self.max_spans = max_spans
        self._pinned = frozenset(pinned_categories)
        #: Oldest span id not yet considered for eviction.  Span ids are
        #: allocated monotonically, so a single forward cursor finds the
        #: eviction victim in amortized O(1).
        self._evict_cursor = 1
        #: Traces skipped by sampling / spans dropped by the ring.
        self.sampled_out = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    # sampling + storage policy
    # ------------------------------------------------------------------
    def _trace_sampled(self, trace_id: int) -> bool:
        """Deterministic keep/skip decision for one trace.

        A splitmix-style integer hash of ``(sample_seed, trace_id)``
        scaled against the rate: stateless, seed-derived, and uniform
        enough that the kept fraction tracks ``sample_rate`` closely.
        """
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        h = (trace_id * 0x9E3779B97F4A7C15 + self.sample_seed * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 30
        h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 27
        return (h % 1_000_000) < int(self.sample_rate * 1_000_000)

    def _is_pinned(self, category: str) -> bool:
        return (category in self._pinned
                or category.split(".", 1)[0] in self._pinned)

    def _store(self, span: Span) -> None:
        self.spans[span.span_id] = span
        by_trace = self._by_trace.get(span.trace_id)
        if by_trace is None:
            by_trace = self._by_trace[span.trace_id] = []
        by_trace.append(span.span_id)
        if self.max_spans is not None and len(self.spans) > self.max_spans:
            self._evict()

    def _evict(self) -> None:
        """Drop oldest non-pinned spans until back under the bound.

        Pinned spans are skipped (and, once passed, never revisited —
        they are immortal by policy, so the cursor owes them nothing).
        If only pinned spans remain the buffer is allowed to exceed its
        bound: gated categories outrank the memory cap.
        """
        while (len(self.spans) > self.max_spans
               and self._evict_cursor < self._next_span):
            sid = self._evict_cursor
            self._evict_cursor += 1
            span = self.spans.get(sid)
            if span is None or self._is_pinned(span.category):
                continue
            del self.spans[sid]
            self.evicted += 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def start(
        self,
        parent: Optional[SpanContext],
        category: str,
        node: Optional[int],
        t: float,
        **data: Any,
    ) -> Optional[SpanContext]:
        """Open a span.  ``parent=None`` starts a fresh trace.

        Under sampling, an unsampled new trace returns ``None`` — the
        same value every layer already treats as "no span tracing
        here", so the whole downstream lifecycle (hops, MAC jobs,
        airtime, per-receiver outcomes) skips span work entirely and
        an unsampled trace costs one integer hash, total.  Pinned
        categories bypass sampling: a ``fault.*`` or gate-graded root
        span is recorded at any rate.
        """
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
            if not self._trace_sampled(trace_id) and not self._is_pinned(category):
                self.sampled_out += 1
                return None
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span_id = self._next_span
        self._next_span += 1
        self._store(Span(span_id, trace_id, parent_id,
                         category, node, t, None, data))
        return SpanContext(trace_id, span_id)

    def finish(self, ctx: Optional[SpanContext], t: float, **data: Any) -> None:
        """Close a span (idempotent: the first end time wins).

        ``ctx=None`` — an unsampled trace's handle — is a no-op, so
        callers can thread :meth:`start` results through without
        re-checking sampling decisions.
        """
        if ctx is None:
            return
        span = self.spans.get(ctx.span_id)
        if span is None:
            return
        if span.end is None:
            span.end = t
        if data:
            span.data.update(data)

    def annotate(self, ctx: Optional[SpanContext], **data: Any) -> None:
        """Attach data to an open span *without* closing it.

        Mid-span waypoints (e.g. the MAC job's ``service_start``) let
        the latency attributor split one span's interval into finer
        layers than start/end alone allow.  Same ``ctx=None`` no-op
        contract as :meth:`finish`.
        """
        if ctx is None or not data:
            return
        span = self.spans.get(ctx.span_id)
        if span is not None:
            span.data.update(data)

    def event(
        self,
        parent: Optional[SpanContext],
        category: str,
        node: Optional[int],
        t: float,
        **data: Any,
    ) -> Optional[SpanContext]:
        """A zero-duration child span (a point occurrence on the path).

        Built closed in one allocation rather than via start()+finish().
        ``parent=None`` (unsampled trace) records nothing.
        """
        if parent is None:
            return None
        span_id = self._next_span
        self._next_span += 1
        self._store(Span(span_id, parent.trace_id, parent.span_id,
                         category, node, t, t, data))
        return SpanContext(parent.trace_id, span_id)

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------
    def trace_ids(self) -> List[int]:
        """Trace ids with at least one span still stored."""
        return sorted(
            trace_id for trace_id, span_ids in self._by_trace.items()
            if any(sid in self.spans for sid in span_ids)
        )

    def spans_for(self, trace_id: int) -> List[Span]:
        """Stored spans of one trace in recording (event-execution)
        order.  Spans the ring buffer evicted are simply absent."""
        return [self.spans[sid] for sid in self._by_trace.get(trace_id, [])
                if sid in self.spans]

    def tree(self, trace_id: int) -> Optional[SpanNode]:
        """Rebuild one trace's span tree; None for unknown traces.

        Children sort by ``(start, span_id)``; multiple roots (possible
        if a root span was never recorded) are grafted under the
        earliest one.
        """
        spans = self.spans_for(trace_id)
        if not spans:
            return None
        nodes = {span.span_id: SpanNode(span) for span in spans}
        roots: List[SpanNode] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.span.start, n.span.span_id))
        root = roots[0]
        for orphan in roots[1:]:
            root.children.append(orphan)
        return root

    def traces_overlapping(self, since: float, until: float) -> List[int]:
        """Trace ids with at least one span inside ``[since, until]``."""
        hits = []
        for trace_id, span_ids in sorted(self._by_trace.items()):
            for sid in span_ids:
                span = self.spans.get(sid)
                if span is None:
                    continue
                end = span.end if span.end is not None else span.start
                if end >= since and span.start <= until:
                    hits.append(trace_id)
                    break
        return hits

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, trace_id: int) -> str:
        """Indented one-line-per-span rendering of a trace tree."""
        root = self.tree(trace_id)
        if root is None:
            return f"trace {trace_id}: <no spans>"
        lines = [f"trace {trace_id}:"]

        def visit(node: SpanNode, depth: int) -> None:
            span = node.span
            where = f" node={span.node}" if span.node is not None else ""
            extras = " ".join(f"{k}={v!r}" for k, v in sorted(span.data.items()))
            open_mark = "" if span.end is not None else " [open]"
            lines.append(
                f"  {'  ' * depth}{span.category}{where} "
                f"t={span.start:.4f}+{span.duration:.4f}s"
                f"{open_mark}{(' ' + extras) if extras else ''}"
            )
            for child in node.children:
                visit(child, depth + 1)

        visit(root, 0)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)
