"""Causal latency attribution over reconstructed span trees.

The span forest (repro.obs.spans) records *what happened* to every
sampled delivery: the CoAP request, the datagram beneath it, one
``net.hop`` per forwarding attempt, ``net.fragment`` children when 6Lo
fragmentation kicks in, one ``mac.job`` per link transmission, and one
``radio.airtime`` per over-the-air attempt.  This module turns that
record into *why it took that long*:

- :func:`attribute_trace` tiles an anchor span's interval with
  :class:`Segment`\\ s, each charged to a named layer (``mac.queue``,
  ``mac.access``, ``airtime``, ``mac.retry_gap``, ``net.retry`` …).
  The segments **exactly partition** the anchor's duration: consecutive
  boundaries are float-equal, the first starts at the anchor's start
  and the last ends at its end, so the segment durations telescope to
  the measured end-to-end latency in exact arithmetic
  (:meth:`Attribution.verify_partition` checks with ``Fraction``).
- :func:`critical_path` walks the longest-pole child chain root→leaf.
- :func:`analyze_run` aggregates attributions over the histogram
  exemplar traces (repro.obs.registry) behind a percentile of a metric
  and freezes them into the ``repro.explain/1`` payload.
- :func:`explain_main` is ``python -m repro explain``: waterfall
  rendering, single-trace drilldown, and an attribution-aware diff that
  names which layer's share moved.

Attribution rules (deterministic by construction):

- Children are visited in ``(start, span_id)`` order and clipped to
  their parent's window; where siblings overlap, time belongs to the
  *earliest* span occupying it (multi-hop pipelining: the next hop
  starts before the previous hop's ACK turnaround finishes).
- A span's own time — the parts of its window no child covers — is
  classified by its category and by *phase*: before the first child
  (``pre``), between children (``mid``), after the last (``post``).
- ``mac.job`` splits its pre-phase at the ``service_start`` waypoint
  (annotated by the MAC when the job leaves the queue) into queue wait
  and channel access (backoff/CCA).
- Zero-duration event spans never produce segments and never advance
  the phase.
"""

from __future__ import annotations

import argparse
import json
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import percentile
from repro.obs.registry import (MetricsSnapshot, _sketch_bucket,
                                merge_sketch, sketch_percentile)
from repro.obs.spans import Span, SpanNode, SpanTracer

#: The payload format tag of an exported attribution table.
EXPLAIN_FORMAT = "repro.explain/1"


class AttributionError(Exception):
    """The segments produced for a trace failed the partition invariant."""


@dataclass(frozen=True)
class Segment:
    """One attributed slice of the anchor span's timeline."""

    start: float
    end: float
    layer: str
    span_id: int
    node: Optional[int]

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Attribution:
    """Every segment of one trace, tiling the anchor span's interval."""

    trace_id: int
    anchor: Span
    segments: List[Segment] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        """The anchor's measured duration (== the latency observation)."""
        end = self.anchor.end if self.anchor.end is not None else self.anchor.start
        return end - self.anchor.start

    def by_layer(self) -> Dict[str, float]:
        """Seconds charged to each layer, keys sorted."""
        totals: Dict[str, List[float]] = {}
        for seg in self.segments:
            totals.setdefault(seg.layer, []).append(seg.duration)
        return {layer: math.fsum(parts)
                for layer, parts in sorted(totals.items())}

    def verify_partition(self) -> bool:
        """Exact-arithmetic check that segments partition the anchor.

        The tiling makes segment durations telescope: in ``Fraction``
        arithmetic their sum equals ``end - start`` exactly, which is
        the "segments sum exactly to the measured latency" contract.
        """
        end = self.anchor.end if self.anchor.end is not None else self.anchor.start
        total = Fraction(end) - Fraction(self.anchor.start)
        acc = Fraction(0)
        for seg in self.segments:
            acc += Fraction(seg.end) - Fraction(seg.start)
        return acc == total


# ----------------------------------------------------------------------
# layer taxonomy
# ----------------------------------------------------------------------
def _own_time_layer(category: str, phase: str) -> str:
    """Layer charged for a span's own (un-childed) time in ``phase``."""
    if category == "radio.airtime":
        return "airtime"
    if category == "mac.job":
        return {"pre": "mac.access", "mid": "mac.retry_gap",
                "post": "mac.ack_wait"}[phase]
    if category == "net.fragment":
        return "frag"
    if category == "net.hop":
        return {"pre": "hop.dispatch", "mid": "hop.gap",
                "post": "hop.ack"}[phase]
    if category == "net.datagram":
        # mid-gaps between hop attempts are the routing layer healing
        # itself: link feedback, parent re-selection, re-route.
        return {"pre": "net.route", "mid": "net.retry",
                "post": "net.deliver"}[phase]
    if category == "coap.request":
        return "middleware"
    # Unknown categories degrade gracefully to their first dotted
    # segment so new span kinds stay attributable without edits here.
    return "other." + category.split(".", 1)[0]


def _gap_segments(span: Span, start: float, end: float,
                  phase: str) -> Iterable[Segment]:
    """Segments for one un-childed stretch of ``span``'s window."""
    if end <= start:
        return
    if span.category == "mac.job" and phase == "pre":
        # Split queue wait from channel access at the service_start
        # waypoint the MAC annotated when the job left the queue.
        service_start = span.data.get("service_start")
        if isinstance(service_start, (int, float)):
            if start < service_start < end:
                yield Segment(start, service_start, "mac.queue",
                              span.span_id, span.node)
                yield Segment(service_start, end, "mac.access",
                              span.span_id, span.node)
                return
            if service_start >= end:
                yield Segment(start, end, "mac.queue",
                              span.span_id, span.node)
                return
    yield Segment(start, end, _own_time_layer(span.category, phase),
                  span.span_id, span.node)


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
def _effective_end(span: Span) -> float:
    return span.end if span.end is not None else span.start


def _attribute_node(node: SpanNode, lo: float, hi: float,
                    out: List[Segment]) -> None:
    """Tile ``[lo, hi]`` with segments from ``node``'s subtree."""
    span = node.span
    cursor = lo
    saw_child = False
    for child in node.children:
        child_end = min(_effective_end(child.span), hi)
        child_start = max(child.span.start, cursor)
        if child_end <= child_start:
            # Zero-duration events and fully-overlapped siblings leave
            # no window of their own; they neither produce segments nor
            # advance the phase.
            continue
        if child_start > cursor:
            out.extend(_gap_segments(span, cursor, child_start,
                                     "mid" if saw_child else "pre"))
        _attribute_node(child, child_start, child_end, out)
        cursor = child_end
        saw_child = True
        if cursor >= hi:
            break
    if cursor < hi:
        out.extend(_gap_segments(span, cursor, hi,
                                 "post" if saw_child else "pre"))


def _find_anchor(root: SpanNode, category: Optional[str],
                 value: Optional[float]) -> SpanNode:
    """The span the metric observation measured, or the root."""
    if category is None:
        return root
    fallback: Optional[SpanNode] = None
    for node in root.walk():
        if node.span.category != category:
            continue
        if fallback is None:
            fallback = node
        if value is None or node.span.data.get("latency") == value:
            return node
    return fallback if fallback is not None else root


def attribute_trace(tracer: SpanTracer, trace_id: int,
                    anchor_category: Optional[str] = None,
                    anchor_value: Optional[float] = None,
                    ) -> Optional[Attribution]:
    """Attribute one trace's anchor span; None when the trace is absent.

    ``anchor_category``/``anchor_value`` select the span a histogram
    observation measured (e.g. the ``net.datagram`` whose recorded
    ``latency`` equals the exemplar value); by default the trace root
    is attributed.  Raises :class:`AttributionError` if the produced
    segments fail the exact-partition invariant — that would mean the
    attributor, not the trace, is wrong.
    """
    tree = tracer.tree(trace_id)
    if tree is None:
        return None
    anchor = _find_anchor(tree, anchor_category, anchor_value)
    span = anchor.span
    lo, hi = span.start, _effective_end(span)
    segments: List[Segment] = []
    _attribute_node(anchor, lo, hi, segments)
    attribution = Attribution(trace_id=trace_id, anchor=span,
                              segments=segments)
    if not _tiles_exactly(segments, lo, hi):
        raise AttributionError(
            f"segments do not partition [{lo}, {hi}] of trace {trace_id}")
    return attribution


def _tiles_exactly(segments: Sequence[Segment], lo: float, hi: float) -> bool:
    """Structural tiling check: contiguous, gap-free, boundary-exact."""
    if not segments:
        return hi <= lo
    if segments[0].start != lo or segments[-1].end != hi:
        return False
    for prev, nxt in zip(segments, segments[1:]):
        if prev.end != nxt.start:
            return False
    return all(seg.end > seg.start for seg in segments)


def critical_path(tracer: SpanTracer, trace_id: int) -> List[Span]:
    """The root→leaf chain of longest-pole children (ties by span id)."""
    tree = tracer.tree(trace_id)
    if tree is None:
        return []
    path = [tree.span]
    node = tree
    while node.children:
        node = max(node.children,
                   key=lambda child: (_effective_end(child.span),
                                      child.span.span_id))
        path.append(node.span)
    return path


# ----------------------------------------------------------------------
# run-level analysis: exemplars → aggregated waterfall payload
# ----------------------------------------------------------------------
def resolve_metric(snapshot: MetricsSnapshot, name: str) -> Optional[str]:
    """Accept ``net.latency`` for ``net.latency_s`` and the like."""
    known = set()
    for mapping in (snapshot.histograms, snapshot.sketches,
                    snapshot.exemplars):
        known.update(key[0] for key in mapping)
    if name in known:
        return name
    if name + "_s" in known:
        return name + "_s"
    return None


def _metric_percentile(snapshot: MetricsSnapshot, metric: str,
                       fraction: float) -> Tuple[int, float]:
    """(observation count, percentile estimate) across label sets."""
    values = snapshot.histogram_values(metric)
    if values:
        return len(values), percentile(values, fraction)
    merged = None
    for key in sorted(snapshot.sketches, key=repr):
        if key[0] != metric:
            continue
        data = snapshot.sketches[key]
        merged = data if merged is None else merge_sketch(merged, data)
    if merged is None or merged[0] == 0:
        return 0, 0.0
    return merged[0], sketch_percentile(merged, fraction)


def select_exemplars(snapshot: MetricsSnapshot, metric: str,
                     fraction: float, max_traces: int,
                     ) -> List[Tuple[float, int]]:
    """Exemplar ``(value, trace_id)`` pairs behind the ``fraction``
    percentile: entries from the percentile's log bucket and above,
    worst first, falling back to the worst recorded when the tail
    buckets kept none."""
    entries = snapshot.exemplars_for(metric)
    if not entries:
        return []
    _count, estimate = _metric_percentile(snapshot, metric, fraction)
    floor_bucket = _sketch_bucket(estimate)
    tail = [entry for entry in entries
            if _sketch_bucket(entry[0]) >= floor_bucket]
    chosen = tail if tail else entries
    return chosen[:max_traces]


def analyze_run(spans: SpanTracer, snapshot: MetricsSnapshot,
                metric: str = "net.latency_s", p: float = 95.0,
                max_traces: int = 4,
                domain_of=None) -> Optional[Dict[str, Any]]:
    """Attribute the exemplar traces behind ``metric``'s ``p``-th
    percentile and freeze the aggregate into a ``repro.explain/1``
    payload.  None when the metric has no exemplars (observability or
    exemplars off, or no trace-carrying observation yet)."""
    resolved = resolve_metric(snapshot, metric)
    if resolved is None:
        return None
    anchor_category = "net.datagram" if resolved == "net.latency_s" else None
    count, estimate = _metric_percentile(snapshot, resolved, p / 100.0)
    traces: List[Dict[str, Any]] = []
    for value, trace_id in select_exemplars(snapshot, resolved, p / 100.0,
                                            max_traces):
        attribution = attribute_trace(
            spans, trace_id, anchor_category=anchor_category,
            anchor_value=value if anchor_category else None)
        if attribution is None:
            continue
        anchor = attribution.anchor
        domain = domain_of(anchor.node) if (
            domain_of is not None and anchor.node is not None) else None
        traces.append({
            "trace": trace_id,
            "value_s": value,
            "total_s": attribution.total_s,
            "node": anchor.node,
            "domain": domain,
            "layers": attribution.by_layer(),
            "critical_path": [span.category
                              for span in critical_path(spans, trace_id)],
        })
    if not traces:
        return None
    layer_totals: Dict[str, List[float]] = {}
    for entry in traces:
        for layer, seconds in entry["layers"].items():
            layer_totals.setdefault(layer, []).append(seconds)
    total = math.fsum(entry["total_s"] for entry in traces)
    layers = {
        layer: {"seconds": math.fsum(parts),
                "share": (math.fsum(parts) / total) if total else 0.0}
        for layer, parts in sorted(layer_totals.items())
    }
    domains = sorted({entry["domain"] for entry in traces
                      if entry["domain"] is not None})
    payload: Dict[str, Any] = {
        "format": EXPLAIN_FORMAT,
        "metric": resolved,
        "p": p,
        "count": count,
        "percentile_s": estimate,
        "total_s": total,
        "layers": layers,
        "traces": traces,
    }
    if domains:
        payload["domains"] = {
            domain: _domain_rollup(traces, domain) for domain in domains
        }
    return payload


def _domain_rollup(traces: List[Dict[str, Any]],
                   domain: Any) -> Dict[str, Any]:
    members = [entry for entry in traces if entry["domain"] == domain]
    total = math.fsum(entry["total_s"] for entry in members)
    layer_totals: Dict[str, List[float]] = {}
    for entry in members:
        for layer, seconds in entry["layers"].items():
            layer_totals.setdefault(layer, []).append(seconds)
    return {
        "traces": [entry["trace"] for entry in members],
        "total_s": total,
        "layers": {layer: math.fsum(parts)
                   for layer, parts in sorted(layer_totals.items())},
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
_BAR_WIDTH = 24


def _waterfall_lines(layers: Dict[str, Any], total: float) -> List[str]:
    """Fixed-width per-layer rows, largest share first (ties by name)."""
    rows = []
    for layer, info in layers.items():
        seconds = info["seconds"] if isinstance(info, dict) else info
        rows.append((layer, seconds))
    rows.sort(key=lambda row: (-row[1], row[0]))
    width = max([len(layer) for layer, _ in rows] + [5])
    lines = []
    for layer, seconds in rows:
        share = (seconds / total) if total else 0.0
        bar = "#" * max(1 if seconds > 0 else 0,
                        round(share * _BAR_WIDTH))
        lines.append(f"  {layer:<{width}}  {seconds:>12.6f} s  "
                     f"{share * 100:>5.1f}%  {bar}")
    lines.append(f"  {'total':<{width}}  {total:>12.6f} s  100.0%")
    return lines


def render_explain(payload: Dict[str, Any]) -> str:
    """The aggregated waterfall, per-trace tables, and critical path."""
    lines = [
        f"latency attribution — {payload['metric']} "
        f"p{payload['p']:g} ({len(payload['traces'])} exemplar trace(s), "
        f"{payload['count']} observations, "
        f"p{payload['p']:g} ≈ {payload['percentile_s']:.6f} s)",
        "",
        "aggregate waterfall",
        "-------------------",
    ]
    lines.extend(_waterfall_lines(payload["layers"], payload["total_s"]))
    for entry in payload["traces"]:
        where = f"node {entry['node']}"
        if entry.get("domain") is not None:
            where += f", domain {entry['domain']}"
        lines.append("")
        lines.append(f"trace {entry['trace']} — {entry['total_s']:.6f} s "
                     f"({where})")
        lines.extend(_waterfall_lines(entry["layers"], entry["total_s"]))
        lines.append("  critical path: "
                     + " > ".join(entry["critical_path"]))
    if "domains" in payload:
        lines.append("")
        lines.append("per-domain totals")
        lines.append("-----------------")
        for domain, rollup in payload["domains"].items():
            lines.append(f"  domain {domain}: {rollup['total_s']:.6f} s "
                         f"over trace(s) "
                         + ", ".join(str(t) for t in rollup["traces"]))
    return "\n".join(lines)


def render_trace(spans: SpanTracer, trace_id: int) -> Optional[str]:
    """Single-trace drilldown: attribution waterfall + span tree."""
    attribution = attribute_trace(spans, trace_id)
    if attribution is None:
        return None
    lines = [f"trace {trace_id} — {attribution.total_s:.6f} s "
             f"(anchor {attribution.anchor.category})"]
    lines.extend(_waterfall_lines(attribution.by_layer(),
                                  attribution.total_s))
    lines.append("  critical path: " + " > ".join(
        span.category for span in critical_path(spans, trace_id)))
    lines.append("")
    lines.append(spans.render(trace_id))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# attribution-aware diff
# ----------------------------------------------------------------------
def diff_explain(a: Dict[str, Any], b: Dict[str, Any],
                 fail_on: Optional[float] = None,
                 ) -> Tuple[List[str], int]:
    """Compare two ``repro.explain/1`` payloads layer by layer.

    Returns printable lines and an exit code: 0 when within
    ``fail_on`` (relative seconds change per layer and total), 1 when a
    layer moved beyond it or appeared/vanished.  ``fail_on=None``
    reports without gating.
    """
    for payload in (a, b):
        if payload.get("format") != EXPLAIN_FORMAT:
            raise ValueError("not a repro explain payload: "
                             f"format={payload.get('format')!r}")
    layers = sorted(set(a["layers"]) | set(b["layers"]))
    lines = [f"explain diff — {a['metric']} p{a['p']:g}"]
    failed = False
    moved: List[Tuple[float, str, float]] = []
    for layer in layers:
        sa = a["layers"].get(layer, {}).get("seconds", 0.0)
        sb = b["layers"].get(layer, {}).get("seconds", 0.0)
        share_a = a["layers"].get(layer, {}).get("share", 0.0)
        share_b = b["layers"].get(layer, {}).get("share", 0.0)
        delta_pp = (share_b - share_a) * 100.0
        rel = abs(sb - sa) / abs(sa) if sa else (math.inf if sb else 0.0)
        marker = ""
        if fail_on is not None and rel > fail_on:
            failed = True
            marker = "  <-- moved"
        if layer not in a["layers"] or layer not in b["layers"]:
            failed = fail_on is not None or failed
            marker = "  <-- " + ("new layer" if layer not in a["layers"]
                                 else "vanished layer")
        lines.append(f"  {layer:<14}  {sa:>12.6f} s -> {sb:>12.6f} s  "
                     f"share {share_a * 100:>5.1f}% -> "
                     f"{share_b * 100:>5.1f}% ({delta_pp:+.1f}pp){marker}")
        moved.append((abs(delta_pp), layer, delta_pp))
    ta, tb = a["total_s"], b["total_s"]
    rel_total = abs(tb - ta) / abs(ta) if ta else (math.inf if tb else 0.0)
    if fail_on is not None and rel_total > fail_on:
        failed = True
    lines.append(f"  {'total':<14}  {ta:>12.6f} s -> {tb:>12.6f} s")
    moved.sort(reverse=True)
    if moved and moved[0][0] > 0:
        _mag, layer, delta_pp = moved[0]
        lines.append(f"  largest share shift: {layer} ({delta_pp:+.1f}pp)")
    return lines, (1 if failed else 0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def explain_main(argv) -> int:
    """``python -m repro explain`` — see module docstring."""
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Attribute end-to-end latency to layers via the "
                    "critical path of histogram exemplar traces.",
    )
    parser.add_argument("--metric", default="net.latency_s",
                        help="histogram metric to explain "
                             "(default: net.latency_s; 'net.latency' "
                             "is accepted)")
    parser.add_argument("--p", type=float, default=95.0,
                        help="percentile whose exemplars to attribute "
                             "(default: 95)")
    parser.add_argument("--trace", type=int, default=None, metavar="ID",
                        help="drill into one trace id instead of the "
                             "percentile exemplars")
    parser.add_argument("--diff", nargs=2, metavar=("A.json", "B.json"),
                        default=None,
                        help="compare two exported attribution tables "
                             "instead of running the demo")
    parser.add_argument("--fail-on", type=float, default=None,
                        metavar="REL",
                        help="with --diff: exit 1 when any layer's "
                             "seconds move by more than this relative "
                             "fraction (0.0 = demand exact equality)")
    parser.add_argument("--export", metavar="PATH", default=None,
                        help="write the repro.explain/1 JSON payload")
    parser.add_argument("--max-traces", type=int, default=4,
                        help="exemplar traces to attribute (default: 4)")
    parser.add_argument("--side", type=int, default=3,
                        help="demo grid side (default: 3, the diff-core "
                             "configuration)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="demo traffic seconds (default: 120)")
    parser.add_argument("--seed", type=int, default=2018,
                        help="demo seed (default: 2018)")
    args = parser.parse_args(argv)

    if args.diff is not None:
        payloads = []
        for path in args.diff:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payloads.append(json.load(handle))
            except (OSError, ValueError) as exc:
                print(f"cannot load {path}: {exc}")
                return 2
        lines, code = diff_explain(payloads[0], payloads[1],
                                   fail_on=args.fail_on)
        print("\n".join(lines))
        return code

    # The deterministic report demo — the same run `make diff-core`
    # pins — with the profiler off so attribution output is
    # byte-reproducible across hosts.
    from repro.obs.report import run_demo
    run = run_demo(side=args.side, traffic_s=args.duration, seed=args.seed,
                   profile=False)
    system = run.system
    spans = system.obs.spans
    if spans is None:
        print("span tracing is off; nothing to attribute")
        return 1

    if args.trace is not None:
        text = render_trace(spans, args.trace)
        if text is None:
            print(f"trace {args.trace} not found")
            return 1
        print(text)
        return 0

    domain_of = getattr(system.topology, "domain_of", None)
    payload = analyze_run(spans, system.obs.registry.snapshot(),
                          metric=args.metric, p=args.p,
                          max_traces=args.max_traces,
                          domain_of=domain_of)
    if payload is None:
        print(f"no exemplars recorded for metric {args.metric!r}")
        return 1
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(render_explain(payload))
    return 0
