"""repro.obs — the unified observability layer.

Four parts (DESIGN.md, "Observability"):

- :mod:`repro.obs.registry` — labeled counters/gauges/histograms with
  deterministic snapshot/merge semantics;
- :mod:`repro.obs.spans` — packet-lifecycle span tracing with
  parent/child links, threaded through the stack as ``trace_ctx``;
- :mod:`repro.obs.profiler` — opt-in wall-time attribution inside the
  simulation kernel;
- :mod:`repro.obs.health` — the per-node :class:`NodeHealthSampler`
  gauge set (duty cycle, MAC queue, neighbors, rank, CRDT staleness);
- :mod:`repro.obs.diff` — snapshot diffing behind
  ``python -m repro diff`` (regression gates);
- :mod:`repro.obs.export` — JSONL/CSV/JSON exporters, and
  :mod:`repro.obs.report` — the ``python -m repro report`` dashboard.

The :class:`Observability` bundle rides on the run's shared
:class:`~repro.sim.trace.TraceLog` (``trace.obs``), which every layer
already holds — so instrumentation needs no new constructor plumbing
and costs one attribute check when disabled.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.analysis import (
    Attribution,
    AttributionError,
    Segment,
    analyze_run,
    attribute_trace,
    critical_path,
    diff_explain,
    render_explain,
)
from repro.obs.diff import MetricDelta, diff_snapshots, load_snapshot
from repro.obs.export import (
    export_run,
    read_metrics_json,
    write_explain_txt,
    write_metrics_csv,
    write_metrics_json,
    write_spans_jsonl,
    write_trace_jsonl,
    write_windows_jsonl,
)
from repro.obs.health import NodeHealthSampler, health_rows
from repro.obs.profiler import SimProfiler
from repro.obs.recorder import FlightDump, FlightRecorder
from repro.obs.registry import (Counter, Gauge, Histogram, MetricsSnapshot,
                                Registry, SketchHistogram)
from repro.obs.spans import Span, SpanContext, SpanNode, SpanTracer
from repro.obs.timeseries import (AlertRule, TelemetryEngine,
                                  TelemetrySnapshot, TelemetryWindow)
from repro.sim.trace import TraceLog

__all__ = [
    "AlertRule",
    "Attribution",
    "AttributionError",
    "Counter",
    "FlightDump",
    "FlightRecorder",
    "GATED_SPAN_CATEGORIES",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsSnapshot",
    "NodeHealthSampler",
    "Observability",
    "Registry",
    "Segment",
    "SimProfiler",
    "SketchHistogram",
    "Span",
    "SpanContext",
    "SpanNode",
    "SpanTracer",
    "TelemetryEngine",
    "TelemetrySnapshot",
    "TelemetryWindow",
    "analyze_run",
    "attribute_trace",
    "critical_path",
    "diff_explain",
    "diff_snapshots",
    "export_run",
    "gated_run",
    "health_rows",
    "load_snapshot",
    "read_metrics_json",
    "render_explain",
    "write_explain_txt",
    "write_metrics_csv",
    "write_metrics_json",
    "write_spans_jsonl",
    "write_trace_jsonl",
    "write_windows_jsonl",
]


#: Span categories the storage layer must never drop: the control-plane
#: records dependability gates grade (``rpl.parent_switch``,
#: ``rnfd.verdict``) and every fault-plan clause span (``fault.*`` —
#: pinned by its first dotted segment).  Repro bundles and
#: ``make check-dependability`` read these after the fact, so a ring
#: buffer that evicted them would silently weaken the gates.
#: ``alert`` (every ``alert.<rule>`` span, pinned by first dotted
#: segment) joins them: SLO firings are exactly what flight dumps and
#: ``repro diff`` gates must never lose to sampling.
GATED_SPAN_CATEGORIES = frozenset({
    "alert",
    "fault",
    "rnfd.verdict",
    "rpl.parent_switch",
})


def gated_run() -> bool:
    """True when a correctness gate is driving this process.

    ``REPRO_BENCH_CHECK=1`` (the invariant-asserting benchmark mode,
    also exported by the ``make diff-core``-family gates) demands full
    observability fidelity: sampling and ring-buffer knobs are ignored
    so gated runs keep their exact ``events_identical`` semantics.
    """
    import os
    return os.environ.get("REPRO_BENCH_CHECK") == "1"


class Observability:
    """One run's observability state: a registry plus (optionally) spans.

    Attach to the run's trace log with :meth:`attach`; every layer then
    finds it as ``self.trace.obs`` and instruments itself.  ``spans``
    is None when span tracing is off — layers must check, which keeps
    metric-only runs from paying span allocation.

    ``span_sample_rate`` / ``span_max`` bound what the tracer *stores*
    (see :class:`~repro.obs.spans.SpanTracer`); metrics are never
    sampled — counter, gauge, and histogram totals stay exact at every
    rate.  Both knobs are ignored under :func:`gated_run`, so gates
    always see full-fidelity spans.  ``span_seed`` should come from the
    run's master seed: the sampling decision is derived from it and
    never from wall-clock.

    The ``REPRO_SPAN_SAMPLE_RATE`` / ``REPRO_SPAN_MAX_STORED``
    environment variables override the constructor knobs (except under
    gated runs).  They exist for the ``--span-sample-rate`` CLI flags:
    sweep trials run in worker *processes*, and the environment is the
    only channel that reaches every worker regardless of start method.
    """

    def __init__(self, registry: Optional[Registry] = None,
                 spans: bool = True,
                 span_sample_rate: float = 1.0,
                 span_seed: int = 0,
                 span_max: Optional[int] = None,
                 span_pinned: Optional[frozenset] = None,
                 histogram_sketch: bool = False,
                 exemplar_max_per_bucket: int = 4) -> None:
        self.registry = registry if registry is not None else Registry(
            histogram_sketch=histogram_sketch,
            exemplar_max_per_bucket=exemplar_max_per_bucket)
        #: set by the system wiring when SystemConfig(telemetry_interval_s=)
        #: is given — layers and exporters find both via ``trace.obs``.
        self.telemetry: Optional[TelemetryEngine] = None
        self.recorder: Optional[FlightRecorder] = None
        if gated_run():
            span_sample_rate, span_max = 1.0, None
        else:
            import os
            env_rate = os.environ.get("REPRO_SPAN_SAMPLE_RATE")
            if env_rate:
                span_sample_rate = float(env_rate)
            env_max = os.environ.get("REPRO_SPAN_MAX_STORED")
            if env_max:
                span_max = int(env_max)
        pinned = GATED_SPAN_CATEGORIES if span_pinned is None else span_pinned
        self.spans: Optional[SpanTracer] = SpanTracer(
            sample_rate=span_sample_rate,
            sample_seed=span_seed,
            max_spans=span_max,
            pinned_categories=pinned,
        ) if spans else None

    def attach(self, trace: TraceLog) -> "Observability":
        """Make this bundle visible to every layer sharing ``trace``."""
        trace.obs = self
        return self

    @staticmethod
    def of(trace: TraceLog) -> Optional["Observability"]:
        """The bundle attached to ``trace``, or None."""
        return trace.obs
