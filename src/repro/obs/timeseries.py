"""repro.obs.timeseries — the windowed telemetry plane.

End-of-run snapshots (PR 3–4) answer "what happened overall"; a
monitoring plane must answer "what is happening *now*, and what was
happening just before it broke".  The :class:`TelemetryEngine` scrapes
the run's metrics :class:`~repro.obs.registry.Registry` on a fixed
sim-time cadence into :class:`TelemetryWindow` objects:

- **counters** appear as *deltas* over the window (rates, not totals);
- **gauges** appear as end-of-window *levels*;
- **histograms** (exact or sketch) appear as ``(count, sum)`` deltas.

Memory stays bounded at city scale three ways:

1. *retention ring* — only the last ``retention`` windows are kept
   (a ``deque(maxlen=...)``; evictions are counted, never silent);
2. *per-domain rollup* — when the topology exposes ``domain_of`` (the
   :class:`~repro.deployment.topology.CampusTopology` contract),
   per-node series are folded into per-building series before storage:
   counter/histogram deltas sum, gauge levels average.  50k nodes roll
   into dozens of domains;
3. *zero suppression* — quiet series contribute nothing to a window.

Determinism: the scrape schedule is pure sim-time (fixed phase — no RNG
draw, honouring the same transparency contract as the checkers), series
iterate in sorted-key order, and :class:`TelemetrySnapshot.merge`
concatenates per-trial windows *in the order given*, mirroring
:meth:`MetricsSnapshot.merge` so ``jobs=1`` vs ``jobs=N`` sweeps stay
byte-identical.

The engine is deliberately **not** free: it schedules simulator events
(like :class:`~repro.obs.health.NodeHealthSampler`), so it only exists
when ``SystemConfig(telemetry_interval_s=...)`` is set and the
zero-diff guarantees of uninstrumented runs are untouched by default.

:class:`AlertRule` adds the SLO layer: threshold and rate-of-change
predicates evaluated at every window close, emitting ``alert.fired``
counters (gateable by ``repro diff``) and pinned ``alert.*`` spans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, IO, Iterable, List, Optional,
                    Sequence, Tuple)

from repro.obs.registry import Registry, SeriesKey
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer

__all__ = [
    "AlertRule",
    "TelemetryEngine",
    "TelemetrySnapshot",
    "TelemetryWindow",
    "read_windows_jsonl",
    "window_from_jsonable",
    "window_to_jsonable",
]


@dataclass
class TelemetryWindow:
    """One closed scrape interval: plain data, picklable, comparable."""

    index: int
    start: float
    end: float
    #: counter deltas over the window (zero deltas suppressed)
    counters: Dict[SeriesKey, float] = field(default_factory=dict)
    #: gauge levels at window close (domain rollups are means)
    gauges: Dict[SeriesKey, float] = field(default_factory=dict)
    #: histogram/sketch activity as ``(count_delta, sum_delta)``
    histograms: Dict[SeriesKey, Tuple[float, float]] = field(default_factory=dict)
    #: names of alert rules that fired at this window's close
    alerts: Tuple[str, ...] = ()

    def counter_total(self, name: str) -> float:
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def series_labels(self, name: str) -> List[Tuple[Tuple[str, Any], ...]]:
        """Sorted label sets under which ``name`` appears in this window."""
        out = {labels for (n, labels) in self.counters if n == name}
        out |= {labels for (n, labels) in self.gauges if n == name}
        out |= {labels for (n, labels) in self.histograms if n == name}
        return sorted(out, key=repr)


# ----------------------------------------------------------------------
# JSONL codec (the `repro tail` / `report --live` wire format)
# ----------------------------------------------------------------------
def window_to_jsonable(window: TelemetryWindow) -> Dict[str, Any]:
    def series(mapping: Dict[SeriesKey, Any]) -> List[Dict[str, Any]]:
        out = []
        for key in sorted(mapping, key=repr):
            name, labels = key
            value = mapping[key]
            out.append({"name": name, "labels": dict(labels),
                        "value": list(value) if isinstance(value, tuple) else value})
        return out

    return {
        "format": "repro.window/1",
        "index": window.index,
        "start": window.start,
        "end": window.end,
        "counters": series(window.counters),
        "gauges": series(window.gauges),
        "histograms": series(window.histograms),
        "alerts": list(window.alerts),
    }


def window_from_jsonable(payload: Dict[str, Any]) -> TelemetryWindow:
    if payload.get("format") != "repro.window/1":
        raise ValueError(f"not a telemetry window: format={payload.get('format')!r}")

    def key_of(entry: Dict[str, Any]) -> SeriesKey:
        return entry["name"], tuple(sorted(entry.get("labels", {}).items()))

    window = TelemetryWindow(index=int(payload["index"]),
                             start=float(payload["start"]),
                             end=float(payload["end"]),
                             alerts=tuple(payload.get("alerts", [])))
    for entry in payload.get("counters", []):
        window.counters[key_of(entry)] = float(entry["value"])
    for entry in payload.get("gauges", []):
        window.gauges[key_of(entry)] = float(entry["value"])
    for entry in payload.get("histograms", []):
        count, total = entry["value"]
        window.histograms[key_of(entry)] = (float(count), float(total))
    return window


def read_windows_jsonl(lines: Iterable[str]) -> List[TelemetryWindow]:
    """Decode a stream of JSONL lines, skipping blanks."""
    out = []
    for line in lines:
        line = line.strip()
        if line:
            out.append(window_from_jsonable(json.loads(line)))
    return out


@dataclass
class TelemetrySnapshot:
    """Frozen engine state: the retained windows plus eviction count.

    Merging follows the :class:`MetricsSnapshot` contract — *in the
    order given* — so per-trial telemetry merged in trial-index order
    is byte-identical for every ``jobs`` count.  Windows from different
    trials keep their own indices/times; consumers group by trial via
    ``window.index`` resets or simply treat the result as a log.
    """

    windows: List[TelemetryWindow] = field(default_factory=list)
    dropped: int = 0

    @classmethod
    def merge(cls, snapshots: Iterable["TelemetrySnapshot"]) -> "TelemetrySnapshot":
        merged = cls()
        for snap in snapshots:
            merged.windows.extend(snap.windows)
            merged.dropped += snap.dropped
        return merged

    def series(self, name: str, **labels: Any) -> List[Tuple[float, float]]:
        """``(window_end, value)`` points for one counter/gauge series."""
        key: SeriesKey = (name, tuple(sorted(labels.items())))
        points = []
        for window in self.windows:
            if key in window.counters:
                points.append((window.end, window.counters[key]))
            elif key in window.gauges:
                points.append((window.end, window.gauges[key]))
        return points

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "format": "repro.telemetry/1",
            "dropped": self.dropped,
            "windows": [window_to_jsonable(w) for w in self.windows],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "TelemetrySnapshot":
        if payload.get("format") != "repro.telemetry/1":
            raise ValueError(f"not a telemetry snapshot: format={payload.get('format')!r}")
        return cls(windows=[window_from_jsonable(w) for w in payload.get("windows", [])],
                   dropped=int(payload.get("dropped", 0)))


@dataclass(frozen=True)
class AlertRule:
    """One SLO predicate evaluated at every window close.

    ``kind`` selects the window table (``"counter"`` delta, ``"gauge"``
    level, or ``"histogram_count"`` delta); ``op`` is ``">"`` or
    ``"<"``; with ``rate=True`` the predicate applies to the change
    versus the same series in the previous window.  A rule fires once
    per (window, series) match: an ``alert.fired`` counter labeled with
    the rule name plus the series labels, and a pinned ``alert.<name>``
    span covering the window.
    """

    name: str
    metric: str
    threshold: float
    op: str = ">"
    kind: str = "gauge"
    rate: bool = False

    def __post_init__(self) -> None:
        if self.op not in (">", "<"):
            raise ValueError(f"op must be '>' or '<', got {self.op!r}")
        if self.kind not in ("counter", "gauge", "histogram_count"):
            raise ValueError(f"unknown rule kind {self.kind!r}")

    def _table(self, window: TelemetryWindow) -> Dict[SeriesKey, float]:
        if self.kind == "counter":
            return window.counters
        if self.kind == "gauge":
            return window.gauges
        return {k: v[0] for k, v in window.histograms.items()}

    def evaluate(self, window: TelemetryWindow,
                 previous: Optional[TelemetryWindow]) -> List[Tuple[SeriesKey, float]]:
        """Matching ``(series key, offending value)`` pairs, sorted."""
        table = self._table(window)
        prev_table = self._table(previous) if previous is not None else {}
        hits = []
        for key in sorted(table, key=repr):
            if key[0] != self.metric:
                continue
            value = table[key]
            if self.rate:
                value = value - prev_table.get(key, 0.0)
            if (value > self.threshold) if self.op == ">" else (value < self.threshold):
                hits.append((key, value))
        return hits


class TelemetryEngine:
    """Scrapes a :class:`Registry` into fixed sim-time windows.

    The engine is registry-agnostic: wire it to a bare simulator +
    registry (benchmarks, property tests) or use :meth:`for_system` to
    adopt an :class:`~repro.core.system.IIoTSystem`'s observability
    bundle and campus domain map.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: Registry,
        interval_s: float,
        retention: int = 120,
        domain_of: Optional[Callable[[int], Optional[str]]] = None,
        spans: Any = None,
        rules: Sequence[AlertRule] = (),
        sink: Optional[IO[str]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if retention <= 0:
            raise ValueError("retention must be positive")
        from collections import deque
        self.sim = sim
        self.registry = registry
        self.interval_s = interval_s
        self.retention = retention
        self.domain_of = domain_of
        self.spans = spans
        self.rules = list(rules)
        self.sink = sink
        self.windows_closed = 0
        self.dropped = 0
        self.alerts_fired = 0
        self._ring: "deque[TelemetryWindow]" = deque(maxlen=retention)
        self._last_counters: Dict[SeriesKey, float] = {}
        self._last_hist: Dict[SeriesKey, Tuple[float, float]] = {}
        self._last_start = 0.0
        # Fixed phase: the first scrape lands exactly one interval in.
        # Passing an explicit phase keeps the engine from drawing RNG —
        # telemetry must never perturb the run it is observing.
        self._timer = PeriodicTimer(sim, interval_s, self._scrape,
                                    phase=interval_s)
        self._started = False

    # ------------------------------------------------------------------
    @classmethod
    def for_system(cls, system: Any, interval_s: float,
                   retention: int = 120,
                   rules: Sequence[AlertRule] = (),
                   sink: Optional[IO[str]] = None) -> "TelemetryEngine":
        """Engine over a built system's registry, spans, and domains."""
        obs = system.trace.obs
        if obs is None:
            raise ValueError(
                "telemetry needs an observability bundle; build the system "
                "with SystemConfig(observability=True)")
        domain_of = getattr(system.topology, "domain_of", None)
        return cls(system.sim, obs.registry, interval_s=interval_s,
                   retention=retention, domain_of=domain_of,
                   spans=obs.spans, rules=rules, sink=sink)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin scraping (first window closes one interval in)."""
        if self._started:
            return
        self._started = True
        self._last_start = self.sim.now
        self._timer.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._timer.stop()

    # ------------------------------------------------------------------
    @property
    def windows(self) -> List[TelemetryWindow]:
        """The retained windows, oldest first."""
        return list(self._ring)

    @property
    def last_window(self) -> Optional[TelemetryWindow]:
        return self._ring[-1] if self._ring else None

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(windows=list(self._ring), dropped=self.dropped)

    def recent(self, k: int) -> List[TelemetryWindow]:
        """The last ``k`` retained windows, oldest first."""
        if k <= 0:
            return []
        ring = self._ring
        return list(ring)[-k:]

    # ------------------------------------------------------------------
    # scraping
    # ------------------------------------------------------------------
    def _rolled_key(self, key: SeriesKey) -> SeriesKey:
        """Fold a ``node=`` label into its campus domain, if mapped."""
        name, labels = key
        domain_of = self.domain_of
        if domain_of is None:
            return key
        for i, (label, value) in enumerate(labels):
            if label == "node":
                domain = domain_of(value)
                if domain is None:
                    return key
                rolled = labels[:i] + (("domain", domain),) + labels[i + 1:]
                return name, tuple(sorted(rolled))
        return key

    def _scrape(self) -> None:
        now = self.sim.now
        window = TelemetryWindow(index=self.windows_closed,
                                 start=self._last_start, end=now)
        self._last_start = now
        registry = self.registry

        # counters: deltas since the previous scrape, rolled up, with
        # zero deltas suppressed.
        last = self._last_counters
        for key, instrument in registry._counters.items():
            value = instrument.value
            delta = value - last.get(key, 0.0)
            last[key] = value
            if delta != 0.0:
                rolled = self._rolled_key(key)
                window.counters[rolled] = window.counters.get(rolled, 0.0) + delta

        # gauges: end-of-window levels; domain rollups average so a
        # building's gauge is comparable to a node's.
        if self.domain_of is None:
            for key, instrument in registry._gauges.items():
                window.gauges[key] = instrument.value
        else:
            sums: Dict[SeriesKey, float] = {}
            counts: Dict[SeriesKey, int] = {}
            for key in sorted(registry._gauges, key=repr):
                rolled = self._rolled_key(key)
                sums[rolled] = sums.get(rolled, 0.0) + registry._gauges[key].value
                counts[rolled] = counts.get(rolled, 0) + 1
            for rolled, total in sums.items():
                window.gauges[rolled] = total / counts[rolled]

        # histograms (exact or sketch expose count/sum alike): activity
        # deltas, rolled up, zero-activity series suppressed.
        last_hist = self._last_hist
        for key, instrument in registry._histograms.items():
            count, total = float(instrument.count), float(instrument.sum)
            prev_count, prev_sum = last_hist.get(key, (0.0, 0.0))
            last_hist[key] = (count, total)
            if count != prev_count:
                rolled = self._rolled_key(key)
                prior = window.histograms.get(rolled, (0.0, 0.0))
                window.histograms[rolled] = (prior[0] + count - prev_count,
                                             prior[1] + total - prev_sum)

        self._evaluate_rules(window)

        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(window)
        self.windows_closed += 1
        if self.sink is not None:
            self.sink.write(json.dumps(window_to_jsonable(window),
                                       sort_keys=True) + "\n")
            self.sink.flush()

    # ------------------------------------------------------------------
    def _evaluate_rules(self, window: TelemetryWindow) -> None:
        if not self.rules:
            return
        previous = self._ring[-1] if self._ring else None
        fired: List[str] = []
        for rule in self.rules:
            hits = rule.evaluate(window, previous)
            if not hits:
                continue
            fired.append(rule.name)
            for key, value in hits:
                self.alerts_fired += 1
                self.registry.inc("alert.fired", rule=rule.name,
                                  **dict(key[1]))
                if self.spans is not None:
                    ctx = self.spans.start(None, f"alert.{rule.name}",
                                           node=None, t=window.start,
                                           metric=key[0], value=value,
                                           labels=dict(key[1]),
                                           window=window.index)
                    # Link the firing to its worst recorded exemplar
                    # traces so `repro explain --trace` can attribute
                    # the latency behind the SLO breach.
                    exemplars = [trace for _value, trace
                                 in self.registry.exemplars_for(key[0])[:4]]
                    if exemplars:
                        self.spans.annotate(ctx, exemplars=exemplars)
                    self.spans.finish(ctx, t=window.end)
        if fired:
            window.alerts = tuple(fired)
