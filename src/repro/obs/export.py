"""Exporters: JSONL spans/trace, CSV metrics.

Each writer emits deterministically ordered records so exported files
are diffable across runs of the same seed.  Payload values that are not
JSON-native are rendered through ``repr`` rather than dropped.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict

from repro.obs.registry import MetricsSnapshot
from repro.obs.spans import SpanTracer
from repro.sim.trace import TraceLog


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def write_spans_jsonl(tracer: SpanTracer, path: str) -> int:
    """One JSON object per span, trace-grouped, recording order inside
    a trace.  Returns the span count written."""
    count = 0
    with open(path, "w") as handle:
        for trace_id in tracer.trace_ids():
            for span in tracer.spans_for(trace_id):
                handle.write(json.dumps({
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "category": span.category,
                    "node": span.node,
                    "start": span.start,
                    "end": span.end,
                    "data": _jsonable(span.data),
                }, sort_keys=True) + "\n")
                count += 1
    return count


def write_trace_jsonl(trace: TraceLog, path: str) -> int:
    """One JSON object per stored trace record, in emission order."""
    count = 0
    with open(path, "w") as handle:
        for record in trace.records:
            handle.write(json.dumps({
                "time": record.time,
                "category": record.category,
                "node": record.node,
                "data": _jsonable(record.data),
            }, sort_keys=True) + "\n")
            count += 1
    return count


def write_metrics_json(snapshot: MetricsSnapshot, path: str) -> int:
    """The snapshot in the ``repro diff`` interchange format.  Returns
    the series count written."""
    payload = snapshot.to_jsonable()
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return (len(payload["counters"]) + len(payload["gauges"])
            + len(payload["histograms"]) + len(payload.get("sketches", ())))


def write_windows_jsonl(windows, path: str) -> int:
    """One JSON object per telemetry window (the ``repro tail`` wire
    format).  Accepts any iterable of
    :class:`~repro.obs.timeseries.TelemetryWindow`."""
    from repro.obs.timeseries import window_to_jsonable
    count = 0
    with open(path, "w") as handle:
        for window in windows:
            handle.write(json.dumps(window_to_jsonable(window),
                                    sort_keys=True) + "\n")
            count += 1
    return count


def read_metrics_json(path: str) -> MetricsSnapshot:
    """Load a snapshot written by :func:`write_metrics_json`."""
    with open(path, "r") as handle:
        return MetricsSnapshot.from_jsonable(json.load(handle))


def write_metrics_csv(snapshot: MetricsSnapshot, path: str) -> int:
    """The snapshot's flat rows as CSV.  Returns the row count."""
    rows = snapshot.rows()
    columns = ["kind", "name", "labels", "value", "count", "p50", "p95"]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def write_explain_txt(spans: SpanTracer, snapshot: MetricsSnapshot,
                      path: str, topology: Any = None) -> int:
    """The rendered latency-attribution waterfall for the run's p95
    ``net.latency_s`` exemplars.  Returns the number of exemplar traces
    attributed (0 writes nothing — exemplars off or none recorded)."""
    from repro.obs.analysis import analyze_run, render_explain
    payload = analyze_run(spans, snapshot,
                          domain_of=getattr(topology, "domain_of", None))
    if payload is None:
        return 0
    with open(path, "w") as handle:
        handle.write(render_explain(payload) + "\n")
    return len(payload["traces"])


def export_run(
    trace: TraceLog,
    directory: str,
    snapshot: MetricsSnapshot = None,
    topology: Any = None,
) -> Dict[str, int]:
    """Write every artifact a run produced into ``directory``.

    Exports whatever observability state is attached to ``trace``:
    span JSONL when a tracer is present, metrics CSV when a snapshot is
    given (or a registry is attached), the latency-attribution
    ``explain.txt`` when exemplar traces exist, and the raw trace JSONL
    when recording was enabled.
    """
    os.makedirs(directory, exist_ok=True)
    written: Dict[str, int] = {}
    obs = trace.obs
    if obs is not None and obs.spans is not None:
        written["spans.jsonl"] = write_spans_jsonl(
            obs.spans, os.path.join(directory, "spans.jsonl"))
    if snapshot is None and obs is not None:
        snapshot = obs.registry.snapshot()
    if snapshot is not None:
        written["metrics.csv"] = write_metrics_csv(
            snapshot, os.path.join(directory, "metrics.csv"))
        written["metrics.json"] = write_metrics_json(
            snapshot, os.path.join(directory, "metrics.json"))
    if (snapshot is not None and obs is not None
            and obs.spans is not None and snapshot.exemplars):
        traces = write_explain_txt(
            obs.spans, snapshot, os.path.join(directory, "explain.txt"),
            topology=topology)
        if traces:
            written["explain.txt"] = traces
    telemetry = getattr(obs, "telemetry", None)
    if telemetry is not None:
        written["telemetry.jsonl"] = write_windows_jsonl(
            telemetry.windows, os.path.join(directory, "telemetry.jsonl"))
    recorder = getattr(obs, "recorder", None)
    if recorder is not None and recorder.dumps:
        with open(os.path.join(directory, "flight.json"), "w") as handle:
            json.dump([dump.to_jsonable() for dump in recorder.dumps],
                      handle, indent=1, sort_keys=True)
            handle.write("\n")
        written["flight.json"] = len(recorder.dumps)
    if trace.enabled:
        written["trace.jsonl"] = write_trace_jsonl(
            trace, os.path.join(directory, "trace.jsonl"))
    return written
