"""repro.obs.recorder — the flight recorder.

A violation at hour 10 of a 50k-node run is undiagnosable from an
end-of-run snapshot (too aggregated) or a full-fidelity trace (too
expensive to keep).  The :class:`FlightRecorder` sits between: on a
*trigger* — any checker violation, or a fault-plan window opening — it
freezes a :class:`FlightDump` of

- the last K telemetry windows from the engine's retention ring (the
  metric weather just before the event), and
- the recent *pinned* spans (``fault.*``, ``rnfd.verdict``,
  ``rpl.parent_switch``, ``alert.*`` — the categories the ring buffer
  never evicts, so they exist at every sampling rate).

Dumps ride into :class:`~repro.checking.sweep.ReproBundle`, so a
failing seed's bundle carries its own black-box recording next to the
trace tail and span trees.

Triggers are wired without import cycles: ``checking.base`` and
``faults.plan`` look up ``trace.obs.recorder`` dynamically and call
:meth:`on_violation` / :meth:`on_fault_window` when one is attached.
The recorder never mutates the system, draws RNG, or schedules events —
the same transparency contract the checkers obey.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.obs.timeseries import TelemetryEngine, TelemetryWindow, window_to_jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanTracer

__all__ = ["FlightDump", "FlightRecorder"]


@dataclass
class FlightDump:
    """One frozen black-box record (plain data, picklable)."""

    trigger: Dict[str, Any]
    at_s: float
    windows: List[TelemetryWindow] = field(default_factory=list)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Worst exemplar trace ids per histogram metric at dump time —
    #: the traces ``repro explain --trace`` attributes post-mortem.
    exemplars: Dict[str, List[int]] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        payload = {
            "format": "repro.flightdump/1",
            "trigger": self.trigger,
            "at_s": self.at_s,
            "windows": [window_to_jsonable(w) for w in self.windows],
            "spans": self.spans,
        }
        if self.exemplars:
            # Additive key (same contract as metrics "exemplars"):
            # absent unless exemplars were recorded, so pre-exemplar
            # flight dumps keep their exact JSON shape.
            payload["exemplars"] = {metric: list(traces)
                                    for metric, traces
                                    in sorted(self.exemplars.items())}
        return payload

    def render(self) -> str:
        """Human-readable dump block (the repro-bundle presentation)."""
        trigger = ", ".join(f"{k}={v}" for k, v in sorted(self.trigger.items()))
        lines = [f"flight dump @ t={self.at_s:.3f}s  [{trigger}]"]
        for window in self.windows:
            active = len(window.counters) + len(window.histograms)
            alerts = f"  alerts={','.join(window.alerts)}" if window.alerts else ""
            lines.append(
                f"  window {window.index}  t={window.start:.1f}..{window.end:.1f}s"
                f"  active_series={active}{alerts}")
        for span in self.spans:
            end = span.get("end")
            end_s = f"{end:.3f}" if end is not None else "open"
            lines.append(f"  span {span['category']} node={span['node']}"
                         f" t={span['start']:.3f}..{end_s}")
        for metric, traces in sorted(self.exemplars.items()):
            lines.append(f"  exemplars {metric}: "
                         + ", ".join(str(t) for t in traces))
        return "\n".join(lines)


class FlightRecorder:
    """Freezes telemetry + pinned spans when something goes wrong.

    ``last_k`` bounds windows per dump, ``span_lookback_s`` and
    ``max_spans`` bound the span slice, and ``max_dumps`` bounds the
    recorder itself (a fault storm must not grow memory without bound —
    later triggers are counted in :attr:`suppressed`, not stored).
    """

    def __init__(self, engine: TelemetryEngine,
                 spans: Optional["SpanTracer"] = None,
                 last_k: int = 16,
                 span_lookback_s: float = 600.0,
                 max_spans: int = 64,
                 max_dumps: int = 8) -> None:
        self.engine = engine
        self.spans = spans
        self.last_k = last_k
        self.span_lookback_s = span_lookback_s
        self.max_spans = max_spans
        self.max_dumps = max_dumps
        self.dumps: List[FlightDump] = []
        self.suppressed = 0

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------
    def on_violation(self, violation: Any) -> Optional[FlightDump]:
        """Checker violation trigger (see ``InvariantChecker.record``)."""
        return self._dump({
            "kind": "violation",
            "checker": getattr(violation, "checker", "?"),
            "invariant": getattr(violation, "invariant", "?"),
            "node": getattr(violation, "node", None),
        }, at_s=getattr(violation, "time", self.engine.sim.now))

    def on_fault_window(self, kind: str, at_s: float,
                        **detail: Any) -> Optional[FlightDump]:
        """Fault-plan window-open trigger (``FaultPlanRuntime``)."""
        trigger = {"kind": "fault", "fault": kind}
        trigger.update(detail)
        return self._dump(trigger, at_s=at_s)

    # ------------------------------------------------------------------
    def _dump(self, trigger: Dict[str, Any], at_s: float) -> Optional[FlightDump]:
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return None
        dump = FlightDump(trigger=trigger, at_s=at_s,
                          windows=self.engine.recent(self.last_k),
                          spans=self._recent_pinned_spans(at_s),
                          exemplars=self._exemplar_links())
        self.dumps.append(dump)
        self.engine.registry.inc("recorder.dumps", trigger=trigger["kind"])
        return dump

    def _exemplar_links(self, per_metric: int = 4) -> Dict[str, List[int]]:
        """Worst exemplar traces per histogram metric at dump time."""
        registry = self.engine.registry
        metrics = sorted({key[0] for key in registry._histograms})
        links: Dict[str, List[int]] = {}
        for metric in metrics:
            traces = [trace for _value, trace
                      in registry.exemplars_for(metric)[:per_metric]]
            if traces:
                links[metric] = traces
        return links

    def _recent_pinned_spans(self, at_s: float) -> List[Dict[str, Any]]:
        tracer = self.spans
        if tracer is None:
            return []
        horizon = at_s - self.span_lookback_s
        rows = []
        for span in tracer.spans.values():
            if span.start < horizon or span.start > at_s:
                continue
            if not tracer._is_pinned(span.category):
                continue
            rows.append({"category": span.category, "node": span.node,
                         "start": span.start, "end": span.end,
                         "data": dict(span.data), "span_id": span.span_id})
        rows.sort(key=lambda r: (r["start"], r["span_id"]))
        return rows[-self.max_spans:]

    # ------------------------------------------------------------------
    def render_all(self) -> List[str]:
        """Rendered dump blocks plus a suppression note, if any."""
        out = [dump.render() for dump in self.dumps]
        if self.suppressed:
            out.append(f"({self.suppressed} further flight dumps suppressed "
                       f"beyond max_dumps={self.max_dumps})")
        return out
