"""``python -m repro`` — a 30-second guided demo, plus subcommands.

With no arguments: builds a small deployment, converges it, runs one
aggregation query, kills the border router to show RNFD, and prints the
taxonomy verdicts.  ``python -m repro sweep`` instead runs the built-in
fault scenarios under full invariant checking across many seeds (see
DESIGN.md, "Runtime invariant checking").  For the full experiment
suite run ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import sys

from repro import IIoTSystem, SystemConfig, StackConfig, __version__, grid_topology
from repro.aggregation import AggregationService
from repro.devices import DiurnalField
from repro.net.rpl import RnfdConfig, RplConfig, RplState


def sweep_main(argv) -> int:
    """``python -m repro sweep`` — seed-sweep the built-in scenarios."""
    from repro.checking.scenarios import BUILTIN_SCENARIOS
    from repro.checking.sweep import SeedSweepRunner

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run fault scenarios under runtime invariant checking "
                    "across many seeds; exit nonzero on any violation.",
    )
    parser.add_argument("--scenario", choices=sorted(BUILTIN_SCENARIOS),
                        action="append",
                        help="scenario to sweep (default: all built-ins)")
    parser.add_argument("--seeds", type=int, default=10,
                        help="seeds per scenario (default: 10)")
    parser.add_argument("--base-seed", type=int, default=1,
                        help="base of the deterministic seed list")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep (0 = all "
                             "cores; default: 1, serial). Outcomes are "
                             "identical for every jobs count.")
    parser.add_argument("--span-sample-rate", type=float, default=None,
                        metavar="RATE",
                        help="store only this fraction of span traces in "
                             "observability-enabled scenarios (0..1; "
                             "metrics stay exact, outcomes unchanged)")
    parser.add_argument("--span-max-stored", type=int, default=None,
                        metavar="N",
                        help="ring-buffer bound on stored spans per trial")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    if args.span_sample_rate is not None and not 0.0 <= args.span_sample_rate <= 1.0:
        parser.error("--span-sample-rate must be in [0, 1]")
    # Exported via the environment so every sweep worker process sees
    # it, whatever the multiprocessing start method; Observability reads
    # these at construction (gated runs still force full fidelity).
    import os
    if args.span_sample_rate is not None:
        os.environ["REPRO_SPAN_SAMPLE_RATE"] = repr(args.span_sample_rate)
    if args.span_max_stored is not None:
        os.environ["REPRO_SPAN_MAX_STORED"] = str(args.span_max_stored)

    names = args.scenario if args.scenario else sorted(BUILTIN_SCENARIOS)
    failed = False
    for name in names:
        runner = SeedSweepRunner(name, BUILTIN_SCENARIOS[name])
        outcomes = runner.run_count(args.seeds, base_seed=args.base_seed,
                                    jobs=args.jobs)
        bad = [o for o in outcomes if not o.clean]
        verdict = "OK" if not bad else f"{len(bad)} seed(s) VIOLATED"
        print(f"{name}: {len(outcomes)} seeds, {verdict}")
        for outcome in bad:
            failed = True
            print(outcome.bundle.summary())
    return 1 if failed else 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "report":
        # Imported lazily: the dashboard pulls in repro.core.
        from repro.obs.report import report_main
        return report_main(argv[1:])
    if argv and argv[0] == "diff":
        from repro.obs.diff import diff_main
        return diff_main(argv[1:])
    if argv and argv[0] == "explain":
        from repro.obs.analysis import explain_main
        return explain_main(argv[1:])
    if argv and argv[0] == "dependability":
        from repro.checking.dependability import dependability_main
        return dependability_main(argv[1:])
    if argv and argv[0] == "tail":
        from repro.obs.tail import tail_main
        return tail_main(argv[1:])
    print(f"repro {__version__} — 'A Distributed Systems Perspective on "
          f"Industrial IoT' (ICDCS 2018), executable\n")

    config = SystemConfig(stack=StackConfig(
        mac="csma",
        rnfd_enabled=True,
        rnfd=RnfdConfig(probe_period_s=10.0),
        rpl=RplConfig(dao_period_s=1e6),
    ))
    system = IIoTSystem.build(grid_topology(4), config=config, seed=2018)
    system.add_field_sensors("temp", DiurnalField(mean=19.0))
    system.start()
    system.run(300.0)
    print(f"[1] sensing/actuation tier: {system.topology.size} devices, "
          f"{system.joined_fraction():.0%} self-organized into the DODAG")

    services = [AggregationService(node) for node in system.nodes.values()]
    results = []
    services[0].run_query("temp", "avg", epoch_s=30.0, lifetime_epochs=3,
                          on_result=results.append)
    system.run(150.0)
    print(f"[2] in-network aggregation: "
          + ", ".join(f"epoch {r.epoch}: {r.value:.1f} C ({r.node_count} nodes)"
                      for r in results))

    kill_time = system.sim.now
    system.root.fail()
    system.run(120.0)
    aware = sum(
        1 for node in system.nodes.values()
        if not node.is_root and node.stack.rpl.state is not RplState.JOINED
    )
    print(f"[3] border router killed at t={kill_time:.0f}s; RNFD spread the "
          f"verdict to {aware}/{system.topology.size - 1} nodes in <120 s "
          f"(DIO-staleness baseline: ~1500 s)")

    print("\nFull reproduction: pytest benchmarks/ --benchmark-only -s "
          "(13 experiments; see EXPERIMENTS.md)")
    print("Invariant sweep:    python -m repro sweep  "
          "(fault scenarios under runtime checking)")
    print("Observability:      python -m repro report  "
          "(metrics, node health, packet + control-plane lifecycles)")
    print("Regression diff:    python -m repro diff A.json B.json "
          "--fail-on 0.05  (compare exported metrics snapshots)")
    print("Dependability gate: python -m repro dependability  "
          "(fault-plan scenarios + availability-axis grading)")
    print("Live telemetry:     python -m repro report --live run.jsonl; "
          "python -m repro tail run.jsonl  (windowed time-series stream)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
