"""Key material and provisioning."""

from __future__ import annotations

from typing import Dict, Optional


class KeyStore:
    """Per-node key storage: a network-wide key plus pairwise keys.

    Keys are opaque integers — the simulator never does real crypto, it
    models *possession*: a tag computed under key K verifies only
    against the same K.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.network_key: Optional[int] = None
        self.pairwise: Dict[int, int] = {}

    def provision_network_key(self, key: int) -> None:
        """Install the network-wide key (commissioning step)."""
        self.network_key = key

    def provision_pairwise(self, peer: int, key: int) -> None:
        self.pairwise[peer] = key

    def key_for(self, peer: int) -> Optional[int]:
        """Best key for a peer: pairwise if provisioned, else network."""
        return self.pairwise.get(peer, self.network_key)

    @property
    def provisioned(self) -> bool:
        return self.network_key is not None or bool(self.pairwise)
