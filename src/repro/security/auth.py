"""Link-layer frame authentication.

Mirrors 802.15.4 security level 2 (MIC-32/64/128): every outgoing DATA
frame gains a message integrity code of ``mic_bytes``; the receiving
MAC's ``frame_filter`` rejects frames whose tag does not verify under a
shared key.  Tags are modelled (a hash over key and frame identity), not
computed cryptographically — what the experiments need is the byte
overhead, the energy, and the *possession* semantics, all preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.mac.base import MacLayer
from repro.net.packet import MacFrame
from repro.security.keys import KeyStore
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class AuthConfig:
    """Security level selection."""

    #: MIC length: 4 (MIC-32), 8 (MIC-64), or 16 (MIC-128).
    mic_bytes: int = 4

    def validate(self) -> None:
        if self.mic_bytes not in (4, 8, 16):
            raise ValueError("mic_bytes must be 4, 8, or 16")


def compute_tag(key: int, src: int, seq: int) -> int:
    """The modelled MIC: deterministic in (key, frame identity)."""
    return hash((key, src, seq)) & 0xFFFFFFFF


class FrameAuthenticator:
    """Installs authentication on one node's MAC."""

    def __init__(
        self,
        mac: MacLayer,
        keystore: KeyStore,
        config: Optional[AuthConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.mac = mac
        self.keystore = keystore
        self.config = config if config is not None else AuthConfig()
        self.config.validate()
        self.trace = trace if trace is not None else mac.trace
        self.frames_tagged = 0
        self.frames_rejected = 0
        self.replays_rejected = 0
        #: Anti-replay: highest authenticated sequence seen per sender.
        #: Senders number frames monotonically, so an older-than-last
        #: sequence can only be a captured frame played back.
        self._last_seq: dict = {}
        self._enabled = False

    def enable(self) -> None:
        """Turn authentication on: outgoing frames carry the MIC,
        incoming unauthentic frames are dropped."""
        if self._enabled:
            return
        if not self.keystore.provisioned:
            raise RuntimeError(
                f"node {self.keystore.node_id} has no keys provisioned"
            )
        self._enabled = True
        self.mac.auth_overhead_bytes = self.config.mic_bytes
        self.mac.frame_filter = self._verify
        # Tag outgoing frames as they are built.
        original_data_frame = self.mac.data_frame

        def tagging_data_frame(job):
            frame = original_data_frame(job)
            key = self.keystore.key_for(frame.dst)
            if key is not None:
                frame.payload = _Authenticated(
                    tag=compute_tag(key, frame.src, frame.seq),
                    inner=frame.payload,
                )
                self.frames_tagged += 1
            return frame

        self.mac.data_frame = tagging_data_frame  # type: ignore[method-assign]

    def disable(self) -> None:
        self._enabled = False
        self.mac.auth_overhead_bytes = 0
        self.mac.frame_filter = None

    # ------------------------------------------------------------------
    def _verify(self, frame: MacFrame) -> Optional[MacFrame]:
        payload = frame.payload
        if not isinstance(payload, _Authenticated):
            # Unauthenticated frame in a secured network: reject.
            self.frames_rejected += 1
            self.trace.emit(self.mac.sim.now, "security.rejected",
                            node=self.mac.radio.node_id, src=frame.src,
                            reason="missing_tag")
            return None
        key = self.keystore.key_for(frame.src)
        if key is None or payload.tag != compute_tag(key, frame.src, frame.seq):
            self.frames_rejected += 1
            self.trace.emit(self.mac.sim.now, "security.rejected",
                            node=self.mac.radio.node_id, src=frame.src,
                            reason="bad_tag")
            return None
        last = self._last_seq.get(frame.src)
        if last is not None and frame.seq <= last:
            self.frames_rejected += 1
            self.replays_rejected += 1
            self.trace.emit(self.mac.sim.now, "security.rejected",
                            node=self.mac.radio.node_id, src=frame.src,
                            reason="replay")
            return None
        self._last_seq[frame.src] = frame.seq
        # Deliver an unwrapped view; the original frame object is shared
        # by every receiver of a broadcast and must stay intact.
        return MacFrame(
            kind=frame.kind, src=frame.src, dst=frame.dst, seq=frame.seq,
            payload=payload.inner, payload_bytes=frame.payload_bytes,
            auth_bytes=frame.auth_bytes,
        )


class _Authenticated:
    """Wrapper carrying the MIC alongside the protected payload."""

    __slots__ = ("tag", "inner")

    def __init__(self, tag: int, inner) -> None:
        self.tag = tag
        self.inner = inner
