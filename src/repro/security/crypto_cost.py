"""The resource price of cryptography on constrained hardware.

The paper's §V-E traces weak IoT security to resource constraints; this
model quantifies them: software AES-CCM on a Class-1 MCU costs CPU
cycles per byte, which translate into latency (at the MCU clock) and
energy (at the active current).  Figures follow published measurements
of software AES on 16-bit/8 MHz platforms (~100–200 cycles/byte for
encryption plus MIC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.platform import PlatformProfile


@dataclass(frozen=True)
class CryptoCostModel:
    """Cost of protecting one frame."""

    cycles_per_byte: float = 150.0
    #: Fixed per-frame cost (key schedule, nonce setup).
    cycles_per_frame: float = 4000.0
    mcu_mhz: float = 8.0

    def latency_s(self, frame_bytes: int) -> float:
        """CPU time to encrypt+authenticate one frame."""
        cycles = self.cycles_per_frame + self.cycles_per_byte * frame_bytes
        return cycles / (self.mcu_mhz * 1e6)

    def energy_j(self, frame_bytes: int, platform: PlatformProfile) -> float:
        """Energy the MCU burns protecting one frame."""
        return (
            self.latency_s(frame_bytes)
            * platform.cpu_active_current_ma / 1000.0
            * platform.supply_voltage_v
        )

    def energy_per_day_j(
        self,
        frames_per_hour: float,
        frame_bytes: int,
        platform: PlatformProfile,
    ) -> float:
        """Daily crypto energy at a given traffic rate."""
        return self.energy_j(frame_bytes, platform) * frames_per_hour * 24.0


#: Software AES-CCM on a Class-1 mote (TelosB-class MSP430 @ 8 MHz).
SOFTWARE_AES_CLASS1 = CryptoCostModel()

#: Hardware-assisted crypto (CC2420-style inline AES): near-free cycles.
HARDWARE_AES = CryptoCostModel(cycles_per_byte=2.0, cycles_per_frame=200.0)
