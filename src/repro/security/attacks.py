"""Adversaries for the security experiments.

Both attackers model an *outsider*: physically present (their radio is
on the shared medium) but without key material.  With link-layer
authentication enabled their frames die at the MAC filter; without it,
injected commands reach actuators — the delta experiment E11 reports.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.net.mac.csma import CsmaMac
from repro.net.packet import Datagram, NetPacket
from repro.radio.interference import InterfererConfig, WifiInterferer
from repro.radio.medium import Medium, Radio
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLog


class CommandInjector:
    """Injects forged actuation datagrams at a victim's MAC neighbor.

    The attacker spoofs a source address and unicasts a fabricated
    network packet straight to the victim — no routing needed when you
    are within radio range, which is exactly the §V-E threat: "arbitrary
    faults can be injected, violating the designers' basic assumptions".
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: Tuple[float, float],
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.radio = Radio(medium, node_id, position)
        self.mac = CsmaMac(sim, self.radio)
        self.mac.start()
        self.injections = 0
        self._timer: Optional[PeriodicTimer] = None

    def inject(
        self,
        victim: int,
        port: int,
        payload: Any,
        payload_bytes: int,
        spoof_src: int = 0,
    ) -> None:
        """Send one forged command to ``victim``'s service ``port``."""
        datagram = Datagram(
            src=spoof_src, src_port=port,
            dst=victim, dst_port=port,
            payload=payload, payload_bytes=payload_bytes,
        )
        packet = NetPacket(
            src=spoof_src, dst=victim,
            payload=datagram, payload_bytes=datagram.size_bytes,
            created_at=self.sim.now,
            sender_rank=0,  # pose as upstream so datapath checks pass
        )
        self.injections += 1
        self.trace.emit(self.sim.now, "attack.inject", node=self.radio.node_id,
                        victim=victim, port=port)
        self.mac.send(victim, packet, packet.size_bytes)

    def start_campaign(
        self,
        victim: int,
        port: int,
        payload: Any,
        payload_bytes: int,
        period_s: float = 30.0,
        spoof_src: int = 0,
    ) -> None:
        """Inject periodically until :meth:`stop`."""
        self._timer = PeriodicTimer(
            self.sim, period_s,
            lambda: self.inject(victim, port, payload, payload_bytes, spoof_src),
        )
        self._timer.start()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()


class ReplayAttacker:
    """Captures authenticated frames off the air and plays them back.

    Replay defeats *authentication alone*: the captured frame carries a
    valid MIC.  It is stopped by the authenticator's monotonic-sequence
    check — the pairing experiment E11 relies on.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: Tuple[float, float],
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.radio = Radio(medium, node_id, position)
        self.radio.set_listening()
        self.captured: List[Any] = []
        self.replays = 0
        self._capture_filter: Optional[int] = None
        self.radio.on_receive = self._sniff

    def capture_for(self, victim: int) -> None:
        """Start recording DATA frames addressed to ``victim``."""
        self._capture_filter = victim

    def _sniff(self, phy_frame, rssi_dbm: float) -> None:
        from repro.net.packet import FrameKind, MacFrame

        frame = phy_frame.payload
        if not isinstance(frame, MacFrame) or frame.kind is not FrameKind.DATA:
            return
        if self._capture_filter is not None and frame.dst != self._capture_filter:
            return
        self.captured.append(frame)

    def replay(self, index: int = -1) -> bool:
        """Re-transmit a captured frame verbatim.  Returns False when
        nothing has been captured yet."""
        if not self.captured:
            return False
        frame = self.captured[index]
        self.replays += 1
        self.trace.emit(self.sim.now, "attack.replay",
                        node=self.radio.node_id, victim=frame.dst)
        from repro.radio.medium import Frame, RadioState

        if self.radio.state is RadioState.TX:
            return False
        self.radio.medium.transmit(self.radio, Frame(
            payload=frame, size_bytes=frame.size_bytes,
            channel=self.radio.channel, sender=self.radio.node_id,
        ))
        return True


class Jammer(WifiInterferer):
    """A deliberate wide-band jammer: an interferer at high duty cycle.

    Denial of service through spectrum occupation; the coexistence
    machinery already models the physics, the jammer just turns the
    knob to hostile settings.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: Tuple[float, float],
        duty_cycle: float = 0.8,
        wifi_channel: int = 6,
    ) -> None:
        super().__init__(
            sim, medium, node_id, position,
            config=InterfererConfig(
                wifi_channel=wifi_channel,
                duty_cycle=duty_cycle,
                burst_airtime_s=0.004,
                tx_power_dbm=20.0,
            ),
        )
