"""A lightweight security anomaly monitor.

Watches the trace stream for authentication rejections and actuation
anomalies and raises alarms past thresholds — the "slowly building up"
knowledge of novel threats the paper mentions, in minimum viable form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog, TraceRecord


@dataclass
class SecurityAlarm:
    """One raised alarm."""

    time: float
    kind: str
    node: Optional[int]
    detail: Dict[str, object] = field(default_factory=dict)


class AnomalyDetector:
    """Threshold detector over trace categories."""

    def __init__(
        self,
        sim: Simulator,
        trace: TraceLog,
        rejection_threshold: int = 5,
        window_s: float = 300.0,
    ) -> None:
        self.sim = sim
        self.trace = trace
        self.rejection_threshold = rejection_threshold
        self.window_s = window_s
        self.alarms: List[SecurityAlarm] = []
        self.on_alarm: Optional[Callable[[SecurityAlarm], None]] = None
        self._rejections: Dict[int, List[float]] = {}
        trace.subscribe("security.rejected", self._on_rejection)

    def _on_rejection(self, record: TraceRecord) -> None:
        node = record.node if record.node is not None else -1
        events = self._rejections.setdefault(node, [])
        events.append(record.time)
        horizon = record.time - self.window_s
        events[:] = [t for t in events if t >= horizon]
        if len(events) >= self.rejection_threshold:
            events.clear()
            alarm = SecurityAlarm(
                time=record.time,
                kind="auth_rejection_burst",
                node=node,
                detail={"count": self.rejection_threshold,
                        "window_s": self.window_s,
                        "suspect_src": record.data.get("src")},
            )
            self.alarms.append(alarm)
            self.trace.emit(record.time, "security.alarm", node=node,
                            kind=alarm.kind)
            if self.on_alarm is not None:
                self.on_alarm(alarm)
