"""Security at the sensing and actuation layer (paper §V-E).

The paper notes that 802.15.4-family standards *include* secure modes
but they are *hardly implemented* because of resource constraints.  This
package provides the pieces to quantify that tension:

- :mod:`repro.security.keys` / :mod:`repro.security.auth` — link-layer
  frame authentication (network-wide key, per-frame MIC) pluggable into
  any MAC via its ``frame_filter`` hook;
- :mod:`repro.security.crypto_cost` — the CPU/energy/latency price of
  software crypto on Class-1 hardware (experiment E11's overhead axis);
- :mod:`repro.security.attacks` — command injection and jamming
  adversaries (E11's impact axis);
- :mod:`repro.security.detector` — a lightweight anomaly monitor.
"""

from repro.security.attacks import CommandInjector, Jammer, ReplayAttacker
from repro.security.auth import AuthConfig, FrameAuthenticator
from repro.security.crypto_cost import CryptoCostModel, SOFTWARE_AES_CLASS1
from repro.security.detector import AnomalyDetector
from repro.security.keys import KeyStore

__all__ = [
    "AnomalyDetector",
    "AuthConfig",
    "CommandInjector",
    "CryptoCostModel",
    "FrameAuthenticator",
    "Jammer",
    "KeyStore",
    "ReplayAttacker",
    "SOFTWARE_AES_CLASS1",
]
