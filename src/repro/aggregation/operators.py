"""Aggregate operators over partial state records.

Following TinyDB's taxonomy, each operator defines an initializer (one
reading → partial state), a merge (two partials → one), and an evaluator
(partial → result).  Distributive (MIN/MAX/SUM/COUNT) and algebraic
(AVG) operators keep constant-size partials — the property that makes
in-network aggregation pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple


@dataclass(frozen=True)
class AggregateOperator:
    """One aggregation function as (init, merge, finalize)."""

    name: str
    initialize: Callable[[float], Any]
    merge: Callable[[Any, Any], Any]
    finalize: Callable[[Any], float]
    #: Bytes one partial state record occupies on the air.
    state_bytes: int

    def fold(self, values) -> Any:
        """Fold an iterable of readings into one partial (for tests and
        ground-truth computation)."""
        state = None
        for value in values:
            part = self.initialize(value)
            state = part if state is None else self.merge(state, part)
        return state


MIN = AggregateOperator(
    name="min",
    initialize=lambda v: v,
    merge=lambda a, b: a if a <= b else b,
    finalize=lambda s: s,
    state_bytes=4,
)

MAX = AggregateOperator(
    name="max",
    initialize=lambda v: v,
    merge=lambda a, b: a if a >= b else b,
    finalize=lambda s: s,
    state_bytes=4,
)

SUM = AggregateOperator(
    name="sum",
    initialize=lambda v: v,
    merge=lambda a, b: a + b,
    finalize=lambda s: s,
    state_bytes=4,
)

COUNT = AggregateOperator(
    name="count",
    initialize=lambda v: 1,
    merge=lambda a, b: a + b,
    finalize=lambda s: float(s),
    state_bytes=4,
)

AVG = AggregateOperator(
    name="avg",
    initialize=lambda v: (v, 1),
    merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
    finalize=lambda s: s[0] / s[1] if s[1] else float("nan"),
    state_bytes=8,
)

OPERATORS: Dict[str, AggregateOperator] = {
    op.name: op for op in (MIN, MAX, SUM, COUNT, AVG)
}
