"""Epoch-based in-network aggregation and its centralized baseline.

:class:`AggregationService` implements the TinyDB pattern over the RPL
tree: query dissemination by scoped flooding, per-epoch sampling, child
partials folded at each hop, one constant-size record per node per
epoch.  Depth-staggered send offsets make children transmit before their
parents within each epoch.

:class:`RawCollectionService` is the baseline the size-scalability
experiment (E2) and the funnel experiment (E4) compare against: every
node ships its raw reading to the root every epoch, so nodes near the
border router forward O(subtree) messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.aggregation.operators import OPERATORS, AggregateOperator
from repro.aggregation.query import AggregationQuery
from repro.devices.node import DeviceNode
from repro.sim.trace import TraceLog

#: Default service port.
AGGREGATION_PORT = 9903
RAW_PORT = 9905


@dataclass(frozen=True)
class QueryAnnounce:
    """Query dissemination message (flooded link-locally)."""

    query: AggregationQuery
    SIZE_BYTES = AggregationQuery.SIZE_BYTES + 2

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


@dataclass(frozen=True)
class PartialRecord:
    """One node's folded partial state for one epoch."""

    query_id: int
    epoch: int
    state: Any
    count: int
    state_bytes: int

    @property
    def size_bytes(self) -> int:
        return 8 + self.state_bytes


@dataclass(frozen=True)
class RawReading:
    """Baseline: one unaggregated sample shipped to the root."""

    field_name: str
    epoch: int
    value: float

    SIZE_BYTES = 10

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


@dataclass
class EpochResult:
    """The root's answer for one epoch."""

    epoch: int
    value: float
    node_count: int
    finalized_at: float


class AggregationService:
    """TinyDB-style aggregation agent; attach one per device."""

    #: Assumed maximum tree depth for the send schedule.
    SCHEDULE_DEPTH = 12
    #: Fraction of the epoch reserved before the first send slot.
    EARLIEST_FRACTION = 0.25
    #: Root finalizes this far into the next epoch.
    GRACE_FRACTION = 0.1

    def __init__(
        self,
        node: DeviceNode,
        port: int = AGGREGATION_PORT,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.node = node
        self.stack = node.stack
        self.sim = node.sim
        self.port = port
        self.trace = trace if trace is not None else self.stack.trace
        self.queries: Dict[int, AggregationQuery] = {}
        self._seen_queries: Set[int] = set()
        self._accumulators: Dict[Tuple[int, int], Tuple[Any, int]] = {}
        self.records_sent = 0
        self.bytes_sent = 0
        #: Root only.
        self.results: List[EpochResult] = []
        self.on_result: Optional[Callable[[EpochResult], None]] = None
        self._rng = self.sim.substream(f"agg.{node.node_id}")
        self.stack.bind(port, self._on_datagram)

    # ------------------------------------------------------------------
    # root API
    # ------------------------------------------------------------------
    def run_query(
        self,
        field_name: str,
        operator: str,
        epoch_s: float,
        lifetime_epochs: int = 0,
        on_result: Optional[Callable[[EpochResult], None]] = None,
    ) -> AggregationQuery:
        """Root: start a query; results arrive once per epoch."""
        if not self.node.is_root:
            raise RuntimeError("queries are issued by the root")
        query = AggregationQuery.create(
            field_name, operator, epoch_s,
            start_time=self.sim.now, lifetime_epochs=lifetime_epochs,
        )
        self.on_result = on_result
        self._install_query(query)
        self._flood(QueryAnnounce(query))
        self._schedule_finalize(query, 0)
        return query

    # ------------------------------------------------------------------
    # dissemination
    # ------------------------------------------------------------------
    def _flood(self, announce: QueryAnnounce) -> None:
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("agg.announce", node=self.node.node_id)
        self.stack.send_local_broadcast(
            self.port, announce, announce.size_bytes
        )

    def _on_datagram(self, datagram: Any) -> None:
        payload = datagram.payload
        if isinstance(payload, QueryAnnounce):
            self._handle_announce(payload)
        elif isinstance(payload, PartialRecord):
            self._handle_partial(payload, getattr(datagram, "trace_ctx", None))

    def _handle_announce(self, announce: QueryAnnounce) -> None:
        query = announce.query
        if query.query_id in self._seen_queries:
            return
        self._seen_queries.add(query.query_id)
        self._install_query(query)
        # Rebroadcast once, jittered, to continue the flood.
        self.sim.schedule(
            self._rng.uniform(0.2, 2.0), lambda: self._flood(announce)
        )

    def _install_query(self, query: AggregationQuery) -> None:
        self.queries[query.query_id] = query
        self._seen_queries.add(query.query_id)
        if not self.node.is_root:
            next_epoch = max(0, query.epoch_index(self.sim.now) + 1)
            self._schedule_send(query, next_epoch)

    def _expired(self, query: AggregationQuery, epoch: int) -> bool:
        return bool(
            query.lifetime_epochs and epoch >= query.lifetime_epochs
        )

    # ------------------------------------------------------------------
    # node-side epoch machinery
    # ------------------------------------------------------------------
    def _depth(self) -> int:
        rank = self.stack.rpl.rank
        if rank >= 0xFFFF:
            return self.SCHEDULE_DEPTH
        return max(1, rank // 256 - 1 + 1)

    def _send_offset(self, query: AggregationQuery) -> float:
        """Depth-staggered offset: deeper nodes send earlier."""
        usable = query.epoch_s * (1.0 - self.EARLIEST_FRACTION)
        slot = usable / self.SCHEDULE_DEPTH
        depth = min(self._depth(), self.SCHEDULE_DEPTH)
        offset = query.epoch_s - depth * slot
        return max(query.epoch_s * self.EARLIEST_FRACTION,
                   offset - self._rng.uniform(0, slot * 0.5))

    def _schedule_send(self, query: AggregationQuery, epoch: int) -> None:
        if self._expired(query, epoch):
            return
        when = query.epoch_start(epoch) + self._send_offset(query)
        if when <= self.sim.now:
            when = self.sim.now + 0.01
        self.sim.schedule_at(when, lambda: self._send_partial(query, epoch))

    def _send_partial(self, query: AggregationQuery, epoch: int) -> None:
        if query.query_id not in self.queries:
            return
        self._schedule_send(query, epoch + 1)
        if not self.node.alive:
            return
        operator = OPERATORS[query.operator]
        state, count = self._accumulators.pop((query.query_id, epoch), (None, 0))
        sensor = self.node.sensors.get(query.field)
        if sensor is not None:
            reading = sensor.read()
            if reading is not None:
                own = operator.initialize(reading)
                state = own if state is None else operator.merge(state, own)
                count += 1
        if state is None:
            return
        parent = self.stack.rpl.preferred_parent
        if parent is None:
            self.trace.emit(self.sim.now, "agg.orphan_partial",
                            node=self.node.node_id, epoch=epoch)
            return
        record = PartialRecord(
            query_id=query.query_id, epoch=epoch,
            state=state, count=count, state_bytes=operator.state_bytes,
        )
        self.records_sent += 1
        self.bytes_sent += record.size_bytes
        obs = self.trace.obs
        ctx = None
        done = None
        if obs is not None:
            obs.registry.inc("agg.partial", node=self.node.node_id)
            if obs.spans is not None:
                # One span per contributed partial; the datagram journey
                # to the parent (and each fold along the way) nests
                # beneath it.
                ctx = obs.spans.start(
                    None, "agg.partial", node=self.node.node_id,
                    t=self.sim.now, epoch=epoch, count=count,
                )
                spans = obs.spans

                def done(ok: bool, _ctx=ctx) -> None:
                    spans.finish(_ctx, self.sim.now, ok=ok)

        self.stack.send_datagram(parent, self.port, record, record.size_bytes,
                                 done=done, trace_ctx=ctx)

    def _handle_partial(self, record: PartialRecord, ctx: Any = None) -> None:
        query = self.queries.get(record.query_id)
        if query is None:
            return
        operator = OPERATORS[query.operator]
        # Late records fold into whatever epoch is still open here:
        # our own epoch if we have not sent yet, else the next one.
        epoch = record.epoch
        key = (record.query_id, epoch)
        state, count = self._accumulators.get(key, (None, 0))
        merged = record.state if state is None else operator.merge(state, record.state)
        self._accumulators[key] = (merged, count + record.count)
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("agg.fold", node=self.node.node_id)
            if obs.spans is not None and ctx is not None:
                obs.spans.event(ctx, "agg.fold", node=self.node.node_id,
                                t=self.sim.now, epoch=epoch,
                                count=count + record.count)

    # ------------------------------------------------------------------
    # root-side finalize
    # ------------------------------------------------------------------
    def _schedule_finalize(self, query: AggregationQuery, epoch: int) -> None:
        if self._expired(query, epoch):
            return
        when = query.epoch_start(epoch + 1) + query.epoch_s * self.GRACE_FRACTION
        self.sim.schedule_at(when, lambda: self._finalize(query, epoch))

    def _finalize(self, query: AggregationQuery, epoch: int) -> None:
        self._schedule_finalize(query, epoch + 1)
        operator = OPERATORS[query.operator]
        state, count = self._accumulators.pop((query.query_id, epoch), (None, 0))
        sensor = self.node.sensors.get(query.field)
        if sensor is not None:
            reading = sensor.read()
            if reading is not None:
                own = operator.initialize(reading)
                state = own if state is None else operator.merge(state, own)
                count += 1
        if state is None:
            return
        result = EpochResult(
            epoch=epoch,
            value=operator.finalize(state),
            node_count=count,
            finalized_at=self.sim.now,
        )
        self.results.append(result)
        self.trace.emit(self.sim.now, "agg.result", node=self.node.node_id,
                        epoch=epoch, value=result.value, count=count)
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("agg.result", node=self.node.node_id)
            obs.registry.observe("agg.contributions", count,
                                 node=self.node.node_id)
            if obs.spans is not None:
                # The epoch span covers the whole collection window:
                # opened retroactively at the epoch boundary, closed at
                # finalize, with the answer and contribution count.
                ctx = obs.spans.start(
                    None, "agg.epoch", node=self.node.node_id,
                    t=query.epoch_start(epoch), epoch=epoch,
                )
                obs.spans.finish(ctx, self.sim.now, value=result.value,
                                 contributions=count)
        if self.on_result is not None:
            self.on_result(result)


class RawCollectionService:
    """Baseline: every node ships raw readings to the root each epoch."""

    def __init__(
        self,
        node: DeviceNode,
        root_id: int,
        port: int = RAW_PORT,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.node = node
        self.stack = node.stack
        self.sim = node.sim
        self.root_id = root_id
        self.port = port
        self.trace = trace if trace is not None else self.stack.trace
        self.readings_sent = 0
        #: Root only: epoch -> list of values.
        self.received: Dict[int, List[float]] = {}
        self._field = ""
        self._epoch_s = 0.0
        self._start = 0.0
        self._running = False
        self._rng = self.sim.substream(f"raw.{node.node_id}")
        self.stack.bind(port, self._on_datagram)

    def start(self, field_name: str, epoch_s: float) -> None:
        """Begin per-epoch reporting (no-op on the root, which collects)."""
        self._field = field_name
        self._epoch_s = epoch_s
        self._start = self.sim.now
        self._running = True
        if not self.node.is_root:
            self._schedule(1)

    def stop(self) -> None:
        self._running = False

    def _schedule(self, epoch: int) -> None:
        when = (
            self._start + epoch * self._epoch_s
            + self._rng.uniform(0, self._epoch_s * 0.8)
        )
        self.sim.schedule_at(when, lambda: self._report(epoch))

    def _report(self, epoch: int) -> None:
        if not self._running:
            return
        self._schedule(epoch + 1)
        if not self.node.alive:
            return
        sensor = self.node.sensors.get(self._field)
        if sensor is None:
            return
        value = sensor.read()
        if value is None:
            return
        reading = RawReading(field_name=self._field, epoch=epoch, value=value)
        self.readings_sent += 1
        self.stack.send_datagram(
            self.root_id, self.port, reading, reading.size_bytes
        )

    def _on_datagram(self, datagram: Any) -> None:
        reading = datagram.payload
        if not isinstance(reading, RawReading):
            return
        self.received.setdefault(reading.epoch, []).append(reading.value)
