"""Aggregation queries: what the root asks the network to compute."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.aggregation.operators import OPERATORS

_query_ids = itertools.count(1)


@dataclass(frozen=True)
class AggregationQuery:
    """``SELECT op(field) FROM sensors SAMPLE PERIOD epoch_s`` (TinyDB).

    ``start_time`` anchors the global epoch grid: epoch *i* covers
    ``[start_time + i·epoch_s, start_time + (i+1)·epoch_s)``, the shared
    schedule children and parents coordinate on.
    """

    query_id: int
    field: str
    operator: str
    epoch_s: float
    start_time: float
    lifetime_epochs: int = 0  # 0 = run until cancelled

    SIZE_BYTES = 16

    def __post_init__(self) -> None:
        if self.operator not in OPERATORS:
            raise ValueError(
                f"unknown operator {self.operator!r}; "
                f"choose from {sorted(OPERATORS)}"
            )
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES

    def epoch_index(self, time: float) -> int:
        """Which epoch ``time`` falls into (negative before start)."""
        return int((time - self.start_time) // self.epoch_s)

    def epoch_start(self, index: int) -> float:
        return self.start_time + index * self.epoch_s

    @staticmethod
    def create(field: str, operator: str, epoch_s: float, start_time: float,
               lifetime_epochs: int = 0) -> "AggregationQuery":
        """Allocate a query with a fresh id."""
        return AggregationQuery(
            query_id=next(_query_ids),
            field=field, operator=operator,
            epoch_s=epoch_s, start_time=start_time,
            lifetime_epochs=lifetime_epochs,
        )
