"""Koala-style on-demand data retrieval (paper §IV-B, ref [30]).

Between pulls, nodes only sample into a local ring buffer — the radio
duty cycle stays at its idle floor.  A pull floods a request and nodes
unicast their buffered batches to the root, jittered across a response
window so the funnel does not collapse under the burst.  Combined with
aggregation this is the paper's recipe against border-router-vicinity
load.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.devices.node import DeviceNode
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLog

#: Service port.
PULL_PORT = 9904

_pull_ids = itertools.count(1)


@dataclass(frozen=True)
class PullRequest:
    """Flooded request: send me your last ``max_samples`` samples."""

    pull_id: int
    field_name: str
    max_samples: int
    response_window_s: float

    SIZE_BYTES = 10

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


@dataclass(frozen=True)
class PullBatch:
    """One node's buffered samples."""

    pull_id: int
    node: int
    samples: Tuple[float, ...]

    @property
    def size_bytes(self) -> int:
        return 6 + 4 * len(self.samples)


@dataclass
class PullResult:
    """Everything one pull retrieved."""

    pull_id: int
    batches: Dict[int, Tuple[float, ...]] = field(default_factory=dict)
    completed_at: float = 0.0

    @property
    def node_count(self) -> int:
        return len(self.batches)

    @property
    def sample_count(self) -> int:
        return sum(len(samples) for samples in self.batches.values())


class KoalaPullService:
    """Buffer-locally, pull-on-demand retrieval agent."""

    def __init__(
        self,
        node: DeviceNode,
        root_id: int,
        buffer_size: int = 64,
        port: int = PULL_PORT,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.node = node
        self.stack = node.stack
        self.sim = node.sim
        self.root_id = root_id
        self.port = port
        self.trace = trace if trace is not None else self.stack.trace
        self.buffer: Deque[float] = deque(maxlen=buffer_size)
        self._seen_pulls: Set[int] = set()
        self._sampler: Optional[PeriodicTimer] = None
        self._field = ""
        self.batches_sent = 0
        #: Root only: in-flight pulls.
        self._collecting: Dict[int, PullResult] = {}
        self._rng = self.sim.substream(f"koala.{node.node_id}")
        self.stack.bind(port, self._on_datagram)

    # ------------------------------------------------------------------
    # local sampling
    # ------------------------------------------------------------------
    def start_sampling(self, field_name: str, period_s: float) -> None:
        """Sample into the local buffer; no radio traffic involved."""
        self._field = field_name
        self._sampler = PeriodicTimer(
            self.sim, period_s, self._sample,
            phase=self._rng.uniform(0, period_s),
        )
        self._sampler.start()

    def stop_sampling(self) -> None:
        if self._sampler is not None:
            self._sampler.stop()

    def _sample(self) -> None:
        if not self.node.alive:
            return
        sensor = self.node.sensors.get(self._field)
        if sensor is None:
            return
        value = sensor.read()
        if value is not None:
            self.buffer.append(value)

    # ------------------------------------------------------------------
    # pulling (root API)
    # ------------------------------------------------------------------
    def pull(
        self,
        field_name: str,
        max_samples: int = 16,
        response_window_s: float = 60.0,
        on_complete: Optional[Callable[[PullResult], None]] = None,
    ) -> int:
        """Root: retrieve buffered samples from every reachable node."""
        if not self.node.is_root:
            raise RuntimeError("pulls are issued by the root")
        request = PullRequest(
            pull_id=next(_pull_ids),
            field_name=field_name,
            max_samples=max_samples,
            response_window_s=response_window_s,
        )
        result = PullResult(pull_id=request.pull_id)
        self._collecting[request.pull_id] = result
        self._seen_pulls.add(request.pull_id)
        self.stack.send_local_broadcast(self.port, request, request.size_bytes)

        def finish() -> None:
            result.completed_at = self.sim.now
            self._collecting.pop(request.pull_id, None)
            self.trace.emit(self.sim.now, "koala.pull_done",
                            node=self.node.node_id,
                            nodes=result.node_count,
                            samples=result.sample_count)
            if on_complete is not None:
                on_complete(result)

        self.sim.schedule(response_window_s * 1.2, finish)
        return request.pull_id

    # ------------------------------------------------------------------
    def _on_datagram(self, datagram: Any) -> None:
        payload = datagram.payload
        if isinstance(payload, PullRequest):
            self._handle_request(payload)
        elif isinstance(payload, PullBatch):
            result = self._collecting.get(payload.pull_id)
            if result is not None:
                result.batches[payload.node] = payload.samples

    def _handle_request(self, request: PullRequest) -> None:
        if request.pull_id in self._seen_pulls:
            return
        self._seen_pulls.add(request.pull_id)
        # Continue the flood.
        self.sim.schedule(
            self._rng.uniform(0.1, 1.5),
            lambda: self.stack.send_local_broadcast(
                self.port, request, request.size_bytes
            ),
        )
        if self.node.is_root:
            return
        samples = tuple(list(self.buffer)[-request.max_samples:])
        batch = PullBatch(
            pull_id=request.pull_id, node=self.node.node_id, samples=samples
        )

        def respond() -> None:
            if not self.node.alive:
                return
            self.batches_sent += 1
            self.stack.send_datagram(
                self.root_id, self.port, batch, batch.size_bytes
            )

        self.sim.schedule(
            self._rng.uniform(1.0, request.response_window_s), respond
        )
