"""In-network aggregation (paper §IV-B, refs [30], [31]).

TinyDB-style acquisitional query processing: the root disseminates a
query; every node samples each epoch, folds its children's partial
state records into its own, and forwards a single record up the DODAG.
The funnel around the border router then carries O(1) records per node
per epoch instead of O(subtree) raw readings — the mechanism that
"alleviates the effects of the heavy load in the vicinity of border
routers".

:mod:`repro.aggregation.pull` adds Koala-style on-demand retrieval:
nodes buffer locally and the network stays silent between rare pulls.
"""

from repro.aggregation.operators import (
    AVG,
    COUNT,
    MAX,
    MIN,
    OPERATORS,
    SUM,
    AggregateOperator,
)
from repro.aggregation.query import AggregationQuery
from repro.aggregation.service import (
    AggregationService,
    EpochResult,
    RawCollectionService,
)
from repro.aggregation.pull import KoalaPullService, PullResult

__all__ = [
    "AVG",
    "AggregateOperator",
    "AggregationQuery",
    "AggregationService",
    "COUNT",
    "EpochResult",
    "KoalaPullService",
    "MAX",
    "MIN",
    "OPERATORS",
    "PullResult",
    "RawCollectionService",
    "SUM",
]
