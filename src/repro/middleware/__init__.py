"""Middleware for interoperability (paper §III).

The paper argues that standardization alone does not deliver
interoperability — middleware does.  This package provides both halves
of that argument:

- :mod:`repro.middleware.coap` — the Constrained Application Protocol,
  the paper's *textbook example of a middleware protocol* (§III-B,
  ref [15]): message layer with CON retransmission and deduplication,
  request/response with tokens, resources, and Observe;
- :mod:`repro.middleware.adapters` — protocol adapters wrapping legacy
  industrial devices (Modbus-like register maps, a proprietary ASCII
  protocol) behind the same resource abstraction;
- :mod:`repro.middleware.gateway` — the integration gateway: a resource
  directory plus uniform northbound access to native and legacy devices,
  the artifact experiment E12 measures.
"""

from repro.middleware.coap import (
    CoapClient,
    CoapCode,
    CoapMessage,
    CoapServer,
    CoapTransport,
    CoapType,
    ObservableResource,
    Resource,
)
from repro.middleware.gateway import Gateway, ResourceDirectory
from repro.middleware.adapters import (
    LegacyModbusDevice,
    ModbusAdapter,
    ProprietaryAsciiDevice,
    ProprietaryAdapter,
    ProtocolAdapter,
)

__all__ = [
    "CoapClient",
    "CoapCode",
    "CoapMessage",
    "CoapServer",
    "CoapTransport",
    "CoapType",
    "Gateway",
    "LegacyModbusDevice",
    "ModbusAdapter",
    "ObservableResource",
    "ProprietaryAdapter",
    "ProprietaryAsciiDevice",
    "ProtocolAdapter",
    "Resource",
    "ResourceDirectory",
]
