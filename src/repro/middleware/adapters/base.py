"""The adapter contract: one implementation per legacy protocol.

This is the middleware economics the E12 experiment quantifies: with a
common point abstraction, integrating *k* protocols costs *k* adapters;
without it, every pair of systems that must talk needs its own
translator, and the cost grows quadratically.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional


class AdapterError(RuntimeError):
    """Raised for protocol-level failures while talking to a device."""


class ProtocolAdapter(abc.ABC):
    """Uniform async point access over one legacy device.

    Points are named channels ("temp", "valve"); reads and writes
    complete asynchronously after the legacy bus's polling latency.
    """

    #: Protocol family name (for the gateway's registry).
    protocol: str = "abstract"

    @abc.abstractmethod
    def points(self) -> List[str]:
        """The point names this device exposes."""

    @abc.abstractmethod
    def read_point(
        self, name: str, callback: Callable[[Optional[float]], None]
    ) -> None:
        """Read a point; ``callback(value_or_None)`` fires after the
        bus round trip."""

    @abc.abstractmethod
    def write_point(
        self, name: str, value: float, callback: Callable[[bool], None]
    ) -> None:
        """Write a point; ``callback(ok)`` fires after the round trip."""
