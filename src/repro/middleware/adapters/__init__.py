"""Legacy-protocol adapters (paper §III).

Industrial IoT systems "have to operate with legacy components,
sometimes in ways that were not envisioned by the creators of those
components".  These modules model two such component families — a
Modbus-like register-map fieldbus device and a proprietary ASCII-over-
serial controller — and the adapters that lift each behind the uniform
point abstraction the gateway serves.
"""

from repro.middleware.adapters.base import AdapterError, ProtocolAdapter
from repro.middleware.adapters.modbus import LegacyModbusDevice, ModbusAdapter
from repro.middleware.adapters.proprietary import (
    ProprietaryAdapter,
    ProprietaryAsciiDevice,
)

__all__ = [
    "AdapterError",
    "LegacyModbusDevice",
    "ModbusAdapter",
    "ProprietaryAdapter",
    "ProprietaryAsciiDevice",
    "ProtocolAdapter",
]
