"""A proprietary ASCII-over-serial device and its adapter.

Models the single-vendor controllers whose protocol "was not envisioned"
for integration: line-oriented commands (``RD TEMP``, ``WR VLV 0.50``),
quirky replies, and a device that occasionally answers ``BUSY`` and must
be retried — the kind of behaviour middleware exists to absorb.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.middleware.adapters.base import AdapterError, ProtocolAdapter
from repro.sim.kernel import Simulator


class ProprietaryAsciiDevice:
    """The legacy controller: a tiny command interpreter."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        variables: Optional[Dict[str, float]] = None,
        line_latency_s: float = 0.1,
        busy_probability: float = 0.1,
    ) -> None:
        self.sim = sim
        self.name = name
        self.variables: Dict[str, float] = dict(variables or {})
        self.line_latency_s = line_latency_s
        self.busy_probability = busy_probability
        self.commands_handled = 0
        self._rng = sim.substream(f"proprietary.{name}")

    def execute(self, line: str, callback: Callable[[str], None]) -> None:
        """Send one command line; the reply arrives after the serial
        round trip."""
        self.commands_handled += 1

        def answer() -> None:
            callback(self._interpret(line))

        self.sim.schedule(self.line_latency_s, answer)

    def _interpret(self, line: str) -> str:
        if self._rng.random() < self.busy_probability:
            return "BUSY"
        parts = line.strip().split()
        if len(parts) >= 2 and parts[0] == "RD":
            value = self.variables.get(parts[1])
            return "ERR NOVAR" if value is None else f"OK {value:.2f}"
        if len(parts) >= 3 and parts[0] == "WR":
            try:
                self.variables[parts[1]] = float(parts[2])
            except ValueError:
                return "ERR BADVAL"
            return "OK"
        return "ERR SYNTAX"


class ProprietaryAdapter(ProtocolAdapter):
    """Wraps the ASCII device, absorbing BUSY retries and reply parsing."""

    protocol = "proprietary-ascii"
    MAX_BUSY_RETRIES = 5

    def __init__(self, device: ProprietaryAsciiDevice) -> None:
        self.device = device

    def points(self) -> List[str]:
        return sorted(self.device.variables)

    def read_point(
        self, name: str, callback: Callable[[Optional[float]], None]
    ) -> None:
        self._send_with_retry(f"RD {name}", callback=self._parse_read(callback))

    def write_point(
        self, name: str, value: float, callback: Callable[[bool], None]
    ) -> None:
        def parse(reply: str) -> None:
            callback(reply == "OK")

        self._send_with_retry(f"WR {name} {value:.4f}", callback=parse)

    # ------------------------------------------------------------------
    def _parse_read(
        self, callback: Callable[[Optional[float]], None]
    ) -> Callable[[str], None]:
        def parse(reply: str) -> None:
            if reply.startswith("OK "):
                callback(float(reply[3:]))
            else:
                callback(None)

        return parse

    def _send_with_retry(
        self, line: str, callback: Callable[[str], None], attempt: int = 0
    ) -> None:
        def handle(reply: str) -> None:
            if reply == "BUSY" and attempt < self.MAX_BUSY_RETRIES:
                self._send_with_retry(line, callback, attempt + 1)
            else:
                callback(reply)

        self.device.execute(line, handle)
