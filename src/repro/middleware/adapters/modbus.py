"""A Modbus-like register-map device and its adapter.

The device speaks in 16-bit registers with per-point scale factors and
a serial-bus round-trip latency — the shape of the fieldbus equipment
(drives, PLCs, meters) that ref [10] catalogues.  The adapter owns the
register map knowledge (address, scale, writability) that integration
engineers otherwise re-derive for every pairwise integration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.middleware.adapters.base import AdapterError, ProtocolAdapter
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class RegisterSpec:
    """One register-backed point."""

    address: int
    scale: float = 10.0  # stored value = physical value * scale
    writable: bool = False


class LegacyModbusDevice:
    """The legacy device itself: dumb registers behind a slow bus."""

    def __init__(
        self,
        sim: Simulator,
        unit_id: int,
        registers: Optional[Dict[int, int]] = None,
        bus_latency_s: float = 0.05,
    ) -> None:
        self.sim = sim
        self.unit_id = unit_id
        self.registers: Dict[int, int] = dict(registers or {})
        self.bus_latency_s = bus_latency_s
        self.reads = 0
        self.writes = 0
        #: Optional live value sources: address -> provider().
        self.providers: Dict[int, Callable[[], float]] = {}

    def bind_input(self, address: int, provider: Callable[[], float],
                   scale: float = 10.0) -> None:
        """Back an input register with a live value source (a sensor)."""
        self.providers[address] = lambda: int(round(provider() * scale))

    def read_holding(self, address: int,
                     callback: Callable[[Optional[int]], None]) -> None:
        """Async register read with bus latency."""
        self.reads += 1

        def answer() -> None:
            provider = self.providers.get(address)
            if provider is not None:
                self.registers[address] = provider()
            callback(self.registers.get(address))

        self.sim.schedule(self.bus_latency_s, answer)

    def write_holding(self, address: int, value: int,
                      callback: Callable[[bool], None]) -> None:
        """Async register write with bus latency."""
        self.writes += 1

        def apply() -> None:
            if not -32768 <= value <= 65535:
                callback(False)
                return
            self.registers[address] = value
            callback(True)

        self.sim.schedule(self.bus_latency_s, apply)


class ModbusAdapter(ProtocolAdapter):
    """Lifts a :class:`LegacyModbusDevice` behind named, scaled points."""

    protocol = "modbus"

    def __init__(
        self,
        device: LegacyModbusDevice,
        register_map: Dict[str, RegisterSpec],
    ) -> None:
        self.device = device
        self.register_map = dict(register_map)

    def points(self) -> List[str]:
        return sorted(self.register_map)

    def _spec(self, name: str) -> RegisterSpec:
        spec = self.register_map.get(name)
        if spec is None:
            raise AdapterError(f"unknown modbus point {name!r}")
        return spec

    def read_point(
        self, name: str, callback: Callable[[Optional[float]], None]
    ) -> None:
        spec = self._spec(name)

        def translate(raw: Optional[int]) -> None:
            callback(None if raw is None else raw / spec.scale)

        self.device.read_holding(spec.address, translate)

    def write_point(
        self, name: str, value: float, callback: Callable[[bool], None]
    ) -> None:
        spec = self._spec(name)
        if not spec.writable:
            raise AdapterError(f"modbus point {name!r} is read-only")
        self.device.write_holding(spec.address, int(round(value * spec.scale)),
                                  callback)
