"""CoAP message representation with size accounting.

Messages are kept as structured objects (the simulator does not
serialize), but :attr:`CoapMessage.size_bytes` charges what the RFC 7252
encoding would cost, so middleware overhead shows up honestly in airtime
and energy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.middleware.coap.codes import CoapCode, CoapType

_message_ids = itertools.count(1)
_tokens = itertools.count(1)


def next_message_id() -> int:
    """Allocate a message id (16-bit space, wrapped)."""
    return next(_message_ids) & 0xFFFF


def next_token() -> int:
    """Allocate a request token."""
    return next(_tokens)


@dataclass(frozen=True)
class CoapOptions:
    """The option subset the reproduction uses."""

    uri_path: Tuple[str, ...] = ()
    content_format: Optional[str] = None
    #: RFC 7641 Observe option: 0 = register, 1 = deregister,
    #: other values = notification sequence numbers.
    observe: Optional[int] = None
    max_age_s: Optional[float] = None

    @property
    def path(self) -> str:
        return "/" + "/".join(self.uri_path)

    @property
    def size_bytes(self) -> int:
        size = sum(1 + len(segment) for segment in self.uri_path)
        if self.content_format is not None:
            size += 2
        if self.observe is not None:
            size += 4
        if self.max_age_s is not None:
            size += 5
        return size


@dataclass(frozen=True)
class CoapMessage:
    """One CoAP message (any direction, any layer role)."""

    mtype: CoapType
    code: CoapCode
    message_id: int
    token: Optional[int] = None
    options: CoapOptions = field(default_factory=CoapOptions)
    payload: Any = None
    payload_bytes: int = 0

    #: Fixed header: version/type/token-length + code + message id.
    HEADER_BYTES = 4
    TOKEN_BYTES = 2

    @property
    def size_bytes(self) -> int:
        size = self.HEADER_BYTES + self.options.size_bytes
        if self.token is not None:
            size += self.TOKEN_BYTES
        if self.payload_bytes:
            size += 1 + self.payload_bytes  # 0xFF payload marker
        return size

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def request(
        code: CoapCode,
        path: str,
        payload: Any = None,
        payload_bytes: int = 0,
        confirmable: bool = True,
        observe: Optional[int] = None,
    ) -> "CoapMessage":
        """Build a fresh request with a new message id and token."""
        if not code.is_request:
            raise ValueError(f"{code} is not a request code")
        segments = tuple(s for s in path.split("/") if s)
        return CoapMessage(
            mtype=CoapType.CON if confirmable else CoapType.NON,
            code=code,
            message_id=next_message_id(),
            token=next_token(),
            options=CoapOptions(uri_path=segments, observe=observe),
            payload=payload,
            payload_bytes=payload_bytes,
        )

    def ack(self) -> "CoapMessage":
        """Empty ACK for this confirmable message."""
        return CoapMessage(
            mtype=CoapType.ACK, code=CoapCode.EMPTY, message_id=self.message_id
        )

    def rst(self) -> "CoapMessage":
        """Reset for this message."""
        return CoapMessage(
            mtype=CoapType.RST, code=CoapCode.EMPTY, message_id=self.message_id
        )

    def response(
        self,
        code: CoapCode,
        payload: Any = None,
        payload_bytes: int = 0,
        piggyback: bool = True,
        observe: Optional[int] = None,
    ) -> "CoapMessage":
        """Build a response to this request.

        A piggybacked response rides in the ACK (same message id); a
        separate response gets its own id and CON/NON type.
        """
        if not code.is_response:
            raise ValueError(f"{code} is not a response code")
        if piggyback and self.mtype is CoapType.CON:
            mtype, message_id = CoapType.ACK, self.message_id
        else:
            mtype, message_id = CoapType.NON, next_message_id()
        return CoapMessage(
            mtype=mtype,
            code=code,
            message_id=message_id,
            token=self.token,
            options=CoapOptions(observe=observe),
            payload=payload,
            payload_bytes=payload_bytes,
        )
