"""CoAP message types and codes (RFC 7252 §3, §12.1)."""

from __future__ import annotations

import enum


class CoapType(enum.Enum):
    """Message-layer types."""

    CON = 0  # confirmable: must be acknowledged
    NON = 1  # non-confirmable
    ACK = 2  # acknowledgment (may piggyback a response)
    RST = 3  # reset: peer could not process


class CoapCode(enum.Enum):
    """Request methods and response codes, as class.detail values."""

    EMPTY = (0, 0)
    # Requests.
    GET = (0, 1)
    POST = (0, 2)
    PUT = (0, 3)
    DELETE = (0, 4)
    # Success responses.
    CREATED = (2, 1)
    DELETED = (2, 2)
    VALID = (2, 3)
    CHANGED = (2, 4)
    CONTENT = (2, 5)
    # Client errors.
    BAD_REQUEST = (4, 0)
    UNAUTHORIZED = (4, 1)
    NOT_FOUND = (4, 4)
    METHOD_NOT_ALLOWED = (4, 5)
    # Server errors.
    INTERNAL_SERVER_ERROR = (5, 0)
    NOT_IMPLEMENTED = (5, 1)
    SERVICE_UNAVAILABLE = (5, 3)
    GATEWAY_TIMEOUT = (5, 4)

    @property
    def is_request(self) -> bool:
        return self.value[0] == 0 and self != CoapCode.EMPTY

    @property
    def is_response(self) -> bool:
        return self.value[0] in (2, 4, 5)

    @property
    def is_success(self) -> bool:
        return self.value[0] == 2

    def __str__(self) -> str:
        cls, detail = self.value
        return f"{cls}.{detail:02d} {self.name}"
