"""CoAP server: request dispatch and Observe notification fan-out."""

from __future__ import annotations

from typing import Dict, Optional

from repro.middleware.coap.codes import CoapCode, CoapType
from repro.middleware.coap.message import CoapMessage, CoapOptions, next_message_id
from repro.middleware.coap.resource import ObservableResource, Resource
from repro.middleware.coap.transport import CoapTransport
from repro.sim.trace import TraceLog


class CoapServer:
    """Serves a resource tree over one transport.

    The server and a :class:`~repro.middleware.coap.client.CoapClient`
    can share a transport (typical for peers that both expose and
    consume resources): the server claims request messages, the client
    claims responses.
    """

    def __init__(self, transport: CoapTransport,
                 trace: Optional[TraceLog] = None) -> None:
        self.transport = transport
        self.trace = trace if trace is not None else transport.trace
        self.resources: Dict[str, Resource] = {}
        self.requests_served = 0
        previous = transport.on_message

        def chained(src: int, message: CoapMessage) -> None:
            if message.code.is_request:
                self._handle_request(src, message)
            elif previous is not None:
                previous(src, message)

        transport.on_message = chained

    # ------------------------------------------------------------------
    def add_resource(self, resource: Resource) -> Resource:
        """Register a resource at its path."""
        if resource.path in self.resources:
            raise ValueError(f"path {resource.path} already served")
        self.resources[resource.path] = resource
        if isinstance(resource, ObservableResource):
            resource.notify_hook = self._notify_observers
        return resource

    def remove_resource(self, path: str) -> None:
        self.resources.pop(path, None)

    # ------------------------------------------------------------------
    def _handle_request(self, src: int, request: CoapMessage) -> None:
        self.requests_served += 1
        resource = self.resources.get(request.options.path)
        if resource is None:
            response = request.response(CoapCode.NOT_FOUND)
            self._respond(src, request, response)
            return

        observe_seq: Optional[int] = None
        if (
            isinstance(resource, ObservableResource)
            and request.code is CoapCode.GET
            and request.options.observe is not None
        ):
            if request.options.observe == 0:
                resource.add_observer(src, request.token or 0)
                observe_seq = resource.sequence
                self.trace.emit(self.transport.sim.now, "coap.observe_register",
                                node=self.transport.stack.node_id, observer=src)
            else:
                resource.remove_observer(src, request.token or 0)

        code, payload, size = resource.dispatch(request.code, request.payload)
        response = request.response(code, payload, size, observe=observe_seq)
        self._respond(src, request, response)

    def _respond(self, src: int, request: CoapMessage,
                 response: CoapMessage) -> None:
        if request.mtype is CoapType.CON and response.mtype is CoapType.ACK:
            self.transport.record_ack(src, request, response)
        self.transport.send(src, response)

    # ------------------------------------------------------------------
    def _notify_observers(self, resource: ObservableResource) -> None:
        stale = []
        for node, token in resource.observers:
            notification = CoapMessage(
                mtype=CoapType.NON,
                code=CoapCode.CONTENT,
                message_id=next_message_id(),
                token=token,
                options=CoapOptions(observe=resource.sequence),
                payload=resource.state,
                payload_bytes=resource.size_bytes,
            )
            self.transport.send(node, notification)
        for node, token in stale:
            resource.remove_observer(node, token)
