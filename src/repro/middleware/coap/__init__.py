"""A CoAP (RFC 7252) implementation over the simulated stack.

Layering follows the RFC: a *message layer* providing optional
reliability (CON/ACK with exponential retransmission, duplicate
rejection) below a *request/response layer* matching responses to
requests by token, with piggybacked responses in ACKs.  Observe
(RFC 7641) provides the publish/subscribe pattern industrial telemetry
wants.
"""

from repro.middleware.coap.client import CoapClient, PendingRequest
from repro.middleware.coap.codes import CoapCode, CoapType
from repro.middleware.coap.message import CoapMessage, CoapOptions
from repro.middleware.coap.resource import ObservableResource, Resource
from repro.middleware.coap.server import CoapServer
from repro.middleware.coap.transport import CoapTransport, TransportConfig
from repro.middleware.coap.wire import (
    CoapDecodeError,
    decode_options,
    encode_options,
)

__all__ = [
    "CoapClient",
    "CoapCode",
    "CoapDecodeError",
    "CoapMessage",
    "CoapOptions",
    "CoapServer",
    "CoapTransport",
    "CoapType",
    "ObservableResource",
    "PendingRequest",
    "Resource",
    "TransportConfig",
    "decode_options",
    "encode_options",
]
