"""CoAP client: token-matched request/response and Observe."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.middleware.coap.codes import CoapCode, CoapType
from repro.middleware.coap.message import CoapMessage
from repro.middleware.coap.transport import CoapTransport
from repro.sim.timers import Timer

ResponseCallback = Callable[[Optional[CoapMessage]], None]


@dataclass
class PendingRequest:
    """An in-flight request awaiting its (first) response."""

    dest: int
    message: CoapMessage
    callback: ResponseCallback
    observe_callback: Optional[Callable[[CoapMessage], None]] = None
    timer: Optional[Timer] = None
    responded: bool = False
    #: Root ``coap.request`` span context (repro.obs); None untraced.
    ctx: Any = None


class CoapClient:
    """Issues requests over a transport; responses return by token."""

    #: Give the server this long end-to-end before reporting failure.
    DEFAULT_TIMEOUT_S = 60.0

    def __init__(self, transport: CoapTransport) -> None:
        self.transport = transport
        self.sim = transport.sim
        self.trace = transport.trace
        self.node_id = transport.stack.node_id
        self._pending: Dict[int, PendingRequest] = {}
        self._observations: Dict[int, PendingRequest] = {}
        self.requests_sent = 0
        self.responses_received = 0
        self.timeouts = 0
        previous = transport.on_message

        def chained(src: int, message: CoapMessage) -> None:
            if message.code.is_response:
                self._handle_response(src, message)
            elif previous is not None:
                previous(src, message)

        transport.on_message = chained

    # ------------------------------------------------------------------
    def _open_span(self, dest: int, method: str, path: str) -> Any:
        """Root span for one request's end-to-end journey (repro.obs)."""
        obs = self.trace.obs
        if obs is None or obs.spans is None:
            return None
        obs.registry.inc("coap.request", node=self.node_id, method=method)
        return obs.spans.start(None, "coap.request", node=self.node_id,
                               t=self.sim.now, dest=dest, method=method,
                               path=path)

    def _close_span(self, pending: PendingRequest, ok: bool) -> None:
        obs = self.trace.obs
        if obs is not None and obs.spans is not None and pending.ctx is not None:
            obs.spans.finish(pending.ctx, self.sim.now, ok=ok)

    # ------------------------------------------------------------------
    def request(
        self,
        dest: int,
        code: CoapCode,
        path: str,
        callback: ResponseCallback,
        payload: Any = None,
        payload_bytes: int = 0,
        confirmable: bool = True,
        timeout_s: Optional[float] = None,
    ) -> CoapMessage:
        """Send a request; ``callback(response_or_None)`` fires once."""
        message = CoapMessage.request(
            code, path, payload, payload_bytes, confirmable=confirmable
        )
        pending = PendingRequest(dest=dest, message=message, callback=callback)
        pending.ctx = self._open_span(dest, code.name, path)
        self._pending[message.token] = pending
        timeout = timeout_s if timeout_s is not None else self.DEFAULT_TIMEOUT_S
        pending.timer = Timer(self.sim, lambda: self._timeout(message.token))
        pending.timer.start(timeout)
        self.requests_sent += 1
        self.transport.send(
            dest, message, on_fail=lambda: self._timeout(message.token),
            trace_ctx=pending.ctx,
        )
        return message

    def get(self, dest: int, path: str, callback: ResponseCallback, **kw) -> CoapMessage:
        """Convenience GET."""
        return self.request(dest, CoapCode.GET, path, callback, **kw)

    def put(self, dest: int, path: str, payload: Any, payload_bytes: int,
            callback: ResponseCallback, **kw) -> CoapMessage:
        """Convenience PUT."""
        return self.request(
            dest, CoapCode.PUT, path, callback,
            payload=payload, payload_bytes=payload_bytes, **kw,
        )

    # ------------------------------------------------------------------
    def observe(
        self,
        dest: int,
        path: str,
        on_notification: Callable[[CoapMessage], None],
        on_established: Optional[ResponseCallback] = None,
        timeout_s: Optional[float] = None,
    ) -> CoapMessage:
        """Register as an observer; notifications stream to the callback."""
        message = CoapMessage.request(CoapCode.GET, path, observe=0)
        pending = PendingRequest(
            dest=dest,
            message=message,
            callback=on_established if on_established is not None else (lambda r: None),
            observe_callback=on_notification,
        )
        pending.ctx = self._open_span(dest, "OBSERVE", path)
        self._pending[message.token] = pending
        timeout = timeout_s if timeout_s is not None else self.DEFAULT_TIMEOUT_S
        pending.timer = Timer(self.sim, lambda: self._timeout(message.token))
        pending.timer.start(timeout)
        self.requests_sent += 1
        self.transport.send(dest, message,
                            on_fail=lambda: self._timeout(message.token),
                            trace_ctx=pending.ctx)
        return message

    def cancel_observe(self, dest: int, path: str, token: int) -> None:
        """Deregister an observation (RFC 7641 observe=1)."""
        self._observations.pop(token, None)
        message = CoapMessage.request(CoapCode.GET, path, observe=1,
                                      confirmable=False)
        self.transport.send(dest, message)

    # ------------------------------------------------------------------
    def _handle_response(self, src: int, response: CoapMessage) -> None:
        token = response.token
        if token is None:
            return
        observation = self._observations.get(token)
        if observation is not None and observation.observe_callback is not None:
            self.responses_received += 1
            self.trace.emit(self.sim.now, "coap.notify", node=self.node_id,
                            src=src, token=token,
                            seq=response.options.observe)
            observation.observe_callback(response)
            return
        pending = self._pending.pop(token, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self.responses_received += 1
        self.trace.emit(self.sim.now, "coap.response", node=self.node_id,
                        src=src, token=token)
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("coap.response", node=self.node_id)
        self._close_span(pending, ok=True)
        if pending.observe_callback is not None and response.code.is_success:
            # Observation established: future notifications reuse the token.
            self._observations[token] = pending
            if response.options.observe is not None:
                self.trace.emit(self.sim.now, "coap.notify",
                                node=self.node_id, src=src, token=token,
                                seq=response.options.observe)
            pending.observe_callback(response)
        pending.callback(response)

    def _timeout(self, token: int) -> None:
        pending = self._pending.pop(token, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self.timeouts += 1
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("coap.timeout", node=self.node_id)
        self._close_span(pending, ok=False)
        pending.callback(None)
