"""CoAP message layer: reliability and deduplication (RFC 7252 §4).

Confirmable messages are retransmitted with exponential backoff until
acknowledged (or ``MAX_RETRANSMIT`` is exhausted); duplicates are
rejected by (peer, message id); empty ACKs are generated for confirmable
messages the upper layer answered separately or not at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.middleware.coap.codes import CoapCode, CoapType
from repro.middleware.coap.message import CoapMessage
from repro.net.stack import NetworkStack
from repro.sim.timers import Timer
from repro.sim.trace import TraceLog

#: Default CoAP UDP port.
COAP_PORT = 5683


@dataclass(frozen=True)
class TransportConfig:
    """RFC 7252 §4.8 transmission parameters."""

    ack_timeout_s: float = 2.0
    ack_random_factor: float = 1.5
    max_retransmit: int = 4
    #: How long (peer, message id) pairs are remembered for dedup.
    exchange_lifetime_s: float = 240.0


class _PendingCon:
    """Book-keeping for one unacknowledged confirmable message."""

    __slots__ = ("message", "dest", "retries", "timer", "timeout", "on_fail",
                 "ctx")

    def __init__(self, message: CoapMessage, dest: int, timeout: float,
                 timer: Timer, on_fail: Optional[Callable[[], None]],
                 ctx: Any = None) -> None:
        self.message = message
        self.dest = dest
        self.retries = 0
        self.timeout = timeout
        self.timer = timer
        self.on_fail = on_fail
        #: Lifecycle span context (repro.obs) retransmissions inherit.
        self.ctx = ctx


class CoapTransport:
    """The message layer bound to one node's network stack."""

    def __init__(
        self,
        stack: NetworkStack,
        config: Optional[TransportConfig] = None,
        port: int = COAP_PORT,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.config = config if config is not None else TransportConfig()
        self.port = port
        self.trace = trace if trace is not None else stack.trace
        #: Upper layer: called with (src_node, message).
        self.on_message: Optional[Callable[[int, CoapMessage], None]] = None
        self._pending: Dict[Tuple[int, int], _PendingCon] = {}
        self._seen: Dict[Tuple[int, int], float] = {}
        self._acked_by_us: Dict[Tuple[int, int], CoapMessage] = {}
        self._rng = stack.sim.substream(f"coap.{stack.node_id}")
        self.messages_sent = 0
        self.retransmissions = 0
        self.failures = 0
        stack.bind(port, self._on_datagram)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        dest: int,
        message: CoapMessage,
        on_fail: Optional[Callable[[], None]] = None,
        trace_ctx: Any = None,
    ) -> None:
        """Send a message; CONs are tracked until ACKed.

        ``trace_ctx`` parents the lifecycle spans of every transmission
        of this message, retransmissions included.
        """
        self.messages_sent += 1
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("coap.sent", node=self.stack.node_id,
                             mtype=message.mtype.name)
        if message.mtype is CoapType.CON:
            timeout = self.config.ack_timeout_s * self._rng.uniform(
                1.0, self.config.ack_random_factor
            )
            key = (dest, message.message_id)
            timer = Timer(self.sim, lambda: self._retransmit(key))
            pending = _PendingCon(message, dest, timeout, timer, on_fail,
                                  ctx=trace_ctx)
            self._pending[key] = pending
            timer.start(timeout)
        self._transmit(dest, message, trace_ctx)

    def _transmit(self, dest: int, message: CoapMessage,
                  trace_ctx: Any = None) -> None:
        self.stack.send_datagram(
            dst=dest,
            dst_port=self.port,
            payload=message,
            payload_bytes=message.size_bytes,
            src_port=self.port,
            trace_ctx=trace_ctx,
        )

    def _retransmit(self, key: Tuple[int, int]) -> None:
        pending = self._pending.get(key)
        if pending is None:
            return
        pending.retries += 1
        obs = self.trace.obs
        if pending.retries > self.config.max_retransmit:
            del self._pending[key]
            self.failures += 1
            self.trace.emit(self.sim.now, "coap.con_failed",
                            node=self.stack.node_id, dest=pending.dest)
            if obs is not None:
                obs.registry.inc("coap.con_failed", node=self.stack.node_id)
                if obs.spans is not None and pending.ctx is not None:
                    obs.spans.event(pending.ctx, "coap.con_failed",
                                    node=self.stack.node_id, t=self.sim.now)
            if pending.on_fail is not None:
                pending.on_fail()
            return
        self.retransmissions += 1
        self.trace.emit(self.sim.now, "coap.retransmit",
                        node=self.stack.node_id, dest=pending.dest,
                        retries=pending.retries,
                        max_retransmit=self.config.max_retransmit)
        if obs is not None:
            obs.registry.inc("coap.retransmit", node=self.stack.node_id)
            if obs.spans is not None and pending.ctx is not None:
                obs.spans.event(pending.ctx, "coap.retransmit",
                                node=self.stack.node_id, t=self.sim.now,
                                retries=pending.retries)
        pending.timeout *= 2.0
        pending.timer.start(pending.timeout)
        self._transmit(pending.dest, pending.message, pending.ctx)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_datagram(self, datagram) -> None:
        message = datagram.payload
        if not isinstance(message, CoapMessage):
            return
        src = datagram.src
        if message.mtype in (CoapType.ACK, CoapType.RST):
            self._settle(src, message)
            if message.code is CoapCode.EMPTY:
                return  # pure message-layer traffic
        if message.mtype in (CoapType.CON, CoapType.NON):
            key = (src, message.message_id)
            now = self.sim.now
            self._gc_seen(now)
            if key in self._seen:
                # Duplicate: re-ACK CONs, swallow.
                if message.mtype is CoapType.CON:
                    earlier = self._acked_by_us.get(key)
                    self.send(src, earlier if earlier is not None else message.ack())
                return
            self._seen[key] = now
        if self.on_message is not None:
            self.on_message(src, message)

    def _settle(self, src: int, message: CoapMessage) -> None:
        pending = self._pending.pop((src, message.message_id), None)
        if pending is not None:
            pending.timer.cancel()
            if message.mtype is CoapType.RST and pending.on_fail is not None:
                pending.on_fail()

    def record_ack(self, src: int, request: CoapMessage, ack: CoapMessage) -> None:
        """Remember the ACK we produced for a CON so duplicates can be
        answered identically (RFC 7252 §4.2 idempotent exchange replay)."""
        self._acked_by_us[(src, request.message_id)] = ack

    def _gc_seen(self, now: float) -> None:
        if len(self._seen) < 256:
            return
        horizon = now - self.config.exchange_lifetime_s
        for key in [k for k, t in self._seen.items() if t < horizon]:
            del self._seen[key]
            self._acked_by_us.pop(key, None)

    def close(self) -> None:
        """Unbind and cancel all retransmission timers."""
        for pending in self._pending.values():
            pending.timer.cancel()
        self._pending.clear()
        self.stack.unbind(self.port)
