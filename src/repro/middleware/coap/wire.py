"""RFC 7252 wire codec for the CoAP option subset the stack uses.

The simulator never serializes messages — :attr:`CoapMessage.size_bytes`
charges the encoding cost without producing bytes — but the *option*
encoding is where RFC 7252 hides its sharp edges (delta encoding,
13/14 extension nibbles, the reserved 15), so this module implements it
for real: :func:`encode_options` / :func:`decode_options` round-trip a
:class:`~repro.middleware.coap.message.CoapOptions`, and decoding
arbitrary bytes either succeeds or raises :class:`CoapDecodeError` —
never anything else.  The fuzz tests pin both properties.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.middleware.coap.message import CoapOptions

#: RFC 7252 / RFC 7641 option numbers for the supported subset.
OPTION_OBSERVE = 6
OPTION_URI_PATH = 11
OPTION_CONTENT_FORMAT = 12
OPTION_MAX_AGE = 14

#: CoAP Content-Format registry (the slice this stack names).
CONTENT_FORMAT_IDS: Dict[str, int] = {
    "text/plain": 0,
    "application/link-format": 40,
    "application/xml": 41,
    "application/octet-stream": 42,
    "application/json": 50,
    "application/cbor": 60,
}
_CONTENT_FORMAT_NAMES = {v: k for k, v in CONTENT_FORMAT_IDS.items()}

#: Uri-Path segment length cap (RFC 7252 table 4).
MAX_URI_PATH_BYTES = 255


class CoapDecodeError(ValueError):
    """Malformed CoAP option bytes (the only decode-side exception)."""


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def _encode_uint(value: int) -> bytes:
    """RFC 7252 §3.2 uint option value: minimal-length big-endian."""
    if value < 0:
        raise ValueError("option uints are non-negative")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def _decode_uint(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _nibble(value: int) -> Tuple[int, bytes]:
    """Split a delta/length value into its nibble and extension bytes."""
    if value < 13:
        return value, b""
    if value < 269:
        return 13, bytes([value - 13])
    if value < 65805:
        return 14, (value - 269).to_bytes(2, "big")
    raise ValueError(f"option delta/length {value} not encodable")


def _content_format_id(name: str) -> int:
    if name in CONTENT_FORMAT_IDS:
        return CONTENT_FORMAT_IDS[name]
    if name.startswith("ct/"):
        try:
            return int(name[3:])
        except ValueError:
            pass
    raise ValueError(f"unknown content format {name!r}")


def _content_format_name(cf_id: int) -> str:
    return _CONTENT_FORMAT_NAMES.get(cf_id, f"ct/{cf_id}")


# ----------------------------------------------------------------------
# encode
# ----------------------------------------------------------------------
def encode_options(options: CoapOptions) -> bytes:
    """Serialize the supported options in RFC 7252 delta encoding."""
    entries: List[Tuple[int, bytes]] = []
    if options.observe is not None:
        if not 0 <= options.observe < (1 << 24):
            raise ValueError("observe is a 24-bit uint")
        entries.append((OPTION_OBSERVE, _encode_uint(options.observe)))
    for segment in options.uri_path:
        raw = segment.encode("utf-8")
        if len(raw) > MAX_URI_PATH_BYTES:
            raise ValueError("Uri-Path segment over 255 bytes")
        entries.append((OPTION_URI_PATH, raw))
    if options.content_format is not None:
        entries.append((OPTION_CONTENT_FORMAT,
                        _encode_uint(_content_format_id(options.content_format))))
    if options.max_age_s is not None:
        if options.max_age_s < 0:
            raise ValueError("Max-Age is non-negative")
        entries.append((OPTION_MAX_AGE, _encode_uint(int(options.max_age_s))))

    out = bytearray()
    previous = 0
    for number, value in entries:  # entries are already number-sorted
        delta_nibble, delta_ext = _nibble(number - previous)
        length_nibble, length_ext = _nibble(len(value))
        out.append((delta_nibble << 4) | length_nibble)
        out += delta_ext
        out += length_ext
        out += value
        previous = number
    return bytes(out)


# ----------------------------------------------------------------------
# decode
# ----------------------------------------------------------------------
def _read_extended(data: bytes, offset: int, nibble: int,
                   what: str) -> Tuple[int, int]:
    """Resolve one delta/length nibble (+ extension bytes) to a value."""
    if nibble < 13:
        return nibble, offset
    if nibble == 13:
        if offset >= len(data):
            raise CoapDecodeError(f"truncated {what} extension")
        return data[offset] + 13, offset + 1
    if nibble == 14:
        if offset + 2 > len(data):
            raise CoapDecodeError(f"truncated {what} extension")
        return int.from_bytes(data[offset:offset + 2], "big") + 269, offset + 2
    raise CoapDecodeError(f"{what} nibble 15 is reserved")


def decode_options(data: bytes) -> CoapOptions:
    """Parse option bytes back into a :class:`CoapOptions`.

    Any malformation — truncation, reserved nibbles, out-of-order or
    unknown options, bad UTF-8 — raises :class:`CoapDecodeError`.
    """
    uri_path: List[str] = []
    content_format = None
    observe = None
    max_age_s = None

    offset = 0
    number = 0
    while offset < len(data):
        byte = data[offset]
        offset += 1
        if byte == 0xFF:
            raise CoapDecodeError("payload marker inside option block")
        delta, offset = _read_extended(data, offset, byte >> 4, "delta")
        length, offset = _read_extended(data, offset, byte & 0x0F, "length")
        if offset + length > len(data):
            raise CoapDecodeError("truncated option value")
        value = data[offset:offset + length]
        offset += length
        number += delta

        if number == OPTION_OBSERVE:
            if observe is not None:
                raise CoapDecodeError("repeated Observe option")
            if length > 3:
                raise CoapDecodeError("Observe value over 3 bytes")
            observe = _decode_uint(value)
        elif number == OPTION_URI_PATH:
            if length > MAX_URI_PATH_BYTES:
                raise CoapDecodeError("Uri-Path segment over 255 bytes")
            try:
                uri_path.append(value.decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise CoapDecodeError(f"Uri-Path not UTF-8: {exc}") from exc
        elif number == OPTION_CONTENT_FORMAT:
            if content_format is not None:
                raise CoapDecodeError("repeated Content-Format option")
            if length > 2:
                raise CoapDecodeError("Content-Format value over 2 bytes")
            content_format = _content_format_name(_decode_uint(value))
        elif number == OPTION_MAX_AGE:
            if max_age_s is not None:
                raise CoapDecodeError("repeated Max-Age option")
            if length > 4:
                raise CoapDecodeError("Max-Age value over 4 bytes")
            max_age_s = float(_decode_uint(value))
        else:
            raise CoapDecodeError(f"unsupported option number {number}")

    return CoapOptions(
        uri_path=tuple(uri_path),
        content_format=content_format,
        observe=observe,
        max_age_s=max_age_s,
    )
