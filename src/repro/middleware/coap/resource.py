"""CoAP resources: the server-side programming model.

A :class:`Resource` answers REST methods; an :class:`ObservableResource`
additionally pushes state changes to registered observers (RFC 7641) —
the pattern industrial telemetry uses instead of polling.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.middleware.coap.codes import CoapCode


class Resource:
    """A REST resource at a fixed path.

    Subclasses override the ``handle_*`` methods; each returns
    ``(code, payload, payload_bytes)``.
    """

    def __init__(self, path: str) -> None:
        self.path = "/" + "/".join(s for s in path.split("/") if s)

    def handle_get(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        return (CoapCode.METHOD_NOT_ALLOWED, None, 0)

    def handle_put(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        return (CoapCode.METHOD_NOT_ALLOWED, None, 0)

    def handle_post(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        return (CoapCode.METHOD_NOT_ALLOWED, None, 0)

    def handle_delete(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        return (CoapCode.METHOD_NOT_ALLOWED, None, 0)

    def dispatch(self, code: CoapCode, payload: Any) -> Tuple[CoapCode, Any, int]:
        """Route a request method to its handler."""
        handlers = {
            CoapCode.GET: self.handle_get,
            CoapCode.PUT: self.handle_put,
            CoapCode.POST: self.handle_post,
            CoapCode.DELETE: self.handle_delete,
        }
        handler = handlers.get(code)
        if handler is None:
            return (CoapCode.METHOD_NOT_ALLOWED, None, 0)
        return handler(payload)


class CallbackResource(Resource):
    """A resource backed by plain callables — the quick way to expose
    a sensor reading or accept an actuator command."""

    def __init__(
        self,
        path: str,
        on_get: Optional[Callable[[], Tuple[Any, int]]] = None,
        on_put: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        super().__init__(path)
        self._on_get = on_get
        self._on_put = on_put

    def handle_get(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        if self._on_get is None:
            return (CoapCode.METHOD_NOT_ALLOWED, None, 0)
        value, size = self._on_get()
        return (CoapCode.CONTENT, value, size)

    def handle_put(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        if self._on_put is None:
            return (CoapCode.METHOD_NOT_ALLOWED, None, 0)
        return (
            (CoapCode.CHANGED, None, 0)
            if self._on_put(payload)
            else (CoapCode.BAD_REQUEST, None, 0)
        )


class ObservableResource(Resource):
    """A resource whose state changes are pushed to observers.

    The server wires :attr:`notify_hook`; user code calls
    :meth:`update` when the underlying state changes.
    """

    def __init__(self, path: str, initial: Any = None, size_bytes: int = 4) -> None:
        super().__init__(path)
        self.state = initial
        self.size_bytes = size_bytes
        self.sequence = 0
        #: (observer node, token) registrations.
        self.observers: List[Tuple[int, int]] = []
        #: Installed by the server: (self) -> None, sends notifications.
        self.notify_hook: Optional[Callable[["ObservableResource"], None]] = None

    def handle_get(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        return (CoapCode.CONTENT, self.state, self.size_bytes)

    def update(self, state: Any, size_bytes: Optional[int] = None) -> None:
        """Change the state and notify every observer."""
        self.state = state
        if size_bytes is not None:
            self.size_bytes = size_bytes
        self.sequence += 1
        if self.notify_hook is not None:
            self.notify_hook(self)

    def add_observer(self, node: int, token: int) -> None:
        key = (node, token)
        if key not in self.observers:
            self.observers.append(key)

    def remove_observer(self, node: int, token: int) -> None:
        key = (node, token)
        if key in self.observers:
            self.observers.remove(key)
