"""The integration gateway: one namespace over heterogeneous devices.

Runs on the border router.  Native constrained devices register their
CoAP resources in the :class:`ResourceDirectory` (the CoRE RD pattern);
legacy devices are wired in through protocol adapters.  Northbound —
toward the application-logic tier of Fig. 1 — everything is a uniform
``read(target, point)`` / ``write(target, point, value)``, which is the
middleware value proposition §III-B describes and experiment E12
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.middleware.adapters.base import ProtocolAdapter
from repro.middleware.coap.client import CoapClient
from repro.middleware.coap.codes import CoapCode
from repro.middleware.coap.message import CoapMessage
from repro.middleware.coap.resource import Resource
from repro.middleware.coap.server import CoapServer
from repro.middleware.coap.transport import CoapTransport
from repro.net.stack import NetworkStack
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class RdEntry:
    """One registered resource of a native device."""

    node: int
    path: str
    attributes: Tuple[Tuple[str, str], ...] = ()


class ResourceDirectory(Resource):
    """CoRE-RD-style registry, itself exposed as a CoAP resource.

    Devices POST their resource list to ``/rd``; the application tier
    queries :meth:`lookup`.
    """

    def __init__(self) -> None:
        super().__init__("/rd")
        self.entries: Dict[Tuple[int, str], RdEntry] = {}
        self.registrations = 0

    def handle_post(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        if not isinstance(payload, dict) or "node" not in payload:
            return (CoapCode.BAD_REQUEST, None, 0)
        node = payload["node"]
        for path in payload.get("paths", ()):
            entry = RdEntry(node=node, path=path)
            self.entries[(node, path)] = entry
        self.registrations += 1
        return (CoapCode.CREATED, None, 0)

    def handle_get(self, payload: Any) -> Tuple[CoapCode, Any, int]:
        listing = [(e.node, e.path) for e in self.entries.values()]
        return (CoapCode.CONTENT, listing, 4 * len(listing))

    def lookup(self, path_suffix: str = "") -> List[RdEntry]:
        """All registrations whose path ends with ``path_suffix``."""
        return [
            entry for entry in self.entries.values()
            if entry.path.endswith(path_suffix)
        ]

    def nodes(self) -> List[int]:
        return sorted({entry.node for entry in self.entries.values()})


class Gateway:
    """The border router's middleware service."""

    def __init__(
        self,
        stack: NetworkStack,
        trace: Optional[TraceLog] = None,
    ) -> None:
        if not stack.is_root:
            raise ValueError("the gateway must run on the border router")
        self.stack = stack
        self.sim = stack.sim
        self.trace = trace if trace is not None else stack.trace
        self.transport = CoapTransport(stack)
        self.server = CoapServer(self.transport)
        self.client = CoapClient(self.transport)
        self.directory = ResourceDirectory()
        self.server.add_resource(self.directory)
        self.adapters: Dict[str, ProtocolAdapter] = {}
        self.reads = 0
        self.writes = 0
        #: Observe-fed cache: (node, path) -> (value, updated_at).
        self._cache: Dict[Tuple[int, str], Tuple[Any, float]] = {}
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # southbound attachment
    # ------------------------------------------------------------------
    def attach_legacy(self, name: str, adapter: ProtocolAdapter) -> None:
        """Wire a legacy device in through its protocol adapter."""
        if name in self.adapters:
            raise ValueError(f"legacy device {name!r} already attached")
        self.adapters[name] = adapter
        self.trace.emit(self.sim.now, "gateway.legacy_attached",
                        node=self.stack.node_id, name=name,
                        protocol=adapter.protocol)

    # ------------------------------------------------------------------
    # northbound uniform access
    # ------------------------------------------------------------------
    def targets(self) -> List[str]:
        """Every addressable target: native node ids and legacy names."""
        native = [f"native/{node}" for node in self.directory.nodes()]
        legacy = [f"legacy/{name}" for name in sorted(self.adapters)]
        return native + legacy

    def read(
        self,
        target: str,
        point: str,
        callback: Callable[[Optional[float]], None],
    ) -> None:
        """Read ``point`` on ``target`` ("native/<id>" or "legacy/<name>")."""
        self.reads += 1
        kind, _, ident = target.partition("/")
        if kind == "legacy":
            adapter = self._adapter(ident)
            adapter.read_point(point, callback)
            return
        if kind == "native":
            def on_response(response: Optional[CoapMessage]) -> None:
                if response is None or not response.code.is_success:
                    callback(None)
                else:
                    callback(response.payload)

            self.client.get(int(ident), point, on_response)
            return
        raise ValueError(f"unknown target kind in {target!r}")

    def write(
        self,
        target: str,
        point: str,
        value: float,
        callback: Callable[[bool], None],
    ) -> None:
        """Write ``value`` to ``point`` on ``target``."""
        self.writes += 1
        kind, _, ident = target.partition("/")
        if kind == "legacy":
            self._adapter(ident).write_point(point, value, callback)
            return
        if kind == "native":
            def on_response(response: Optional[CoapMessage]) -> None:
                callback(response is not None and response.code.is_success)

            self.client.put(int(ident), point, value, 4, on_response)
            return
        raise ValueError(f"unknown target kind in {target!r}")

    def _adapter(self, name: str) -> ProtocolAdapter:
        adapter = self.adapters.get(name)
        if adapter is None:
            raise KeyError(f"no legacy device {name!r} attached")
        return adapter

    # ------------------------------------------------------------------
    # observe-fed caching
    # ------------------------------------------------------------------
    def watch(self, node: int, path: str,
              on_update: Optional[Callable[[Any], None]] = None) -> None:
        """Subscribe (CoAP Observe) to a native resource and keep its
        latest value in the northbound cache.

        This moves the read cost off the constrained network: dashboards
        polling the gateway are served from the cache, while the device
        only transmits when its state actually changes — the
        application-tier pattern that complements in-network aggregation.
        """
        key = (node, path)

        def on_notification(message: CoapMessage) -> None:
            self._cache[key] = (message.payload, self.sim.now)
            self.trace.emit(self.sim.now, "gateway.cache_update",
                            node=self.stack.node_id, source=node, path=path)
            if on_update is not None:
                on_update(message.payload)

        self.client.observe(node, path, on_notification=on_notification)

    def read_cached(
        self, target: str, point: str, max_age_s: float = float("inf")
    ) -> Optional[Tuple[Any, float]]:
        """Serve a native read from the Observe cache.

        Returns ``(value, age_seconds)`` or None when the cache has no
        fresh-enough entry (fall back to :meth:`read` then).
        """
        kind, _, ident = target.partition("/")
        if kind != "native":
            return None
        entry = self._cache.get((int(ident), point))
        if entry is None:
            return None
        value, updated_at = entry
        age = self.sim.now - updated_at
        if age > max_age_s:
            return None
        self.cache_hits += 1
        return (value, age)


def pairwise_integration_cost(n_systems: int) -> int:
    """Translators needed for direct pairwise integration: n(n-1)/2."""
    if n_systems < 0:
        raise ValueError("n_systems must be non-negative")
    return n_systems * (n_systems - 1) // 2


def middleware_integration_cost(n_systems: int) -> int:
    """Adapters needed with a common middleware abstraction: n."""
    if n_systems < 0:
        raise ValueError("n_systems must be non-negative")
    return n_systems
