"""Link-quality models mapping geometry to packet reception probability.

The reproduction's claims (latency per hop, funnel energy drain,
coexistence collapse) are protocol-level, so the physical layer only
needs a credible mapping from distance to packet reception ratio (PRR).
Two models are provided:

- :class:`LogDistanceModel` — log-distance path loss with per-link
  log-normal shadowing and a logistic SNR→PRR curve.  This yields the
  characteristic *transitional region* of real low-power links (Zuniga &
  Krishnamachari), which matters for routing-protocol realism.
- :class:`UnitDiskModel` — idealized binary connectivity for unit tests
  and debugging, where stochastic links would obscure the logic under
  test.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Protocol, Tuple

Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two planar positions in meters."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class LinkQualityModel(Protocol):
    """Interface the medium uses to evaluate links."""

    def rssi_dbm(self, sender: Position, receiver: Position, tx_power_dbm: float) -> float:
        """Received signal strength for a transmission."""
        ...

    def reception_probability(self, rssi_dbm: float) -> float:
        """PRR for a frame arriving at the given signal strength."""
        ...


@dataclass
class LogDistanceModel:
    """Log-distance path loss + shadowing + logistic PRR curve.

    Parameters
    ----------
    path_loss_exponent:
        Environment exponent; 2.0 free space, 3.0–4.0 indoor/industrial.
    reference_loss_db:
        Path loss at the 1 m reference distance.
    shadowing_sigma_db:
        Standard deviation of per-link log-normal shadowing.  Shadowing
        is drawn once per (sender, receiver) pair and cached, making
        links static-but-heterogeneous, as in real deployments.
    sensitivity_dbm:
        RSSI at which PRR is 50%.
    transition_width_db:
        Width of the logistic transitional region (dB per PRR decade).
    """

    path_loss_exponent: float = 3.0
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 4.0
    sensitivity_dbm: float = -90.0
    transition_width_db: float = 2.5
    seed: int = 0

    def __post_init__(self) -> None:
        self._shadowing: Dict[Tuple[Position, Position], float] = {}
        self._rng = random.Random(self.seed)

    def _link_shadowing_db(self, a: Position, b: Position) -> float:
        key = (a, b) if a <= b else (b, a)  # symmetric links
        value = self._shadowing.get(key)
        if value is None:
            value = self._rng.gauss(0.0, self.shadowing_sigma_db)
            self._shadowing[key] = value
        return value

    def rssi_dbm(self, sender: Position, receiver: Position, tx_power_dbm: float) -> float:
        d = max(distance(sender, receiver), 1.0)
        path_loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(d)
        return tx_power_dbm - path_loss + self._link_shadowing_db(sender, receiver)

    def reception_probability(self, rssi_dbm: float) -> float:
        x = (rssi_dbm - self.sensitivity_dbm) / self.transition_width_db
        # Clamp to avoid math range errors on extreme links.
        if x > 30:
            return 1.0
        if x < -30:
            return 0.0
        return 1.0 / (1.0 + math.exp(-x))


@dataclass
class UnitDiskModel:
    """Binary connectivity: PRR 1 inside ``radius_m``, 0 outside.

    Deliberately unrealistic; used by tests that need deterministic
    topologies, and as the "clean RF" baseline in ablations.
    """

    radius_m: float = 30.0
    tx_power_dbm: float = 0.0

    def rssi_dbm(self, sender: Position, receiver: Position, tx_power_dbm: float) -> float:
        if distance(sender, receiver) <= self.radius_m:
            return -50.0  # comfortably above any sensitivity threshold
        return -200.0

    def reception_probability(self, rssi_dbm: float) -> float:
        return 1.0 if rssi_dbm > -100.0 else 0.0
