"""Link-quality models mapping geometry to packet reception probability.

The reproduction's claims (latency per hop, funnel energy drain,
coexistence collapse) are protocol-level, so the physical layer only
needs a credible mapping from distance to packet reception ratio (PRR).
Two models are provided:

- :class:`LogDistanceModel` — log-distance path loss with per-link
  log-normal shadowing and a logistic SNR→PRR curve.  This yields the
  characteristic *transitional region* of real low-power links (Zuniga &
  Krishnamachari), which matters for routing-protocol realism.
- :class:`UnitDiskModel` — idealized binary connectivity for unit tests
  and debugging, where stochastic links would obscure the logic under
  test.

City-scale contract
-------------------
The spatial grid index in :class:`~repro.radio.medium.Medium` relies on
three properties a model may declare *on its own class* (an inherited
definition does not count — a subclass that overrides :meth:`rssi_dbm`
with new semantics silently opts back out of indexing rather than
silently corrupting it):

- ``max_audible_range_m(tx_power_dbm, threshold_dbm)`` — a hard
  geometric bound: no receiver farther away can ever hear the sender at
  or above the threshold.  For :class:`LogDistanceModel` this is exact
  because shadowing draws are clamped to
  ``±SHADOWING_CLAMP_SIGMA * sigma``.
- ``rssi_dbm_batch`` / ``reception_probability_batch`` — vectorized
  evaluation that returns **bit-identical** values to the scalar
  methods for every element.  To make that guarantee, the scalar
  methods route their transcendental math through numpy too (numpy's
  SIMD ``log10``/``exp`` are not bitwise-equal to libm's, but they are
  equal to themselves at every array size).  When numpy is absent both
  paths fall back to ``math`` and remain mutually consistent.

Shadowing is derived per link from a stable hash of
``(model seed, link key)`` — never from a sequentially-consumed RNG —
so the value of a link does not depend on the *order* in which links
are first evaluated.  A spatially-indexed medium evaluates far fewer
(and differently-ordered) links than a brute-force one; order-free
draws are what make the two produce byte-identical traces.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

try:  # numpy is the expected fast path; everything degrades without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on bare hosts
    _np = None

Position = Tuple[float, float]

#: Shadowing draws are clamped to this many standard deviations.  The
#: clamp is what turns "log-normal shadowing" into a *bounded* audible
#: range, which the medium's grid index needs to be exact; at 4 sigma
#: the truncation affects ~6e-5 of links.
SHADOWING_CLAMP_SIGMA = 4.0

#: Below this many receivers a python loop beats numpy array setup.
_BATCH_MIN = 8


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two planar positions in meters."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _link_distance(a: Position, b: Position) -> float:
    """Distance as ``sqrt(dx*dx + dy*dy)``.

    Used by the models instead of :func:`distance`: ``sqrt``, ``*`` and
    ``+`` are exactly-rounded IEEE operations, so numpy's vectorized
    form produces bit-identical values — ``math.hypot`` does not.
    """
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return math.sqrt(dx * dx + dy * dy)


class LinkQualityModel(Protocol):
    """Interface the medium uses to evaluate links."""

    def rssi_dbm(self, sender: Position, receiver: Position, tx_power_dbm: float) -> float:
        """Received signal strength for a transmission."""
        ...

    def reception_probability(self, rssi_dbm: float) -> float:
        """PRR for a frame arriving at the given signal strength."""
        ...


@dataclass
class LogDistanceModel:
    """Log-distance path loss + shadowing + logistic PRR curve.

    Parameters
    ----------
    path_loss_exponent:
        Environment exponent; 2.0 free space, 3.0–4.0 indoor/industrial.
    reference_loss_db:
        Path loss at the 1 m reference distance.
    shadowing_sigma_db:
        Standard deviation of per-link log-normal shadowing.  Shadowing
        is derived once per (sender, receiver) pair from a stable hash
        of the model seed and the link key — order-free and cached —
        and clamped to ``±SHADOWING_CLAMP_SIGMA`` sigmas so audibility
        has a hard geometric bound (see module docstring).
    sensitivity_dbm:
        RSSI at which PRR is 50%.
    transition_width_db:
        Width of the logistic transitional region (dB per PRR decade).
    """

    path_loss_exponent: float = 3.0
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 4.0
    sensitivity_dbm: float = -90.0
    transition_width_db: float = 2.5
    seed: int = 0

    def __post_init__(self) -> None:
        self._shadowing: Dict[Tuple[Position, Position], float] = {}

    def _link_shadowing_db(self, a: Position, b: Position) -> float:
        key = (a, b) if a <= b else (b, a)  # symmetric links
        value = self._shadowing.get(key)
        if value is None:
            # Numeric hashing is deterministic across processes (only
            # str/bytes are salted), so parallel trial workers agree.
            draw = random.Random(hash((self.seed, key))).gauss(
                0.0, self.shadowing_sigma_db)
            clamp = SHADOWING_CLAMP_SIGMA * self.shadowing_sigma_db
            value = max(-clamp, min(clamp, draw))
            self._shadowing[key] = value
        return value

    def rssi_dbm(self, sender: Position, receiver: Position, tx_power_dbm: float) -> float:
        d = max(_link_distance(sender, receiver), 1.0)
        log_d = float(_np.log10(d)) if _np is not None else math.log10(d)
        path_loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * log_d
        return tx_power_dbm - path_loss + self._link_shadowing_db(sender, receiver)

    def rssi_dbm_batch(self, sender: Position,
                       receivers: Sequence[Position],
                       tx_power_dbm: float) -> List[float]:
        """Vectorized :meth:`rssi_dbm`; bit-identical to the scalar path."""
        if _np is None or len(receivers) < _BATCH_MIN:
            return [self.rssi_dbm(sender, r, tx_power_dbm) for r in receivers]
        arr = _np.asarray(receivers, dtype=float)
        dx = arr[:, 0] - sender[0]
        dy = arr[:, 1] - sender[1]
        d = _np.maximum(_np.sqrt(dx * dx + dy * dy), 1.0)
        path_loss = (self.reference_loss_db
                     + 10.0 * self.path_loss_exponent * _np.log10(d))
        shadow = _np.fromiter(
            (self._link_shadowing_db(sender, r) for r in receivers),
            dtype=float, count=len(receivers))
        return ((tx_power_dbm - path_loss) + shadow).tolist()

    def reception_probability(self, rssi_dbm: float) -> float:
        x = (rssi_dbm - self.sensitivity_dbm) / self.transition_width_db
        # Clamp to avoid math range errors on extreme links.
        if x > 30:
            return 1.0
        if x < -30:
            return 0.0
        exp = float(_np.exp(-x)) if _np is not None else math.exp(-x)
        return 1.0 / (1.0 + exp)

    def reception_probability_batch(self, rssis: Sequence[float]) -> List[float]:
        """Vectorized :meth:`reception_probability`; bit-identical."""
        if _np is None or len(rssis) < _BATCH_MIN:
            return [self.reception_probability(r) for r in rssis]
        x = (_np.asarray(rssis, dtype=float) - self.sensitivity_dbm) \
            / self.transition_width_db
        prr = 1.0 / (1.0 + _np.exp(-_np.clip(x, -30.0, 30.0)))
        prr = _np.where(x > 30.0, 1.0, _np.where(x < -30.0, 0.0, prr))
        return prr.tolist()

    def max_audible_range_m(self, tx_power_dbm: float,
                            threshold_dbm: float) -> Optional[float]:
        """Distance beyond which no link can reach ``threshold_dbm``.

        Exact because shadowing is clamped: the most favorable link
        gains at most ``SHADOWING_CLAMP_SIGMA * sigma`` dB.
        """
        max_path_loss = (tx_power_dbm - threshold_dbm
                         + SHADOWING_CLAMP_SIGMA * self.shadowing_sigma_db)
        if max_path_loss <= self.reference_loss_db:
            return 1.0
        d = 10.0 ** ((max_path_loss - self.reference_loss_db)
                     / (10.0 * self.path_loss_exponent))
        return max(d, 1.0)


@dataclass
class UnitDiskModel:
    """Binary connectivity: PRR 1 inside ``radius_m``, 0 outside.

    Deliberately unrealistic; used by tests that need deterministic
    topologies, and as the "clean RF" baseline in ablations.  The
    in/out decision compares *squared* distances — exact IEEE
    arithmetic, so the scalar and vectorized paths agree bit-for-bit.
    """

    radius_m: float = 30.0
    tx_power_dbm: float = 0.0

    def rssi_dbm(self, sender: Position, receiver: Position, tx_power_dbm: float) -> float:
        dx = sender[0] - receiver[0]
        dy = sender[1] - receiver[1]
        if dx * dx + dy * dy <= self.radius_m * self.radius_m:
            return -50.0  # comfortably above any sensitivity threshold
        return -200.0

    def rssi_dbm_batch(self, sender: Position,
                       receivers: Sequence[Position],
                       tx_power_dbm: float) -> List[float]:
        if _np is None or len(receivers) < _BATCH_MIN:
            return [self.rssi_dbm(sender, r, tx_power_dbm) for r in receivers]
        arr = _np.asarray(receivers, dtype=float)
        dx = arr[:, 0] - sender[0]
        dy = arr[:, 1] - sender[1]
        inside = (dx * dx + dy * dy) <= self.radius_m * self.radius_m
        return _np.where(inside, -50.0, -200.0).tolist()

    def reception_probability(self, rssi_dbm: float) -> float:
        return 1.0 if rssi_dbm > -100.0 else 0.0

    def reception_probability_batch(self, rssis: Sequence[float]) -> List[float]:
        if _np is None or len(rssis) < _BATCH_MIN:
            return [self.reception_probability(r) for r in rssis]
        return _np.where(_np.asarray(rssis, dtype=float) > -100.0,
                         1.0, 0.0).tolist()

    def max_audible_range_m(self, tx_power_dbm: float,
                            threshold_dbm: float) -> Optional[float]:
        return self.radius_m
