"""Low-power wireless radio substrate.

Models the physical layer that the paper's sensing-and-actuation layer
lives on: log-distance path-loss propagation with per-link shadowing
(:mod:`repro.radio.propagation`), a shared broadcast medium with
collision and capture semantics (:mod:`repro.radio.medium`), the 2.4 GHz
channel plan shared by 802.15.4 and Wi-Fi (:mod:`repro.radio.channels`),
and synthetic interferer processes for the administrative-scalability
coexistence experiments (:mod:`repro.radio.interference`).
"""

from repro.radio.channels import (
    IEEE802154_CHANNELS,
    WIFI_CHANNELS,
    ieee802154_channels_hit_by_wifi,
    wifi_overlaps_802154,
)
from repro.radio.medium import Frame, Medium, Radio, RadioState
from repro.radio.propagation import LinkQualityModel, LogDistanceModel, UnitDiskModel
from repro.radio.interference import InterfererConfig, WifiInterferer

__all__ = [
    "Frame",
    "IEEE802154_CHANNELS",
    "InterfererConfig",
    "LinkQualityModel",
    "LogDistanceModel",
    "Medium",
    "Radio",
    "RadioState",
    "UnitDiskModel",
    "WIFI_CHANNELS",
    "WifiInterferer",
    "ieee802154_channels_hit_by_wifi",
    "wifi_overlaps_802154",
]
