"""Synthetic cross-technology interferers.

The paper's administrative-scalability discussion (§IV-C, refs [35],
[36]) is about co-located systems — run by different entities — sharing
the 2.4 GHz band.  Real coexistence studies inject Wi-Fi and BLE traffic
next to an 802.15.4 testbed; we substitute interferer processes that put
wide-band frames on the medium.  Those frames are never received by
802.15.4 radios, but they raise CCA and collide with overlapping
transmissions, which is exactly the mechanism behind the measured PRR
collapse in the cited studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.radio.channels import ieee802154_channels_hit_by_wifi
from repro.radio.medium import Frame, Medium, Radio, RadioState
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class InterfererConfig:
    """Traffic shape of a Wi-Fi interferer.

    ``duty_cycle`` is the long-run fraction of airtime occupied;
    ``burst_airtime_s`` is the length of each busy burst (a frame or
    aggregate).  Gaps between bursts are exponential, giving Poisson
    burst arrivals at the rate implied by the duty cycle.
    """

    wifi_channel: int = 6
    duty_cycle: float = 0.10
    burst_airtime_s: float = 0.002
    tx_power_dbm: float = 15.0

    def mean_gap_s(self) -> float:
        """Mean idle gap between bursts implied by the duty cycle."""
        if not 0.0 < self.duty_cycle < 1.0:
            raise ValueError("duty_cycle must be in (0, 1)")
        return self.burst_airtime_s * (1.0 - self.duty_cycle) / self.duty_cycle


class WifiInterferer:
    """A Wi-Fi access point + stations, abstracted to a busy-burst source."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: tuple,
        config: Optional[InterfererConfig] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.config = config if config is not None else InterfererConfig()
        self.radio = Radio(
            medium,
            node_id,
            position,
            tx_power_dbm=self.config.tx_power_dbm,
            channel=0,  # not an 802.15.4 channel; this radio only jams
        )
        self.jam_channels = ieee802154_channels_hit_by_wifi(self.config.wifi_channel)
        self._rng = sim.substream(f"interferer.{node_id}")
        self._running = False
        self.bursts_sent = 0

    def start(self) -> None:
        """Begin emitting busy bursts."""
        if self._running:
            return
        self._running = True
        self.radio.set_listening()
        self.sim.schedule(self._rng.expovariate(1.0 / self.config.mean_gap_s()),
                          self._burst)

    def stop(self) -> None:
        """Cease interfering after the current burst."""
        self._running = False

    def _burst(self) -> None:
        if not self._running:
            return
        airtime = self.config.burst_airtime_s
        size_bytes = max(1, int(airtime * 250_000 / 8))
        frame = Frame(
            payload=None,
            size_bytes=size_bytes,
            channel=0,
            sender=self.radio.node_id,
            jam_channels=self.jam_channels,
        )
        if self.radio.state is not RadioState.TX:
            self.medium.transmit(self.radio, frame)
            self.bursts_sent += 1
        gap = self._rng.expovariate(1.0 / self.config.mean_gap_s())
        self.sim.schedule(airtime + gap, self._burst)
