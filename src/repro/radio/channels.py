"""The 2.4 GHz ISM channel plan.

IEEE 802.15.4 defines sixteen 2 MHz channels (11–26) spaced 5 MHz apart
starting at 2405 MHz.  Wi-Fi (802.11b/g/n) channels are 22 MHz wide,
spaced 5 MHz apart starting at 2412 MHz; each Wi-Fi channel therefore
blankets roughly four 802.15.4 channels.  The administrative-scalability
experiments (paper §IV-C, refs [35], [36]) need exactly this overlap
structure: co-located tenants contend for the same spectrum.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

#: Valid IEEE 802.15.4 2.4 GHz channel numbers.
IEEE802154_CHANNELS: Tuple[int, ...] = tuple(range(11, 27))

#: Valid Wi-Fi 2.4 GHz channel numbers (1–13; 14 is Japan-only, omitted).
WIFI_CHANNELS: Tuple[int, ...] = tuple(range(1, 14))

#: The three canonical non-overlapping Wi-Fi channels.
WIFI_NON_OVERLAPPING: Tuple[int, ...] = (1, 6, 11)


def ieee802154_center_mhz(channel: int) -> float:
    """Center frequency of an 802.15.4 channel in MHz."""
    if channel not in IEEE802154_CHANNELS:
        raise ValueError(f"invalid 802.15.4 channel {channel}")
    return 2405.0 + 5.0 * (channel - 11)


def wifi_center_mhz(channel: int) -> float:
    """Center frequency of a 2.4 GHz Wi-Fi channel in MHz."""
    if channel not in WIFI_CHANNELS:
        raise ValueError(f"invalid Wi-Fi channel {channel}")
    return 2412.0 + 5.0 * (channel - 1)


def wifi_overlaps_802154(wifi_channel: int, ieee_channel: int) -> bool:
    """True when the Wi-Fi channel's 22 MHz mask covers the 2 MHz
    802.15.4 channel."""
    wifi_center = wifi_center_mhz(wifi_channel)
    ieee_center = ieee802154_center_mhz(ieee_channel)
    # Half-widths: Wi-Fi 11 MHz, 802.15.4 1 MHz.
    return abs(wifi_center - ieee_center) < 11.0 + 1.0


def ieee802154_channels_hit_by_wifi(wifi_channel: int) -> FrozenSet[int]:
    """The set of 802.15.4 channels degraded by a given Wi-Fi channel."""
    return frozenset(
        ch for ch in IEEE802154_CHANNELS if wifi_overlaps_802154(wifi_channel, ch)
    )


def clear_802154_channels(*wifi_channels: int) -> FrozenSet[int]:
    """802.15.4 channels untouched by all the given Wi-Fi channels.

    With Wi-Fi 1/6/11 active, this returns the classic survivor set
    {15, 20, 25, 26} used in coexistence channel planning.
    """
    hit: set = set()
    for wifi_channel in wifi_channels:
        hit |= ieee802154_channels_hit_by_wifi(wifi_channel)
    return frozenset(ch for ch in IEEE802154_CHANNELS if ch not in hit)
