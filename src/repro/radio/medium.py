"""The shared wireless broadcast medium.

All radios attached to a :class:`Medium` share spectrum.  A transmission
is delivered to a receiver iff, for the whole frame airtime, the
receiver was listening on the frame's channel, no colliding transmission
was audible above the capture margin, and a Bernoulli draw against the
link's PRR succeeds.  Carrier sense (CCA) consults the same picture, so
MAC protocols see a consistent channel.

Radios also account the time they spend in each state; the device energy
model (:mod:`repro.devices.energy`) converts those residencies into
charge drawn, which drives the funnel-effect and lifetime experiments.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.radio.propagation import LinkQualityModel, Position
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog

#: 802.15.4 PHY: 250 kbit/s.
BITRATE_BPS = 250_000
#: Preamble + SFD + PHY header + MAC footer, charged to every frame.
PHY_OVERHEAD_BYTES = 11
#: RSSI below this is inaudible: neither receivable nor interfering.
AUDIBLE_THRESHOLD_DBM = -100.0
#: Clear-channel-assessment threshold.
CCA_THRESHOLD_DBM = -85.0
#: A frame survives a collision if it is this much stronger than the
#: strongest interferer (capture effect).
CAPTURE_MARGIN_DB = 6.0


class RadioState(enum.Enum):
    """Operating state of a radio transceiver."""

    SLEEP = "sleep"
    LISTEN = "listen"
    TX = "tx"


@dataclass
class Frame:
    """A physical-layer frame.

    ``channel`` is the 802.15.4 channel the frame is sent on; wide-band
    interferers (Wi-Fi) instead set ``jam_channels`` to the set of
    802.15.4 channels they blanket — such frames are never *received*,
    only interfere.
    """

    payload: Any
    size_bytes: int
    channel: int
    sender: int
    jam_channels: FrozenSet[int] = frozenset()

    @property
    def airtime(self) -> float:
        """Frame airtime in seconds at the 802.15.4 PHY rate."""
        return (PHY_OVERHEAD_BYTES + self.size_bytes) * 8 / BITRATE_BPS

    def interferes_with(self, channel: int) -> bool:
        """True if the frame occupies ``channel`` (directly or by jamming)."""
        return channel == self.channel or channel in self.jam_channels


@dataclass
class _Transmission:
    radio: "Radio"
    frame: Frame
    start: float
    end: float
    #: ``radio.airtime`` span context (repro.obs); None when untraced.
    span: Any = None
    #: Link-layer addressee of a traced frame (duck-typed from the
    #: payload's ``dst``); per-receiver outcome events are recorded
    #: only at this node, so overhearing neighbors don't flood the tree.
    addressee: Any = None


class Radio:
    """One node's transceiver, attached to a :class:`Medium`.

    The MAC layer drives the state machine via :meth:`set_listening` /
    :meth:`sleep` / :meth:`transmit` and receives frames through the
    ``on_receive(frame, rssi_dbm)`` callback.
    """

    def __init__(
        self,
        medium: "Medium",
        node_id: int,
        position: Position,
        tx_power_dbm: float = 0.0,
        channel: int = 26,
    ) -> None:
        self.medium = medium
        self.node_id = node_id
        self.position = position
        self.tx_power_dbm = tx_power_dbm
        self.channel = channel
        self.on_receive: Optional[Callable[[Frame, float], None]] = None
        self.enabled = True
        self.state = RadioState.SLEEP
        self.state_seconds: Dict[RadioState, float] = {s: 0.0 for s in RadioState}
        self._state_since = medium.sim.now
        self._listen_since = float("inf")
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        medium._attach(self)

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _set_state(self, state: RadioState) -> None:
        now = self.medium.sim.now
        self.state_seconds[self.state] += now - self._state_since
        self._state_since = now
        if state is RadioState.LISTEN and self.state is not RadioState.LISTEN:
            self._listen_since = now
        if state is not RadioState.LISTEN:
            self._listen_since = float("inf")
        self.state = state

    def set_listening(self) -> None:
        """Enter receive mode (idle listening draws real current).

        A no-op while transmitting: the radio returns to LISTEN when the
        in-flight frame ends, so the request is already satisfied.
        """
        if self.state is RadioState.TX:
            return
        if self.state is not RadioState.LISTEN:
            self._set_state(RadioState.LISTEN)

    def sleep(self) -> None:
        """Power the transceiver down."""
        if self.state is RadioState.TX:
            raise RuntimeError(f"radio {self.node_id} busy transmitting")
        if self.state is not RadioState.SLEEP:
            self._set_state(RadioState.SLEEP)

    def flush_state_time(self) -> Dict[RadioState, float]:
        """Account time up to now and return the per-state residencies."""
        self._set_state(self.state)
        return dict(self.state_seconds)

    # ------------------------------------------------------------------
    # channel access
    # ------------------------------------------------------------------
    def carrier_busy(self) -> bool:
        """Clear channel assessment on this radio's channel."""
        return self.medium.carrier_busy(self)

    def transmit(
        self,
        payload: Any,
        size_bytes: int,
        done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Send a frame; returns its airtime.

        The radio enters TX for the airtime and then returns to LISTEN
        (the MAC decides whether to sleep afterwards).  ``done`` fires
        when the transmission completes.
        """
        frame = Frame(
            payload=payload,
            size_bytes=size_bytes,
            channel=self.channel,
            sender=self.node_id,
        )
        return self.medium.transmit(self, frame, done)


class Medium:
    """The shared spectrum connecting all attached radios.

    Parameters
    ----------
    sim:
        The simulation kernel (time + randomness source).
    model:
        Link-quality model mapping geometry to RSSI and PRR.
    trace:
        Optional trace log; the medium emits ``radio.tx``, ``radio.rx``,
        ``radio.collision``, and ``radio.miss`` records.
    """

    def __init__(
        self,
        sim: Simulator,
        model: LinkQualityModel,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.model = model
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.radios: Dict[int, Radio] = {}
        #: Min-heap of ``(end, seq, transmission)``: recent and in-flight
        #: transmissions, pruned lazily (see :meth:`_prune_active`).
        self._active: List[Tuple[float, int, _Transmission]] = []
        self._active_seq = 0
        self._max_airtime = 0.0
        self._rssi_cache: Dict[Tuple[int, int], float] = {}
        self._audible_cache: Dict[int, List[Tuple[Radio, float]]] = {}
        self._rng = sim.substream("radio.medium")
        #: Optional fault hook: ``(sender_id, receiver_id) -> True`` cuts
        #: the link (partition experiments).  Set via set_link_filter.
        self._link_filter: Optional[Callable[[int, int], bool]] = None

    def set_link_filter(self, blocked: Optional[Callable[[int, int], bool]]) -> None:
        """Install (or clear, with None) a link-blocking predicate.

        Blocked links carry nothing: no frames, no carrier, no
        interference — the physical-cut abstraction the partition
        experiments need.
        """
        self._link_filter = blocked
        self._audible_cache.clear()

    def _blocked(self, sender_id: int, receiver_id: int) -> bool:
        return self._link_filter is not None and self._link_filter(
            sender_id, receiver_id
        )

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _attach(self, radio: Radio) -> None:
        if radio.node_id in self.radios:
            raise ValueError(f"duplicate radio id {radio.node_id}")
        self.radios[radio.node_id] = radio
        self._audible_cache.clear()

    def rssi_between(self, sender: Radio, receiver: Radio) -> float:
        """Cached RSSI of ``sender`` as heard by ``receiver``."""
        key = (sender.node_id, receiver.node_id)
        value = self._rssi_cache.get(key)
        if value is None:
            value = self.model.rssi_dbm(
                sender.position, receiver.position, sender.tx_power_dbm
            )
            self._rssi_cache[key] = value
        return value

    def audible_from(self, sender: Radio) -> List[Tuple[Radio, float]]:
        """Radios that can hear ``sender`` at all, with their RSSI.

        Sorted by ``(rssi descending, node_id)``: delivery iteration
        order is a property of the radio environment, not of dict
        insertion order, so adding radios in a different order cannot
        perturb a seeded run.
        """
        cached = self._audible_cache.get(sender.node_id)
        if cached is None:
            cached = []
            for radio in self.radios.values():
                if radio is sender:
                    continue
                if self._blocked(sender.node_id, radio.node_id):
                    continue
                rssi = self.rssi_between(sender, radio)
                if rssi >= AUDIBLE_THRESHOLD_DBM:
                    cached.append((radio, rssi))
            cached.sort(key=lambda pair: (-pair[1], pair[0].node_id))
            self._audible_cache[sender.node_id] = cached
        return cached

    def link_prr(self, sender_id: int, receiver_id: int) -> float:
        """Packet reception ratio of the directed link, ignoring collisions.

        Unknown endpoints report 0.0: a peer without a radio on this
        medium (e.g. one only ever heard about in a forged or stale
        control message) is by definition unreachable.
        """
        sender = self.radios.get(sender_id)
        receiver = self.radios.get(receiver_id)
        if sender is None or receiver is None:
            return 0.0
        return self.model.reception_probability(self.rssi_between(sender, receiver))

    # ------------------------------------------------------------------
    # channel activity
    # ------------------------------------------------------------------
    def _prune_active(self, now: float) -> None:
        """Lazily drop transmissions nothing can still observe.

        A finished transmission must outlive its end: an in-flight frame
        that overlapped it still needs it for collision arbitration at
        delivery time.  Any frame in flight at ``now`` started no
        earlier than ``now - max_airtime``, so entries ending before
        that horizon are unobservable and pop off the end-ordered heap
        in O(log n) — overlap queries then never re-filter them.
        """
        horizon = now - self._max_airtime
        active = self._active
        while active and active[0][0] <= horizon:
            heapq.heappop(active)

    def carrier_busy(self, radio: Radio) -> bool:
        """True if any audible transmission occupies ``radio``'s channel."""
        now = self.sim.now
        for _end, _seq, tx in self._active:
            if tx.end <= now or tx.radio is radio:
                continue
            if not tx.frame.interferes_with(radio.channel):
                continue
            if self._blocked(tx.radio.node_id, radio.node_id):
                continue
            if self.rssi_between(tx.radio, radio) >= CCA_THRESHOLD_DBM:
                return True
        return False

    def transmit(
        self,
        radio: Radio,
        frame: Frame,
        done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Put ``frame`` on the air from ``radio``."""
        if not radio.enabled:
            raise RuntimeError(f"radio {radio.node_id} is disabled (node failed)")
        if radio.state is RadioState.TX:
            raise RuntimeError(f"radio {radio.node_id} already transmitting")
        now = self.sim.now
        airtime = frame.airtime
        if airtime > self._max_airtime:
            self._max_airtime = airtime
        self._prune_active(now)
        tx = _Transmission(radio=radio, frame=frame, start=now, end=now + airtime)
        obs = self.trace.obs
        if obs is not None and obs.spans is not None:
            parent = getattr(frame.payload, "trace_ctx", None)
            if parent is not None:
                tx.span = obs.spans.start(parent, "radio.airtime",
                                          node=radio.node_id, t=now,
                                          size=frame.size_bytes)
                tx.addressee = getattr(frame.payload, "dst", None)
        self._active_seq += 1
        heapq.heappush(self._active, (tx.end, self._active_seq, tx))
        radio._set_state(RadioState.TX)
        radio.frames_sent += 1
        radio.bytes_sent += frame.size_bytes
        self.trace.emit(now, "radio.tx", node=radio.node_id, size=frame.size_bytes,
                        channel=frame.channel)

        receivers = [] if frame.jam_channels else list(self.audible_from(radio))

        def finish() -> None:
            radio._set_state(RadioState.LISTEN)
            for receiver, rssi in receivers:
                self._try_deliver(tx, receiver, rssi)
            if tx.span is not None:
                self.trace.obs.spans.finish(tx.span, self.sim.now)
            if done is not None:
                done()

        self.sim.schedule(airtime, finish)
        return airtime

    def _try_deliver(self, tx: _Transmission, receiver: Radio, rssi: float) -> None:
        frame = tx.frame
        if not receiver.enabled:
            return
        # The span check comes first: tx.span is None in every untraced
        # run, so traced delivery outcomes cost nothing otherwise.  Only
        # the addressee's outcome explains the hop; overheard copies at
        # third parties are not part of the packet's lifecycle.
        spans = None
        if tx.span is not None and (tx.addressee is None
                                    or tx.addressee == receiver.node_id):
            spans = self.trace.obs.spans
        if receiver.channel != frame.channel:
            return
        if receiver.state is not RadioState.LISTEN or receiver._listen_since > tx.start:
            # Slept through (part of) the frame — the duty-cycling cost.
            self.trace.emit(self.sim.now, "radio.miss", node=receiver.node_id,
                            sender=frame.sender)
            if spans is not None:
                spans.event(tx.span, "radio.miss", node=receiver.node_id,
                            t=self.sim.now)
            return
        interferer_rssi = self._strongest_interferer(tx, receiver)
        if interferer_rssi is not None and rssi - interferer_rssi < CAPTURE_MARGIN_DB:
            self.trace.emit(self.sim.now, "radio.collision", node=receiver.node_id,
                            sender=frame.sender)
            if spans is not None:
                spans.event(tx.span, "radio.collision", node=receiver.node_id,
                            t=self.sim.now)
            return
        if self._rng.random() > self.model.reception_probability(rssi):
            self.trace.emit(self.sim.now, "radio.drop", node=receiver.node_id,
                            sender=frame.sender)
            if spans is not None:
                spans.event(tx.span, "radio.drop", node=receiver.node_id,
                            t=self.sim.now)
            return
        receiver.frames_received += 1
        self.trace.emit(self.sim.now, "radio.rx", node=receiver.node_id,
                        sender=frame.sender, size=frame.size_bytes)
        if spans is not None:
            spans.event(tx.span, "radio.rx", node=receiver.node_id,
                        t=self.sim.now, rssi=round(rssi, 1))
        if receiver.on_receive is not None:
            receiver.on_receive(frame, rssi)

    def _strongest_interferer(
        self, tx: _Transmission, receiver: Radio
    ) -> Optional[float]:
        strongest: Optional[float] = None
        for _end, _seq, other in self._active:
            if other is tx or other.radio is receiver:
                continue
            if other.end <= tx.start or other.start >= tx.end:
                continue
            if not other.frame.interferes_with(tx.frame.channel):
                continue
            if self._blocked(other.radio.node_id, receiver.node_id):
                continue
            rssi = self.rssi_between(other.radio, receiver)
            if rssi < AUDIBLE_THRESHOLD_DBM:
                continue
            if strongest is None or rssi > strongest:
                strongest = rssi
        return strongest
