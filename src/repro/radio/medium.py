"""The shared wireless broadcast medium.

All radios attached to a :class:`Medium` share spectrum.  A transmission
is delivered to a receiver iff, for the whole frame airtime, the
receiver was listening on the frame's channel, no colliding transmission
was audible above the capture margin, and a Bernoulli draw against the
link's PRR succeeds.  Carrier sense (CCA) consults the same picture, so
MAC protocols see a consistent channel.

Radios also account the time they spend in each state; the device energy
model (:mod:`repro.devices.energy`) converts those residencies into
charge drawn, which drives the funnel-effect and lifetime experiments.

Scaling: the spatial grid index
-------------------------------
With tens of thousands of radios the hot queries — who can hear a
sender, is the carrier busy, which overlapping frame is strongest —
cannot afford to visit every radio.  When the link model publishes a
hard audible-range bound (``max_audible_range_m`` on its *own* class,
see :mod:`repro.radio.propagation`), the medium buckets radios into
square cells at least that large, so every query resolves against the
3×3 cell neighborhood instead of the full population: any radio that
could possibly be heard is in an adjacent cell by construction.

The index is an *accelerator, not an approximation*: the candidate set
is a superset of the audible set, every candidate is then evaluated with
exactly the same model math, results are sorted by the same
``(rssi desc, node_id)`` key, and the PRR draw order is unchanged — so
an indexed medium reproduces the brute-force medium's event trace
byte-for-byte (``make check-invariants`` pins this).

Cache invalidation rules (the part that must not rot):

- ``Radio.position`` / ``Radio.tx_power_dbm`` are properties; every
  write bumps ``Radio.version`` and notifies the medium.
- RSSI values are cached per directed link *stamped with both
  endpoints' versions*; a stale stamp misses, so moves and power
  changes can never serve old signal strengths.  The cache is cleared
  wholesale when it exceeds ``rssi_cache_max`` entries.
- Audible neighborhoods are cached per sender with the grid cells they
  were computed from and those cells' versions.  Attaching or moving a
  radio bumps only the affected cells, so distant neighborhoods
  revalidate with an integer compare instead of rebuilding.
- ``set_link_filter`` and model replacement invalidate everything.
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.radio.propagation import LinkQualityModel, Position
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog

#: 802.15.4 PHY: 250 kbit/s.
BITRATE_BPS = 250_000
#: Preamble + SFD + PHY header + MAC footer, charged to every frame.
PHY_OVERHEAD_BYTES = 11
#: RSSI below this is inaudible: neither receivable nor interfering.
AUDIBLE_THRESHOLD_DBM = -100.0
#: Clear-channel-assessment threshold.
CCA_THRESHOLD_DBM = -85.0
#: A frame survives a collision if it is this much stronger than the
#: strongest interferer (capture effect).
CAPTURE_MARGIN_DB = 6.0

#: Grid cells are inflated this much over the model's range bound so a
#: borderline-audible link can never straddle more than one cell edge.
_CELL_MARGIN = 1.01
#: With this few active transmissions, scanning the global heap is
#: cheaper than assembling the 3×3 cell view (and equally exact).
_SMALL_ACTIVE = 12
#: Directed-link RSSI cache entries before a wholesale clear.
DEFAULT_RSSI_CACHE_MAX = 262_144


class RadioState(enum.Enum):
    """Operating state of a radio transceiver."""

    SLEEP = "sleep"
    LISTEN = "listen"
    TX = "tx"


@dataclass
class Frame:
    """A physical-layer frame.

    ``channel`` is the 802.15.4 channel the frame is sent on; wide-band
    interferers (Wi-Fi) instead set ``jam_channels`` to the set of
    802.15.4 channels they blanket — such frames are never *received*,
    only interfere.
    """

    payload: Any
    size_bytes: int
    channel: int
    sender: int
    jam_channels: FrozenSet[int] = frozenset()

    @property
    def airtime(self) -> float:
        """Frame airtime in seconds at the 802.15.4 PHY rate."""
        return (PHY_OVERHEAD_BYTES + self.size_bytes) * 8 / BITRATE_BPS

    def interferes_with(self, channel: int) -> bool:
        """True if the frame occupies ``channel`` (directly or by jamming)."""
        return channel == self.channel or channel in self.jam_channels


@dataclass
class _Transmission:
    radio: "Radio"
    frame: Frame
    start: float
    end: float
    #: ``radio.airtime`` span context (repro.obs); None when untraced.
    span: Any = None
    #: Link-layer addressee of a traced frame (duck-typed from the
    #: payload's ``dst``); per-receiver outcome events are recorded
    #: only at this node, so overhearing neighbors don't flood the tree.
    addressee: Any = None


@dataclass
class _Neighborhood:
    """A sender's cached audible set, with everything needed to reuse it.

    ``pairs`` is the public ``audible_from`` value; ``prrs`` is the
    aligned per-receiver reception probability so delivery skips the
    per-frame logistic.  The version stamps implement the two-tier
    validation described in the module docstring: a matching
    ``world_version`` means *nothing anywhere* changed (one compare);
    otherwise the entry is still good if its sender, the link filter,
    and every grid cell it drew candidates from are unchanged.
    """

    pairs: List[Tuple["Radio", float]]
    prrs: List[float]
    world_version: int
    sender_version: int
    filter_version: int
    cells: Tuple[Tuple[int, int], ...]
    cell_versions: Tuple[int, ...]


class Radio:
    """One node's transceiver, attached to a :class:`Medium`.

    The MAC layer drives the state machine via :meth:`set_listening` /
    :meth:`sleep` / :meth:`transmit` and receives frames through the
    ``on_receive(frame, rssi_dbm)`` callback.
    """

    def __init__(
        self,
        medium: "Medium",
        node_id: int,
        position: Position,
        tx_power_dbm: float = 0.0,
        channel: int = 26,
    ) -> None:
        self.medium = medium
        self.node_id = node_id
        self._position = position
        self._tx_power_dbm = tx_power_dbm
        #: Bumped on every position/power write; caches stamp entries
        #: with it, so stale geometry can never be served (see Medium).
        self.version = 0
        self.channel = channel
        self.on_receive: Optional[Callable[[Frame, float], None]] = None
        self.enabled = True
        self.state = RadioState.SLEEP
        self.state_seconds: Dict[RadioState, float] = {s: 0.0 for s in RadioState}
        self._state_since = medium.sim.now
        self._listen_since = float("inf")
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        medium._attach(self)

    # ------------------------------------------------------------------
    # geometry / configuration (invalidation-tracked)
    # ------------------------------------------------------------------
    @property
    def position(self) -> Position:
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        old = self._position
        if value == old:
            return
        self._position = value
        self.version += 1
        self.medium._radio_changed(self, old_position=old)

    @property
    def tx_power_dbm(self) -> float:
        return self._tx_power_dbm

    @tx_power_dbm.setter
    def tx_power_dbm(self, value: float) -> None:
        if value == self._tx_power_dbm:
            return
        self._tx_power_dbm = value
        self.version += 1
        self.medium._radio_changed(self)

    def move_to(self, position: Position) -> None:
        """Relocate the radio (mobility / reconfiguration experiments)."""
        self.position = position

    def set_tx_power(self, dbm: float) -> None:
        """Change transmit power (topology-control experiments)."""
        self.tx_power_dbm = dbm

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _set_state(self, state: RadioState) -> None:
        now = self.medium.sim.now
        self.state_seconds[self.state] += now - self._state_since
        self._state_since = now
        if state is RadioState.LISTEN and self.state is not RadioState.LISTEN:
            self._listen_since = now
        if state is not RadioState.LISTEN:
            self._listen_since = float("inf")
        self.state = state

    def set_listening(self) -> None:
        """Enter receive mode (idle listening draws real current).

        A no-op while transmitting: the radio returns to LISTEN when the
        in-flight frame ends, so the request is already satisfied.
        """
        if self.state is RadioState.TX:
            return
        if self.state is not RadioState.LISTEN:
            self._set_state(RadioState.LISTEN)

    def sleep(self) -> None:
        """Power the transceiver down."""
        if self.state is RadioState.TX:
            raise RuntimeError(f"radio {self.node_id} busy transmitting")
        if self.state is not RadioState.SLEEP:
            self._set_state(RadioState.SLEEP)

    def flush_state_time(self) -> Dict[RadioState, float]:
        """Account time up to now and return the per-state residencies."""
        self._set_state(self.state)
        return dict(self.state_seconds)

    # ------------------------------------------------------------------
    # channel access
    # ------------------------------------------------------------------
    def carrier_busy(self) -> bool:
        """Clear channel assessment on this radio's channel."""
        return self.medium.carrier_busy(self)

    def transmit(
        self,
        payload: Any,
        size_bytes: int,
        done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Send a frame; returns its airtime.

        The radio enters TX for the airtime and then returns to LISTEN
        (the MAC decides whether to sleep afterwards).  ``done`` fires
        when the transmission completes.
        """
        frame = Frame(
            payload=payload,
            size_bytes=size_bytes,
            channel=self.channel,
            sender=self.node_id,
        )
        return self.medium.transmit(self, frame, done)


class Medium:
    """The shared spectrum connecting all attached radios.

    Parameters
    ----------
    sim:
        The simulation kernel (time + randomness source).
    model:
        Link-quality model mapping geometry to RSSI and PRR.
    trace:
        Optional trace log; the medium emits ``radio.tx``, ``radio.rx``,
        ``radio.collision``, and ``radio.miss`` records.
    spatial_index:
        Allow the grid index when the model supports it.  ``False``
        forces brute-force scans — the reference the identity tests and
        the scale benchmark compare against.
    rssi_cache_max:
        Directed-link RSSI cache entries before a wholesale clear.
    """

    def __init__(
        self,
        sim: Simulator,
        model: LinkQualityModel,
        trace: Optional[TraceLog] = None,
        spatial_index: bool = True,
        rssi_cache_max: int = DEFAULT_RSSI_CACHE_MAX,
    ) -> None:
        self.sim = sim
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.radios: Dict[int, Radio] = {}
        #: Min-heap of ``(end, seq, transmission)``: recent and in-flight
        #: transmissions, pruned lazily (see :meth:`_prune_active`).
        self._active: List[Tuple[float, int, _Transmission]] = []
        self._active_seq = 0
        self._max_airtime = 0.0
        self._rng = sim.substream("radio.medium")
        #: Optional fault hook: ``(sender_id, receiver_id) -> True`` cuts
        #: the link (partition experiments).  Set via set_link_filter.
        self._link_filter: Optional[Callable[[int, int], bool]] = None
        self._spatial_index = spatial_index
        self._rssi_cache_max = rssi_cache_max
        #: ``(sender_id, receiver_id) -> (rssi, sender.version, receiver.version)``
        self._rssi_cache: Dict[Tuple[int, int], Tuple[float, int, int]] = {}
        self._neighborhoods: Dict[int, _Neighborhood] = {}
        self._world_version = 0
        self._filter_version = 0
        #: ``cell -> {node_id: radio}``; None when indexing is off.
        self._grid: Optional[Dict[Tuple[int, int], Dict[int, Radio]]] = None
        self._cell_size = 0.0
        self._cell_versions: Dict[Tuple[int, int], int] = {}
        self._grid_max_tx = float("-inf")
        #: Per-cell mirrors of ``_active`` for O(near) CCA/interference.
        self._cell_active: Dict[Tuple[int, int], List[Tuple[float, int, _Transmission]]] = {}
        self._cell_active_count = 0
        self._bind_model(model)

    # ------------------------------------------------------------------
    # model binding and the spatial grid
    # ------------------------------------------------------------------
    def _bind_model(self, model: LinkQualityModel) -> None:
        """Adopt ``model``: detect index capabilities, reset all caches.

        Capabilities are read from the model's *own* class dict, never
        the MRO: a subclass that overrides ``rssi_dbm`` with different
        semantics must not inherit a range bound or batch path that no
        longer describes it — it silently falls back to brute force.
        """
        self.model = model
        self._bound_model = model
        own = type(model).__dict__
        self._model_range_fn = (
            model.max_audible_range_m if "max_audible_range_m" in own else None)
        self._model_rssi_batch = (
            model.rssi_dbm_batch if "rssi_dbm_batch" in own else None)
        self._model_prr_batch = (
            model.reception_probability_batch
            if "reception_probability_batch" in own else None)
        self._rssi_cache.clear()
        self._world_version += 1
        self._rebuild_grid()

    def _sync_model(self) -> None:
        if self.model is not self._bound_model:
            self._bind_model(self.model)

    def _rebuild_grid(self) -> None:
        """(Re)derive the cell size from the range bound and re-bucket.

        Also drops every cached neighborhood: cell versions restart, so
        old stamps must not be comparable against the new grid.
        """
        self._grid = None
        self._cell_versions = {}
        self._cell_active = {}
        self._cell_active_count = 0
        self._neighborhoods.clear()
        if not self._spatial_index or self._model_range_fn is None:
            return
        self._grid_max_tx = max(
            (r.tx_power_dbm for r in self.radios.values()), default=0.0)
        range_m = self._model_range_fn(self._grid_max_tx, AUDIBLE_THRESHOLD_DBM)
        if range_m is None or not range_m > 0 or math.isinf(range_m):
            return
        self._cell_size = max(range_m * _CELL_MARGIN, 1.0)
        grid: Dict[Tuple[int, int], Dict[int, Radio]] = {}
        for radio in self.radios.values():
            grid.setdefault(self._cell_of(radio.position), {})[radio.node_id] = radio
        self._grid = grid
        if self._active:
            self._rebuild_cell_active()

    def _cell_of(self, position: Position) -> Tuple[int, int]:
        size = self._cell_size
        return (int(position[0] // size), int(position[1] // size))

    def _bump_cell(self, cell: Tuple[int, int]) -> None:
        self._cell_versions[cell] = self._cell_versions.get(cell, 0) + 1

    def _ensure_grid_covers(self, tx_power_dbm: float) -> None:
        """Grow the grid when a power write exceeds its sizing basis."""
        if self._grid is None or tx_power_dbm <= self._grid_max_tx:
            return
        self._grid_max_tx = tx_power_dbm
        range_m = self._model_range_fn(tx_power_dbm, AUDIBLE_THRESHOLD_DBM)
        if range_m is None or not range_m > 0 or math.isinf(range_m):
            # Range became unbounded: indexing is no longer sound.
            self._grid = None
            self._cell_active = {}
            self._cell_active_count = 0
            self._neighborhoods.clear()
        elif range_m * _CELL_MARGIN > self._cell_size:
            self._rebuild_grid()

    def grid_info(self) -> Dict[str, Any]:
        """Introspection for benchmarks and tests: index shape and caches."""
        return {
            "spatial_index": self._grid is not None,
            "cell_size_m": self._cell_size if self._grid is not None else None,
            "cells": len(self._grid) if self._grid is not None else 0,
            "radios": len(self.radios),
            "rssi_cache": len(self._rssi_cache),
            "neighborhoods": len(self._neighborhoods),
        }

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def set_link_filter(self, blocked: Optional[Callable[[int, int], bool]]) -> None:
        """Install (or clear, with None) a link-blocking predicate.

        Blocked links carry nothing: no frames, no carrier, no
        interference — the physical-cut abstraction the partition
        experiments need.
        """
        self._link_filter = blocked
        self._filter_version += 1
        self._world_version += 1
        self._neighborhoods.clear()

    def _blocked(self, sender_id: int, receiver_id: int) -> bool:
        return self._link_filter is not None and self._link_filter(
            sender_id, receiver_id
        )

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _attach(self, radio: Radio) -> None:
        if radio.node_id in self.radios:
            raise ValueError(f"duplicate radio id {radio.node_id}")
        self.radios[radio.node_id] = radio
        self._world_version += 1
        self._ensure_grid_covers(radio.tx_power_dbm)
        if self._grid is not None:
            cell = self._cell_of(radio.position)
            self._grid.setdefault(cell, {})[radio.node_id] = radio
            self._bump_cell(cell)

    def _radio_changed(self, radio: Radio, old_position: Optional[Position] = None) -> None:
        """A position (``old_position`` given) or power write happened."""
        self._world_version += 1
        self._neighborhoods.pop(radio.node_id, None)
        if self._grid is None:
            return
        if old_position is None:
            self._ensure_grid_covers(radio.tx_power_dbm)
            return
        old_cell = self._cell_of(old_position)
        new_cell = self._cell_of(radio.position)
        if new_cell != old_cell:
            bucket = self._grid.get(old_cell)
            if bucket is not None:
                bucket.pop(radio.node_id, None)
                if not bucket:
                    del self._grid[old_cell]
            self._grid.setdefault(new_cell, {})[radio.node_id] = radio
            self._bump_cell(old_cell)
            if self._cell_active:
                # In-flight frames radiate from wherever the sender is
                # *now*; re-bucket them so nearby CCA still sees them.
                self._rebuild_cell_active()
        self._bump_cell(new_cell)

    def rssi_between(self, sender: Radio, receiver: Radio) -> float:
        """Cached RSSI of ``sender`` as heard by ``receiver``."""
        self._sync_model()
        key = (sender.node_id, receiver.node_id)
        entry = self._rssi_cache.get(key)
        if (entry is not None and entry[1] == sender.version
                and entry[2] == receiver.version):
            return entry[0]
        value = self.model.rssi_dbm(
            sender.position, receiver.position, sender.tx_power_dbm
        )
        cache = self._rssi_cache
        if len(cache) >= self._rssi_cache_max:
            cache.clear()
        cache[key] = (value, sender.version, receiver.version)
        return value

    def audible_from(self, sender: Radio) -> List[Tuple[Radio, float]]:
        """Radios that can hear ``sender`` at all, with their RSSI.

        Sorted by ``(rssi descending, node_id)``: delivery iteration
        order is a property of the radio environment, not of dict
        insertion order, so adding radios in a different order cannot
        perturb a seeded run.
        """
        self._sync_model()
        return self._neighborhood(sender).pairs

    def _neighborhood(self, sender: Radio) -> _Neighborhood:
        entry = self._neighborhoods.get(sender.node_id)
        if entry is not None:
            if entry.world_version == self._world_version:
                return entry
            if (self._grid is not None
                    and entry.sender_version == sender.version
                    and entry.filter_version == self._filter_version
                    and all(self._cell_versions.get(cell, 0) == version
                            for cell, version
                            in zip(entry.cells, entry.cell_versions))):
                # Something changed somewhere, but not near this sender.
                entry.world_version = self._world_version
                return entry
        entry = self._build_neighborhood(sender)
        self._neighborhoods[sender.node_id] = entry
        return entry

    def _build_neighborhood(self, sender: Radio) -> _Neighborhood:
        sender_id = sender.node_id
        blocked = self._link_filter
        if self._grid is not None:
            home = self._cell_of(sender.position)
            cells = tuple(
                (home[0] + dx, home[1] + dy)
                for dx in (-1, 0, 1) for dy in (-1, 0, 1))
            cell_versions = tuple(self._cell_versions.get(c, 0) for c in cells)
            candidates: List[Radio] = []
            for cell in cells:
                bucket = self._grid.get(cell)
                if bucket:
                    candidates.extend(bucket.values())
        else:
            cells = ()
            cell_versions = ()
            candidates = list(self.radios.values())

        # Resolve candidate RSSI through the versioned cache; compute the
        # misses in one vectorized call when the model allows it.
        radios: List[Radio] = []
        rssis: List[Optional[float]] = []
        misses: List[int] = []
        cache = self._rssi_cache
        sender_version = sender.version
        for radio in candidates:
            if radio is sender:
                continue
            if blocked is not None and blocked(sender_id, radio.node_id):
                continue
            entry = cache.get((sender_id, radio.node_id))
            if (entry is not None and entry[1] == sender_version
                    and entry[2] == radio.version):
                rssis.append(entry[0])
            else:
                misses.append(len(radios))
                rssis.append(None)
            radios.append(radio)
        if misses:
            if self._model_rssi_batch is not None and len(misses) > 1:
                values = self._model_rssi_batch(
                    sender.position,
                    [radios[i].position for i in misses],
                    sender.tx_power_dbm)
            else:
                values = [
                    self.model.rssi_dbm(
                        sender.position, radios[i].position, sender.tx_power_dbm)
                    for i in misses]
            if len(cache) + len(misses) > self._rssi_cache_max:
                cache.clear()
            for i, value in zip(misses, values):
                rssis[i] = value
                cache[(sender_id, radios[i].node_id)] = (
                    value, sender_version, radios[i].version)

        pairs = [(radio, rssi) for radio, rssi in zip(radios, rssis)
                 if rssi >= AUDIBLE_THRESHOLD_DBM]
        pairs.sort(key=lambda pair: (-pair[1], pair[0].node_id))
        if self._model_prr_batch is not None and len(pairs) > 1:
            prrs = self._model_prr_batch([rssi for _, rssi in pairs])
        else:
            prrs = [self.model.reception_probability(rssi) for _, rssi in pairs]
        return _Neighborhood(
            pairs=pairs,
            prrs=prrs,
            world_version=self._world_version,
            sender_version=sender_version,
            filter_version=self._filter_version,
            cells=cells,
            cell_versions=cell_versions,
        )

    def link_prr(self, sender_id: int, receiver_id: int) -> float:
        """Packet reception ratio of the directed link, ignoring collisions.

        Unknown endpoints report 0.0: a peer without a radio on this
        medium (e.g. one only ever heard about in a forged or stale
        control message) is by definition unreachable.
        """
        sender = self.radios.get(sender_id)
        receiver = self.radios.get(receiver_id)
        if sender is None or receiver is None:
            return 0.0
        return self.model.reception_probability(self.rssi_between(sender, receiver))

    # ------------------------------------------------------------------
    # channel activity
    # ------------------------------------------------------------------
    def _prune_active(self, now: float) -> None:
        """Lazily drop transmissions nothing can still observe.

        A finished transmission must outlive its end: an in-flight frame
        that overlapped it still needs it for collision arbitration at
        delivery time.  Any frame in flight at ``now`` started no
        earlier than ``now - max_airtime``, so entries ending before
        that horizon are unobservable and pop off the end-ordered heap
        in O(log n) — overlap queries then never re-filter them.
        """
        horizon = now - self._max_airtime
        active = self._active
        while active and active[0][0] <= horizon:
            heapq.heappop(active)

    def _rebuild_cell_active(self) -> None:
        """Re-bucket every live transmission by its sender's current cell."""
        self._cell_active = {}
        self._cell_active_count = 0
        if self._grid is None:
            return
        for item in self._active:
            cell = self._cell_of(item[2].radio.position)
            self._cell_active.setdefault(cell, []).append(item)
            self._cell_active_count += 1
        for heap in self._cell_active.values():
            heapq.heapify(heap)

    def _active_near(self, position: Position, now: float) -> Iterator[_Transmission]:
        """Transmissions that could possibly be audible at ``position``.

        Falls back to the (exact, identical) global scan when indexing
        is off or the active set is small; otherwise only the 3×3 cell
        neighborhood's heaps are visited.  Any transmission audible at
        ``position`` radiates from within the range bound, hence from an
        adjacent cell — the candidate set is a superset either way.
        """
        if self._grid is None or len(self._active) <= _SMALL_ACTIVE:
            for item in self._active:
                yield item[2]
            return
        home_x, home_y = self._cell_of(position)
        horizon = now - self._max_airtime
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                heap = self._cell_active.get((home_x + dx, home_y + dy))
                if not heap:
                    continue
                while heap and heap[0][0] <= horizon:
                    heapq.heappop(heap)
                    self._cell_active_count -= 1
                for item in heap:
                    yield item[2]

    def carrier_busy(self, radio: Radio) -> bool:
        """True if any audible transmission occupies ``radio``'s channel."""
        self._sync_model()
        now = self.sim.now
        for tx in self._active_near(radio.position, now):
            if tx.end <= now or tx.radio is radio:
                continue
            if not tx.frame.interferes_with(radio.channel):
                continue
            if self._blocked(tx.radio.node_id, radio.node_id):
                continue
            if self.rssi_between(tx.radio, radio) >= CCA_THRESHOLD_DBM:
                return True
        return False

    def transmit(
        self,
        radio: Radio,
        frame: Frame,
        done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Put ``frame`` on the air from ``radio``."""
        if not radio.enabled:
            raise RuntimeError(f"radio {radio.node_id} is disabled (node failed)")
        if radio.state is RadioState.TX:
            raise RuntimeError(f"radio {radio.node_id} already transmitting")
        self._sync_model()
        now = self.sim.now
        airtime = frame.airtime
        if airtime > self._max_airtime:
            self._max_airtime = airtime
        self._prune_active(now)
        tx = _Transmission(radio=radio, frame=frame, start=now, end=now + airtime)
        obs = self.trace.obs
        if obs is not None and obs.spans is not None:
            parent = getattr(frame.payload, "trace_ctx", None)
            if parent is not None:
                tx.span = obs.spans.start(parent, "radio.airtime",
                                          node=radio.node_id, t=now,
                                          size=frame.size_bytes)
                tx.addressee = getattr(frame.payload, "dst", None)
        self._active_seq += 1
        item = (tx.end, self._active_seq, tx)
        heapq.heappush(self._active, item)
        if self._grid is not None:
            cell = self._cell_of(radio.position)
            heap = self._cell_active.setdefault(cell, [])
            horizon = now - self._max_airtime
            while heap and heap[0][0] <= horizon:
                heapq.heappop(heap)
                self._cell_active_count -= 1
            heapq.heappush(heap, item)
            self._cell_active_count += 1
            if self._cell_active_count > 2 * len(self._active) + 32:
                # Untouched cells accumulate expired entries; rebuild
                # from the (already pruned) global heap to re-bound them.
                self._rebuild_cell_active()
        radio._set_state(RadioState.TX)
        radio.frames_sent += 1
        radio.bytes_sent += frame.size_bytes
        self.trace.emit(now, "radio.tx", node=radio.node_id, size=frame.size_bytes,
                        channel=frame.channel)

        if frame.jam_channels:
            receivers: List[Tuple[Radio, float, float]] = []
        else:
            neighborhood = self._neighborhood(radio)
            receivers = [(receiver, rssi, prr) for (receiver, rssi), prr
                         in zip(neighborhood.pairs, neighborhood.prrs)]

        def finish() -> None:
            radio._set_state(RadioState.LISTEN)
            for receiver, rssi, prr in receivers:
                self._try_deliver(tx, receiver, rssi, prr)
            if tx.span is not None:
                self.trace.obs.spans.finish(tx.span, self.sim.now)
            if done is not None:
                done()

        self.sim.schedule(airtime, finish)
        return airtime

    def _try_deliver(
        self, tx: _Transmission, receiver: Radio, rssi: float, prr: float
    ) -> None:
        frame = tx.frame
        if not receiver.enabled:
            return
        # The span check comes first: tx.span is None in every untraced
        # run, so traced delivery outcomes cost nothing otherwise.  Only
        # the addressee's outcome explains the hop; overheard copies at
        # third parties are not part of the packet's lifecycle.
        spans = None
        if tx.span is not None and (tx.addressee is None
                                    or tx.addressee == receiver.node_id):
            spans = self.trace.obs.spans
        if receiver.channel != frame.channel:
            return
        if receiver.state is not RadioState.LISTEN or receiver._listen_since > tx.start:
            # Slept through (part of) the frame — the duty-cycling cost.
            self.trace.emit(self.sim.now, "radio.miss", node=receiver.node_id,
                            sender=frame.sender)
            if spans is not None:
                spans.event(tx.span, "radio.miss", node=receiver.node_id,
                            t=self.sim.now)
            return
        interferer_rssi = self._strongest_interferer(tx, receiver)
        if interferer_rssi is not None and rssi - interferer_rssi < CAPTURE_MARGIN_DB:
            self.trace.emit(self.sim.now, "radio.collision", node=receiver.node_id,
                            sender=frame.sender)
            if spans is not None:
                spans.event(tx.span, "radio.collision", node=receiver.node_id,
                            t=self.sim.now)
            return
        if self._rng.random() > prr:
            self.trace.emit(self.sim.now, "radio.drop", node=receiver.node_id,
                            sender=frame.sender)
            if spans is not None:
                spans.event(tx.span, "radio.drop", node=receiver.node_id,
                            t=self.sim.now)
            return
        receiver.frames_received += 1
        self.trace.emit(self.sim.now, "radio.rx", node=receiver.node_id,
                        sender=frame.sender, size=frame.size_bytes)
        if spans is not None:
            spans.event(tx.span, "radio.rx", node=receiver.node_id,
                        t=self.sim.now, rssi=round(rssi, 1))
        if receiver.on_receive is not None:
            receiver.on_receive(frame, rssi)

    def _strongest_interferer(
        self, tx: _Transmission, receiver: Radio
    ) -> Optional[float]:
        strongest: Optional[float] = None
        for other in self._active_near(receiver.position, self.sim.now):
            if other is tx or other.radio is receiver:
                continue
            if other.end <= tx.start or other.start >= tx.end:
                continue
            if not other.frame.interferes_with(tx.frame.channel):
                continue
            if self._blocked(other.radio.node_id, receiver.node_id):
                continue
            rssi = self.rssi_between(other.radio, receiver)
            if rssi < AUDIBLE_THRESHOLD_DBM:
                continue
            if strongest is None or rssi > strongest:
                strongest = rssi
        return strongest
