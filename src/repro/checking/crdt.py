"""CRDT invariants: lattice laws on live states and convergence.

State-based CRDTs owe their partition story to three algebraic laws —
merge is idempotent, commutative, and associative — plus the liveness
property that replicas exchanging states converge once gossip quiesces.
This checker probes the laws continuously on *copies* of the live
replica states (never mutating the replicas themselves), and checks
convergence once, at end of run, after the scenario has healed any
partition and left anti-entropy time to quiesce.
"""

from __future__ import annotations

from typing import Any, List

from repro.checking.base import InvariantChecker
from repro.crdt.replication import CrdtReplica


class CrdtLatticeChecker(InvariantChecker):
    """Samples lattice laws; asserts convergence at finish.

    Parameters
    ----------
    period_s:
        Fixed law-sampling period.
    expect_convergence:
        When True (default), :meth:`finish` requires all watched
        replicas to resolve to the same value.  Scenarios that end
        mid-partition (convergence is not yet due) set this False.
    """

    name = "crdt"

    def __init__(self, period_s: float = 60.0,
                 expect_convergence: bool = True) -> None:
        super().__init__()
        self.period_s = period_s
        self.expect_convergence = expect_convergence
        self.replicas: List[CrdtReplica] = []
        self.law_samples = 0

    def watch(self, replica: CrdtReplica) -> CrdtReplica:
        """Add one replica to the watched set."""
        self.replicas.append(replica)
        return replica

    def _setup(self) -> None:
        self.sample_every(self.period_s, self._sample_laws)

    # ------------------------------------------------------------------
    def _sample_laws(self) -> None:
        self.law_samples += 1
        for replica in self.replicas:
            self._check_idempotence(replica)
        for left, right in zip(self.replicas, self.replicas[1:]):
            self._check_commutativity(left, right)

    def _check_idempotence(self, replica: CrdtReplica) -> None:
        state = replica.state
        merged = state.copy()
        changed = merged.merge(state.copy())
        if changed or merged.value() != state.value():
            self.record("merge_not_idempotent", node=replica.node_id,
                        value=_render(state.value()),
                        after=_render(merged.value()), changed=changed)

    def _check_commutativity(self, left: CrdtReplica,
                             right: CrdtReplica) -> None:
        ab = left.state.copy()
        ab.merge(right.state.copy())
        ba = right.state.copy()
        ba.merge(left.state.copy())
        if ab.value() != ba.value():
            self.record("merge_not_commutative",
                        node=left.node_id, peer=right.node_id,
                        left_then_right=_render(ab.value()),
                        right_then_left=_render(ba.value()))

    # ------------------------------------------------------------------
    def finish(self) -> None:
        if not self.expect_convergence or len(self.replicas) < 2:
            return
        reference = self.replicas[0].state.value()
        for replica in self.replicas[1:]:
            value = replica.state.value()
            if value != reference:
                self.record("replicas_diverged", node=replica.node_id,
                            value=_render(value),
                            reference_node=self.replicas[0].node_id,
                            reference=_render(reference))


def _render(value: Any, limit: int = 200) -> str:
    """Compact state snapshot for violation records."""
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."
