"""CoAP middleware invariants (RFC 7252 / RFC 7641 semantics).

Watches the CoAP layer's trace records:

- ``coap.response`` — emitted by the client exactly when a request
  callback fires with an actual response.  A confirmable request is
  answered **at most once** per token; seeing the same token answered
  twice means the token-matching/dedup chain leaked a duplicate to the
  application.
- ``coap.notify`` — Observe notifications delivered for a token must be
  monotone in their sequence number (RFC 7641 §3.4 reordering guard).
- ``coap.retransmit`` — the transport may retransmit a confirmable
  message at most ``MAX_RETRANSMIT`` times before declaring failure.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.checking.base import InvariantChecker
from repro.sim.trace import TraceRecord


class CoapExchangeChecker(InvariantChecker):
    """Request/response, Observe, and retransmission invariants."""

    name = "coap"

    def __init__(self) -> None:
        super().__init__()
        #: (client node, token) -> completed-response count.
        self._responses: Dict[Tuple[int, int], int] = {}
        #: (client node, token) -> last Observe sequence number seen.
        self._observe_seq: Dict[Tuple[int, int], int] = {}
        self.exchanges_watched = 0

    def _setup(self) -> None:
        self.subscribe("coap.response", self._on_response)
        self.subscribe("coap.notify", self._on_notify)
        self.subscribe("coap.retransmit", self._on_retransmit)

    # ------------------------------------------------------------------
    def _on_response(self, record: TraceRecord) -> None:
        token = record.data.get("token")
        if token is None:
            return
        key = (record.node, token)
        count = self._responses.get(key, 0) + 1
        self._responses[key] = count
        if count == 1:
            self.exchanges_watched += 1
        else:
            self.record("response_not_at_most_once", node=record.node,
                        token=token, deliveries=count,
                        src=record.data.get("src"))

    def _on_notify(self, record: TraceRecord) -> None:
        seq = record.data.get("seq")
        if seq is None:
            return
        key = (record.node, record.data.get("token"))
        last = self._observe_seq.get(key)
        if last is not None and seq < last:
            self.record("observe_sequence_regression", node=record.node,
                        token=key[1], seq=seq, previous=last)
            return  # keep the high-water mark
        self._observe_seq[key] = seq

    def _on_retransmit(self, record: TraceRecord) -> None:
        retries = record.data.get("retries")
        limit = record.data.get("max_retransmit")
        if retries is None or limit is None:
            return
        if retries > limit:
            self.record("retransmit_limit_exceeded", node=record.node,
                        retries=retries, max_retransmit=limit,
                        dest=record.data.get("dest"))
