"""Routing-layer invariants: DODAG shape and delivered-packet paths.

Two checkers:

- :class:`DodagStructureChecker` samples the ground-truth routing state
  of every router and checks three structural properties: the
  preferred-parent graph is acyclic, rank strictly decreases toward the
  root along parent edges, and the root's DAO table (which downward
  source routes are computed from) is cycle-free.
- :class:`DeliveredPathChecker` watches ``net.delivered`` records and
  checks each delivered packet's path evidence: a source-routed path
  never revisits a node, and the cumulative hop count stays within the
  TTL-derived hard budget.

RPL is *self-stabilizing*, not loop-free at every instant: stale DIOs
can create parent cycles or rank inversions that the protocol's own
defenses (datapath validation, DAGMaxRankIncrease, Trickle resets)
dissolve within a few exchanges.  The structural checks therefore use a
persistence threshold — a defect must be observed in ``persistence``
consecutive samples to count as a violation.  A transient inversion
clears in one Trickle interval; one that survives multiple sampling
periods is a genuine repair failure.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.checking.base import FaultWindowMixin, InvariantChecker
from repro.net.rpl.dodag import RplRouter, RplState
from repro.net.rpl.objective import INFINITE_RANK
from repro.sim.trace import TraceRecord

_StreakKey = Tuple


def _find_cycles(parent: Dict[int, int]) -> List[FrozenSet[int]]:
    """Cycles in a functional graph ``node -> parent`` (each node has at
    most one outgoing edge, so every cycle is node-disjoint)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    cycles: List[FrozenSet[int]] = []
    for start in parent:
        if color.get(start, WHITE) is not WHITE:
            continue
        path: List[int] = []
        cursor: Optional[int] = start
        while cursor is not None and cursor in parent and (
            color.get(cursor, WHITE) is WHITE
        ):
            color[cursor] = GRAY
            path.append(cursor)
            cursor = parent[cursor]
        if cursor is not None and color.get(cursor, WHITE) is GRAY:
            cycles.append(frozenset(path[path.index(cursor):]))
        for node in path:
            color[node] = BLACK
    return cycles


class DodagStructureChecker(FaultWindowMixin, InvariantChecker):
    """Samples routers for cycles and rank inversions.

    Fault-window aware: inside a window declared via
    :meth:`~repro.checking.base.FaultWindowMixin.declare_fault_window`
    (e.g. a :meth:`~repro.faults.plan.FaultPlan.random_crashes` storm),
    sampled structure checks are suspended — stale parent pointers and
    DAO entries are expected consequences of deliberately crashing
    routers.  Persistence streaks freeze rather than reset, so a defect
    that survives past the window (plus grace) still needs only
    ``persistence`` further samples to fire.

    Parameters
    ----------
    routers:
        node id -> :class:`~repro.net.rpl.dodag.RplRouter` (ground
        truth, read-only).
    period_s:
        Fixed sampling period (no jitter — determinism).
    persistence:
        Number of consecutive samples a defect must survive before it
        is recorded.  1 flags transients too; the default 2 tolerates
        the convergence windows RPL's own loop defenses are built for.
    alive:
        Optional predicate ``node_id -> bool``.  A crashed node's
        router retains its last state verbatim, which is staleness, not
        a routing defect — dead routers are excluded from the sampled
        graph.  ``None`` treats every router as live.
    """

    name = "rpl.dodag"

    def __init__(
        self,
        routers: Dict[int, RplRouter],
        period_s: float = 30.0,
        persistence: int = 2,
        alive: Optional[Callable[[int], bool]] = None,
    ) -> None:
        super().__init__()
        if persistence < 1:
            raise ValueError("persistence must be >= 1")
        self.routers = routers
        self.period_s = period_s
        self.persistence = persistence
        self._alive = alive
        self._streaks: Dict[_StreakKey, int] = {}
        self.samples = 0

    def _setup(self) -> None:
        self.sample_every(self.period_s, self._sample)

    # ------------------------------------------------------------------
    def _bump(self, seen: set, key: _StreakKey, invariant: str,
              node: Optional[int], **detail) -> None:
        seen.add(key)
        count = self._streaks.get(key, 0) + 1
        self._streaks[key] = count
        if count == self.persistence:
            self.record(invariant, node=node, persisted_samples=count, **detail)

    def _sample(self) -> None:
        self.samples += 1
        if self.in_fault_window(self.sim.now):
            return
        seen: set = set()
        self._check_parent_graph(seen)
        self._check_rank_monotonicity(seen)
        self._check_dao_tables(seen)
        # A defect that healed resets its streak.
        self._streaks = {k: v for k, v in self._streaks.items() if k in seen}

    # ------------------------------------------------------------------
    def _is_alive(self, nid: int) -> bool:
        return self._alive is None or self._alive(nid)

    def _joined_parent_graph(self) -> Dict[int, int]:
        return {
            nid: router.preferred_parent
            for nid, router in self.routers.items()
            if router.state is RplState.JOINED
            and router.preferred_parent is not None
            and self._is_alive(nid)
        }

    def _check_parent_graph(self, seen: set) -> None:
        for cycle in _find_cycles(self._joined_parent_graph()):
            self._bump(
                seen, ("parent_cycle", cycle), "dodag_cycle", None,
                cycle=sorted(cycle),
                ranks={n: self.routers[n].rank for n in sorted(cycle)},
            )

    def _check_rank_monotonicity(self, seen: set) -> None:
        attached = (RplState.JOINED, RplState.ROOT, RplState.FLOATING_ROOT)
        for nid, router in self.routers.items():
            if router.state is not RplState.JOINED or not self._is_alive(nid):
                continue
            parent = self.routers.get(router.preferred_parent)
            if (
                parent is None
                or not self._is_alive(parent.node_id)
                or parent.state not in attached
                or parent.dodag_id != router.dodag_id
                or parent.rank >= INFINITE_RANK
            ):
                continue  # parent left this DODAG: staleness, not inversion
            if router.rank <= parent.rank:
                self._bump(
                    seen, ("rank_inversion", nid), "rank_not_monotone", nid,
                    rank=router.rank, parent=parent.node_id,
                    parent_rank=parent.rank,
                )

    def _check_dao_tables(self, seen: set) -> None:
        for nid, router in self.routers.items():
            if router.state not in (RplState.ROOT, RplState.FLOATING_ROOT):
                continue
            if not self._is_alive(nid):
                continue
            graph = {child: entry[0] for child, entry in router.dao_table.items()}
            for cycle in _find_cycles(graph):
                self._bump(
                    seen, ("dao_cycle", nid, cycle), "dao_table_cycle", nid,
                    cycle=sorted(cycle),
                )


class DeliveredPathChecker(InvariantChecker):
    """Checks loop evidence on every delivered packet.

    Downward packets carry their full source route in the delivery
    record; a route that visits any node twice is a routing loop, flagged
    exactly.  Upward paths are implicit (they follow parent pointers,
    whose acyclicity :class:`DodagStructureChecker` owns), so for those
    this checker enforces only the hard hop budget: a delivered packet
    can never have traversed more links than its initial TTL allows,
    whatever forwarding took place.
    """

    name = "rpl.path"

    def __init__(self, node_count: int, ttl_limit: int = 16) -> None:
        super().__init__()
        self.node_count = node_count
        #: ttl decrements per forward; the final delivery hop does not
        #: decrement, hence the +1.
        self.max_hops = ttl_limit + 1
        self.deliveries = 0

    def _setup(self) -> None:
        self.subscribe("net.delivered", self._on_delivered)

    def _on_delivered(self, record: TraceRecord) -> None:
        self.deliveries += 1
        hops = record.data.get("hops")
        if hops is not None and hops > self.max_hops:
            self.record("hop_budget_exceeded", node=record.node,
                        hops=hops, budget=self.max_hops)
        path = record.data.get("path") or ()
        if len(set(path)) != len(path):
            repeated = sorted({n for n in path if path.count(n) > 1})
            self.record("source_route_revisit", node=record.node,
                        path=tuple(path), repeated=repeated)
