"""Service availability: is every client actually being served?

The taxonomy's availability axis grades against "three nines", which a
raw delivery probe through a partition can never meet — delivery drops
with the severed half even when every client on both sides still has a
working service endpoint.  The right measure for a *dependable* system
is service availability: a node counts as served when some alive
endpoint (border router, or a designated standby) is on its side of the
network, matching the paper's §V-C point that partition tolerance is
about keeping both sides operational, not about wishing the cut away.

Two probes:

- :func:`service_availability` — fraction of alive non-endpoint nodes
  with an alive endpoint on their partition side;
- :func:`reachable_fraction` — fraction of alive non-root nodes with a
  JOINED, alive parent chain to the root (the stricter routing-level
  view, reported alongside but not graded).

:class:`AvailabilityChecker` samples both on a fixed period and records
violations when service availability drops below a floor outside every
declared fault window, or fails to fully restore by the end of the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.checking.base import FaultWindowMixin, InvariantChecker
from repro.net.rpl.dodag import RplState


def _partition_sides(partitions) -> Optional[Dict[int, int]]:
    if partitions is None:
        return None
    return partitions.sides  # None when not partitioned


def service_availability(
    system,
    endpoints: Sequence[int],
    partitions=None,
) -> float:
    """Fraction of alive non-endpoint nodes with a live endpoint on
    their side of the (possible) partition."""
    sides = _partition_sides(partitions)
    alive_endpoint_sides = {
        (sides.get(nid) if sides is not None else 0)
        for nid in endpoints
        if system.nodes[nid].alive
    }
    clients = [
        node for nid, node in sorted(system.nodes.items())
        if nid not in endpoints and node.alive
    ]
    if not clients:
        return 1.0
    served = sum(
        1 for node in clients
        if (sides.get(node.node_id) if sides is not None else 0)
        in alive_endpoint_sides
    )
    return served / len(clients)


def reachable_fraction(system) -> float:
    """Fraction of alive non-root nodes JOINED with an alive parent
    chain up to the root (loop-guarded)."""
    root_id = system.topology.root_id
    clients = [
        node for nid, node in sorted(system.nodes.items())
        if nid != root_id and node.alive
    ]
    if not clients:
        return 1.0

    def reaches_root(node) -> bool:
        seen = set()
        current = node
        while True:
            if not current.alive:
                return False
            if current.node_id == root_id:
                return True
            rpl = current.stack.rpl
            if rpl.state is not RplState.JOINED or rpl.preferred_parent is None:
                return False
            if current.node_id in seen:
                return False  # routing loop
            seen.add(current.node_id)
            parent = system.nodes.get(rpl.preferred_parent)
            if parent is None:
                return False
            current = parent

    return sum(1 for node in clients if reaches_root(node)) / len(clients)


class AvailabilityChecker(FaultWindowMixin, InvariantChecker):
    """Samples service availability against a floor, fault-window aware.

    Like every checker it only *observes*: samples accumulate on the
    instance (``samples``, ``reachable_samples``) and are summarized by
    the dependability CLI after the run — nothing is written to the
    metrics registry mid-run.
    """

    name = "dependability.availability"

    def __init__(
        self,
        system,
        endpoints: Optional[Sequence[int]] = None,
        period_s: float = 15.0,
        floor: float = 0.6,
        settle_s: float = 0.0,
        partitions=None,
    ) -> None:
        super().__init__()
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        self.system = system
        self.endpoints: Tuple[int, ...] = tuple(
            endpoints if endpoints is not None else [system.topology.root_id]
        )
        self.period_s = period_s
        self.floor = floor
        self.settle_s = settle_s
        self.partitions = partitions
        #: (time, service_availability) samples.
        self.samples: List[Tuple[float, float]] = []
        #: (time, reachable_fraction) samples.
        self.reachable_samples: List[Tuple[float, float]] = []

    def _setup(self) -> None:
        self.sample_every(self.period_s, self._probe)

    def _probe(self) -> None:
        now = self.sim.now
        availability = service_availability(self.system, self.endpoints,
                                            self.partitions)
        self.samples.append((now, availability))
        self.reachable_samples.append((now, reachable_fraction(self.system)))
        if now < self.settle_s:
            return
        if availability < self.floor and not self.in_fault_window(now):
            self.record(
                "service_availability_floor",
                availability=round(availability, 4),
                floor=self.floor,
            )

    def finish(self) -> None:
        if self.samples and self.samples[-1][1] < 1.0:
            time, availability = self.samples[-1]
            self.record(
                "availability_not_restored",
                availability=round(availability, 4),
                at=time,
            )

    # -- summaries (read by the dependability CLI) ----------------------
    def mean_availability(self) -> float:
        if not self.samples:
            return 1.0
        return sum(a for _, a in self.samples) / len(self.samples)

    def min_availability(self) -> float:
        if not self.samples:
            return 1.0
        return min(a for _, a in self.samples)

    def mean_reachable(self) -> float:
        if not self.reachable_samples:
            return 1.0
        return sum(r for _, r in self.reachable_samples) / len(self.reachable_samples)
