"""The deterministic seed-sweep harness.

A *scenario* is a callable ``scenario(seed) -> CheckerSuite``: it builds
a system, attaches checkers, drives the simulation (typically through a
:class:`~repro.faults.injector.FaultInjector` script), and returns the
suite.  The :class:`SeedSweepRunner` executes the scenario across many
seeds, asserts zero invariant violations, and — because every run is a
pure function of its seed — a failure reduces to a minimal
:class:`ReproBundle`: the seed, the scenario name, the violation
records, and the trailing trace window leading up to the first breach.
Re-running the same scenario with the bundled seed reproduces the
failure exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.checking.base import CheckerSuite, Violation
from repro.core.experiment import seeds_for
from repro.parallel import TrialExecutor
from repro.sim.trace import TraceRecord

Scenario = Callable[[int], CheckerSuite]


class InvariantViolationError(AssertionError):
    """A seed sweep found invariant violations; carries the bundle."""

    def __init__(self, bundle: "ReproBundle") -> None:
        super().__init__(bundle.summary())
        self.bundle = bundle


@dataclass
class ReproBundle:
    """The minimal artifact needed to reproduce one failing run."""

    scenario: str
    seed: int
    violations: List[Violation]
    trace_tail: List[TraceRecord] = field(default_factory=list)
    #: Rendered packet-lifecycle span trees (repro.obs) overlapping the
    #: violation window — empty unless the scenario ran with spans on.
    span_trees: List[str] = field(default_factory=list)
    #: Rendered flight-recorder dumps (repro.obs.recorder) — empty
    #: unless the scenario ran with telemetry + recorder attached.
    flight_dumps: List[str] = field(default_factory=list)
    #: The injection script that produced this run
    #: (``FaultPlan.to_jsonable()``), when one was installed.
    fault_plan: Optional[Dict[str, Any]] = None

    def summary(self, max_violations: int = 10, max_trace: int = 20) -> str:
        """Human-readable repro recipe."""
        lines = [
            f"scenario={self.scenario!r} seed={self.seed}: "
            f"{len(self.violations)} violation(s)",
        ]
        for violation in self.violations[:max_violations]:
            lines.append(f"  {violation}")
        if len(self.violations) > max_violations:
            lines.append(f"  ... {len(self.violations) - max_violations} more")
        if self.fault_plan is not None:
            clauses = self.fault_plan.get("clauses", [])
            lines.append(f"  fault plan ({len(clauses)} clause(s)):")
            for clause in clauses:
                detail = ", ".join(f"{k}={v}" for k, v in sorted(clause.items())
                                   if k not in ("kind", "at_s"))
                lines.append(f"    {clause['kind']} @ t={clause['at_s']:g}s"
                             f"  {detail}")
        if self.trace_tail:
            lines.append(f"  trailing trace ({len(self.trace_tail)} records,"
                         f" last {max_trace} shown):")
            for record in self.trace_tail[-max_trace:]:
                lines.append(
                    f"    t={record.time:.3f} {record.category}"
                    f" node={record.node} {record.data}"
                )
        if self.span_trees:
            lines.append(f"  packet lifecycles in the violation window "
                         f"({len(self.span_trees)} trace(s)):")
            for tree in self.span_trees:
                for tree_line in tree.splitlines():
                    lines.append(f"    {tree_line}")
        if self.flight_dumps:
            lines.append(f"  flight recorder ({len(self.flight_dumps)} dump(s)):")
            for dump in self.flight_dumps:
                for dump_line in dump.splitlines():
                    lines.append(f"    {dump_line}")
        lines.append(f"  repro: rerun scenario {self.scenario!r} "
                     f"with seed={self.seed}")
        return "\n".join(lines)


@dataclass
class SweepOutcome:
    """One seed's result."""

    seed: int
    violations: List[Violation]
    bundle: Optional[ReproBundle] = None

    @property
    def clean(self) -> bool:
        return not self.violations


class SeedSweepRunner:
    """Runs a scenario across seeds and asserts zero violations.

    Parameters
    ----------
    name:
        Scenario name, recorded in repro bundles.
    scenario:
        ``scenario(seed) -> CheckerSuite`` (see module docstring).
    trace_window_s:
        How much trailing simulated time of the trace to capture into a
        repro bundle when a run fails.
    """

    #: How many rendered span trees a repro bundle carries at most.
    MAX_BUNDLE_TRACES = 3

    def __init__(self, name: str, scenario: Scenario,
                 trace_window_s: float = 120.0) -> None:
        self.name = name
        self.scenario = scenario
        self.trace_window_s = trace_window_s

    # ------------------------------------------------------------------
    def run_seed(self, seed: int) -> SweepOutcome:
        """One deterministic run; violations become a repro bundle."""
        suite = self.scenario(seed)
        violations = suite.finish()
        suite.detach()
        bundle = None
        if violations:
            window_start = min(
                suite.sim.now - self.trace_window_s,
                violations[0].time,
            )
            tail = [r for r in suite.trace.records if r.time >= window_start]
            span_trees = self._span_trees(suite, window_start)
            obs = getattr(suite.trace, "obs", None)
            recorder = getattr(obs, "recorder", None)
            flight_dumps = recorder.render_all() if recorder is not None else []
            plan = getattr(suite.trace, "fault_plan", None)
            bundle = ReproBundle(self.name, seed, violations, tail,
                                 span_trees=span_trees,
                                 flight_dumps=flight_dumps,
                                 fault_plan=(plan.to_jsonable()
                                             if plan is not None else None))
        return SweepOutcome(seed=seed, violations=violations, bundle=bundle)

    def _span_trees(self, suite: CheckerSuite, window_start: float) -> List[str]:
        """Rendered lifecycle trees overlapping the violation window,
        when the scenario ran with span tracing attached."""
        obs = getattr(suite.trace, "obs", None)
        if obs is None or obs.spans is None:
            return []
        trace_ids = obs.spans.traces_overlapping(window_start, suite.sim.now)
        return [obs.spans.render(tid)
                for tid in trace_ids[-self.MAX_BUNDLE_TRACES:]]

    def run(self, seeds: Sequence[int], jobs: int = 1) -> List[SweepOutcome]:
        """Run every seed; ``jobs`` > 1 fans the runs out over a process
        pool (outcomes — including repro bundles — are merged by seed
        index, so the list is identical to a serial run's).

        Scenarios that cannot be pickled (locally-defined closures) fall
        back to serial execution transparently.
        """
        executor = TrialExecutor(jobs)
        return executor.map(self.run_seed, [(seed,) for seed in seeds])

    def run_count(self, repetitions: int, base_seed: int = 1,
                  jobs: int = 1) -> List[SweepOutcome]:
        """Run over the standard deterministic seed list."""
        return self.run(seeds_for(base_seed, repetitions), jobs=jobs)

    # ------------------------------------------------------------------
    def assert_clean(self, outcomes: Sequence[SweepOutcome]) -> None:
        """Raise :class:`InvariantViolationError` on the first failure."""
        for outcome in outcomes:
            if outcome.bundle is not None:
                raise InvariantViolationError(outcome.bundle)

    def sweep(self, repetitions: int, base_seed: int = 1,
              jobs: int = 1) -> List[SweepOutcome]:
        """``run_count`` + ``assert_clean`` in one call."""
        outcomes = self.run_count(repetitions, base_seed, jobs=jobs)
        self.assert_clean(outcomes)
        return outcomes
