"""Safety invariants: the HVAC comfort envelope.

The paper frames comfort as a *soft* safety margin: excursions are a
cost, not a crash — but a correct control system confines them to the
windows where something is actually broken (a crashed controller node, a
partition separating zone from controller, a dead sensor).  The checker
samples every watched zone's temperature and flags any excursion beyond
the envelope that happens **outside** the scenario's declared fault
windows: comfort lost while the system is nominally healthy is a control
bug, not a fault consequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.checking.base import FaultWindowMixin, InvariantChecker
from repro.safety.comfort import ComfortBand


@dataclass(frozen=True)
class _WatchedZone:
    name: str
    temperature: Callable[[], float]
    band: ComfortBand
    node: Optional[int]


class ComfortEnvelopeChecker(FaultWindowMixin, InvariantChecker):
    """Comfort excursions only inside declared fault windows.

    Parameters
    ----------
    period_s:
        Fixed sampling period.
    margin_c:
        Extra envelope width beyond each zone's band: small controller
        overshoot (bang-bang hysteresis, sensor noise) is not a safety
        event.
    settle_s:
        Startup grace — zones start away from their setpoint and the
        controller needs pull-in time.
    """

    name = "safety.comfort"

    def __init__(self, period_s: float = 60.0, margin_c: float = 0.5,
                 settle_s: float = 0.0) -> None:
        super().__init__()
        self.period_s = period_s
        self.margin_c = margin_c
        self.settle_s = settle_s
        self._zones: List[_WatchedZone] = []
        self.samples = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def watch(self, name: str, temperature: Callable[[], float],
              band: ComfortBand, node: Optional[int] = None) -> None:
        """Watch one temperature signal against ``band``."""
        self._zones.append(_WatchedZone(name, temperature, band, node))

    def watch_zone(self, zone) -> None:
        """Convenience: watch an :class:`~repro.safety.hvac.HvacZone`."""
        self.watch(zone.name, lambda: zone.zone.temperature_c, zone.band,
                   node=zone.node.node_id)

    # ------------------------------------------------------------------
    def _setup(self) -> None:
        self.sample_every(self.period_s, self._sample)

    def _sample(self) -> None:
        self.samples += 1
        now = self.sim.now
        if now < self.settle_s or self.in_fault_window(now):
            return
        for zone in self._zones:
            temperature = zone.temperature()
            excursion = zone.band.violation_degrees(temperature)
            if excursion > self.margin_c:
                self.record("comfort_envelope_breach", node=zone.node,
                            zone=zone.name, temperature_c=temperature,
                            excursion_c=excursion,
                            band=(zone.band.lower_c, zone.band.upper_c))
