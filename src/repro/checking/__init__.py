"""Runtime invariant checking and the deterministic seed-sweep harness.

The dependability taxonomy the paper builds (reliability, safety,
availability) demands that protocol correctness hold *under faults*, not
just on the happy path.  This package provides the tooling:

- :mod:`repro.checking.base` — the :class:`InvariantChecker` contract
  (subscribe to trace categories and/or sample system state on a
  schedule) and the :class:`CheckerSuite` that manages a set of them;
- concrete checkers spanning the stack's layers:
  :mod:`~repro.checking.rpl` (DODAG acyclicity, rank monotonicity,
  delivered-path loop bounds), :mod:`~repro.checking.macradio` (radio
  state machine and collision accounting),
  :mod:`~repro.checking.coap` (at-most-once responses, retransmission
  bounds, Observe monotonicity), :mod:`~repro.checking.crdt` (lattice
  laws on live states, convergence after quiescence), and
  :mod:`~repro.checking.safety` (comfort envelope outside declared
  fault windows);
- :mod:`repro.checking.sweep` — the :class:`SeedSweepRunner` that runs
  a scenario across many seeds, asserts zero violations, and emits a
  minimal repro bundle on failure;
- :mod:`repro.checking.scenarios` — built-in fault scenarios
  (partition, RNFD root death) wired with checkers, shared by the
  integration tests and ``python -m repro sweep``.

Checkers are read-only observers: they never mutate protocol state,
never draw from the simulation's RNG, and never emit into the shared
:class:`~repro.sim.trace.TraceLog` — so a run with checkers enabled
produces exactly the trace the same seed produces without them.
"""

from repro.checking.availability import (
    AvailabilityChecker,
    reachable_fraction,
    service_availability,
)
from repro.checking.base import (
    CheckerSuite,
    FaultWindowMixin,
    InvariantChecker,
    Violation,
)
from repro.checking.coap import CoapExchangeChecker
from repro.checking.crdt import CrdtLatticeChecker
from repro.checking.macradio import CollisionAccountingChecker, RadioStateChecker
from repro.checking.rpl import DeliveredPathChecker, DodagStructureChecker
from repro.checking.safety import ComfortEnvelopeChecker
from repro.checking.sweep import (
    InvariantViolationError,
    ReproBundle,
    SeedSweepRunner,
    SweepOutcome,
)

__all__ = [
    "AvailabilityChecker",
    "CheckerSuite",
    "CoapExchangeChecker",
    "CollisionAccountingChecker",
    "ComfortEnvelopeChecker",
    "CrdtLatticeChecker",
    "DeliveredPathChecker",
    "DodagStructureChecker",
    "FaultWindowMixin",
    "InvariantChecker",
    "InvariantViolationError",
    "RadioStateChecker",
    "ReproBundle",
    "SeedSweepRunner",
    "SweepOutcome",
    "Violation",
    "default_suite",
    "reachable_fraction",
    "service_availability",
]


def default_suite(system) -> CheckerSuite:
    """The standard cross-layer checker set for an ``IIoTSystem``.

    Application-level checkers (CRDT, safety) observe objects the
    application wires up, so scenarios add those to the returned suite
    themselves via :meth:`CheckerSuite.add`.
    """
    suite = CheckerSuite(system.sim, system.trace)
    routers = {nid: node.stack.rpl for nid, node in system.nodes.items()}
    nodes = system.nodes
    suite.add(DodagStructureChecker(routers,
                                    alive=lambda nid: nodes[nid].alive))
    suite.add(DeliveredPathChecker(node_count=len(system.nodes)))
    suite.add(RadioStateChecker(system.medium))
    suite.add(CollisionAccountingChecker(system.medium))
    suite.add(CoapExchangeChecker())
    return suite
