"""Built-in sweep scenarios: fault scripts under full invariant checking.

Each scenario is a pure function of its seed with the signature the
:class:`~repro.checking.sweep.SeedSweepRunner` expects: build a system
with ``invariant_checking=True``, drive a fault script, return the
:class:`~repro.checking.base.CheckerSuite`.  They cover the two fault
families the paper leans on hardest — network partitions (§V-C) and
border-router failure under RNFD (E5) — so sweeping them across seeds
exercises every layer's checkers against the nastiest schedules the
deterministic kernel can produce.

Kept out of ``repro.checking.__init__`` on purpose: scenarios import
half the codebase (system, CRDTs, faults), and the checking package must
stay importable from :mod:`repro.core.system` without cycles.
"""

from __future__ import annotations

from repro.checking.availability import AvailabilityChecker
from repro.checking.base import CheckerSuite
from repro.checking.crdt import CrdtLatticeChecker
from repro.checking.safety import ComfortEnvelopeChecker
from repro.core.system import IIoTSystem, SystemConfig
from repro.crdt.maps import LWWMap
from repro.crdt.replication import AntiEntropyConfig, CrdtReplica, NetworkReplicator
from repro.deployment.topology import grid_topology
from repro.devices.phenomena import DiurnalField
from repro.devices.sensors import SensorFault
from repro.faults.injector import FaultInjector
from repro.faults.partitions import GeometricPartition, PartitionController
from repro.faults.plan import FaultPlan
from repro.net.mac.tsch import TschConfig
from repro.net.rpl.dodag import RplConfig
from repro.net.rpl.rnfd import RnfdConfig
from repro.net.stack import StackConfig
from repro.safety.comfort import ComfortBand, OccupancySchedule
from repro.safety.controllers import BangBangController
from repro.safety.hvac import HvacZone, RemoteControlLoop, RemoteHvacController

#: The vertical cut used by :func:`partition_crdt_scenario` on grid(3)
#: (columns at x = 0, 20, 40 m): two columns left, one right.
_CUT_X = 30.0


def partition_crdt_scenario(seed: int) -> CheckerSuite:
    """Partition a gossiping CRDT deployment, write on both sides, heal.

    Stresses: RPL repair across the cut, CRDT lattice laws under
    concurrent divergent writes, and convergence after the heal.
    """
    config = SystemConfig(
        stack=StackConfig(mac="csma"),
        invariant_checking=True,
    )
    system = IIoTSystem.build(grid_topology(3), config=config, seed=seed)
    suite = system.checkers
    crdt_checker = CrdtLatticeChecker(period_s=60.0)
    suite.add(crdt_checker)

    system.start()
    system.run(180.0)

    stacks = [node.stack for node in system.nodes.values()]
    replicas = [
        crdt_checker.watch(CrdtReplica(s.node_id, LWWMap(s.node_id)))
        for s in stacks
    ]
    replicators = [
        NetworkReplicator(s, r, AntiEntropyConfig(period_s=15.0))
        for s, r in zip(stacks, replicas)
    ]
    for replicator in replicators:
        replicator.start()
    system.run(60.0)

    cutter = PartitionController(system.sim, system.medium, system.trace)
    cutter.apply(GeometricPartition(cut_x=_CUT_X))
    # Divergent writes on both sides of the cut (distinct keys, so the
    # converged value is the union regardless of LWW tie-breaking).
    for stack, replica in zip(stacks, replicas):
        side = "left" if stack.radio.position[0] < _CUT_X else "right"
        replica.mutate(
            lambda s, side=side, nid=stack.node_id:
            s.set(f"setpoint/{side}", float(nid), system.sim.now)
        )
    for _stack, replicator in zip(stacks, replicators):
        replicator.notify_local_update()
    system.run(120.0)

    cutter.heal()
    system.run(240.0)  # anti-entropy quiesces; convergence checked at finish
    return suite


def rnfd_root_failure_scenario(seed: int) -> CheckerSuite:
    """Crash the border router under RNFD; let it recover and re-root.

    Stresses: RNFD's collective sink-failure verdict, DODAG collapse and
    poisoning, floating-DODAG formation, and re-join after recovery —
    the regime with the highest historical risk of routing loops.
    """
    config = SystemConfig(
        stack=StackConfig(
            mac="csma",
            rnfd_enabled=True,
            rnfd=RnfdConfig(probe_period_s=10.0),
            rpl=RplConfig(dao_period_s=60.0),
        ),
        invariant_checking=True,
    )
    system = IIoTSystem.build(grid_topology(3), config=config, seed=seed)
    suite = system.checkers

    system.start()
    system.run(240.0)

    injector = FaultInjector(system.sim, system.nodes, system.trace)
    injector.crash_at(system.sim.now + 10.0, system.topology.root_id,
                      recover_after=300.0)
    system.run(700.0)
    return suite


def hvac_safety_scenario(seed: int) -> CheckerSuite:
    """Remote-controlled HVAC zones through a declarative fault plan.

    Two zones are remote-controlled from the border router with a
    watchdog fallback; a :class:`~repro.faults.plan.FaultPlan` then
    crashes a zone node, partitions a zone away from its controller,
    sticks a zone sensor, and kills the border router.  The comfort
    envelope must hold *outside* the plan's declared fault windows —
    comfort lost while the system is healthy is a control bug.
    """
    config = SystemConfig(
        # RNFD so the border-router kill is *detected* (poisoned ranks)
        # rather than leaving stale ranks to trip the DODAG checker.
        stack=StackConfig(
            mac="csma",
            rnfd_enabled=True,
            rnfd=RnfdConfig(probe_period_s=10.0),
            rpl=RplConfig(dao_period_s=60.0),
        ),
        invariant_checking=True,
        observability=True,
    )
    system = IIoTSystem.build(grid_topology(3), config=config, seed=seed)
    suite = system.checkers

    system.start()
    system.run(240.0)

    band = ComfortBand(20.0, 23.0)
    schedule = OccupancySchedule([(8.0, 18.0, 8)])
    outside = DiurnalField(mean=4.0, amplitude=6.0, gradient_per_m=0.0,
                           phase_s=-6 * 3600.0)
    controller = RemoteHvacController(system.root, trace=system.trace)
    zones = []
    loops = []
    for node_id in (4, 8):  # one per eventual partition side
        zone = HvacZone(system.nodes[node_id],
                        lambda t: outside.value_at(t, (0.0, 0.0)),
                        band, schedule=schedule, initial_temp_c=21.5)
        controller.manage(zone.name, BangBangController(band))
        loop = RemoteControlLoop(zone, system.topology.root_id,
                                 fallback_timeout_s=300.0)
        zone.start()
        loop.start()
        zones.append(zone)
        loops.append(loop)

    comfort = ComfortEnvelopeChecker(period_s=60.0, margin_c=1.0,
                                     settle_s=system.sim.now + 1800.0)
    for zone in zones:
        comfort.watch_zone(zone)
    suite.add(comfort)
    system.run(1800.0)

    start = system.sim.now
    plan = (
        FaultPlan()
        .crash(start + 600.0, 4, recover_after_s=900.0)
        .partition(start + 3600.0, cut_x=_CUT_X, heal_after_s=1800.0)
        .sensor_fault(start + 7200.0, 8, "zone_temp", SensorFault.STUCK,
                      clear_after_s=900.0)
        .kill_border_router(start + 9000.0, recover_after_s=600.0)
    )
    # Rooms re-heat far slower than networks re-join.
    plan.declare_windows(comfort, grace_s=1800.0)
    plan.install(system)
    system.run(12_000.0)
    return suite


def availability_probe_scenario(seed: int) -> CheckerSuite:
    """Service availability through a partition/crash cycle.

    The border router plus a standby endpoint on the far side of the
    cut keep both partition halves served, so service availability —
    the taxonomy's availability axis — stays near 1.0 while raw
    delivery through the cut collapses.  A brief standby-endpoint crash
    inside the partition window is the genuine (declared) downtime.
    """
    config = SystemConfig(
        stack=StackConfig(mac="csma"),
        invariant_checking=True,
        observability=True,
    )
    system = IIoTSystem.build(grid_topology(3), config=config, seed=seed)
    suite = system.checkers

    system.start()
    system.run(300.0)

    start = system.sim.now
    standby = 8  # right of _CUT_X on grid(3)
    plan = (
        FaultPlan()
        .partition(start + 60.0, cut_x=_CUT_X, heal_after_s=600.0)
        .crash(start + 120.0, 5, recover_after_s=300.0)
        .crash(start + 180.0, standby, recover_after_s=240.0)
    )
    runtime = plan.install(system)
    availability = AvailabilityChecker(
        system,
        endpoints=[system.topology.root_id, standby],
        period_s=15.0,
        floor=0.6,
        settle_s=start,
        partitions=runtime.partitions,
    )
    plan.declare_windows(availability, grace_s=60.0)
    suite.add(availability)

    system.run(900.0)
    return suite


def random_crashes_scenario(seed: int) -> CheckerSuite:
    """A bounded stochastic crash/repair storm over the whole fleet.

    The :meth:`~repro.faults.plan.FaultPlan.random_crashes` clause runs
    exponential MTBF/MTTR cycles (root spared) inside a declared fault
    window, then drains — every node is repaired at the window's edge.
    Unlike the scripted scenarios above, the *fault schedule itself* is
    seed-dependent, so sweeping seeds explores genuinely different
    crash interleavings against the same invariants: routing state must
    stay loop-free through arbitrary departures, and the fleet must
    re-join after the storm.
    """
    config = SystemConfig(
        stack=StackConfig(
            mac="csma",
            rpl=RplConfig(dao_period_s=60.0),
        ),
        invariant_checking=True,
        observability=True,
    )
    system = IIoTSystem.build(grid_topology(3), config=config, seed=seed)
    suite = system.checkers

    system.start()
    system.run(240.0)

    start = system.sim.now
    plan = (
        FaultPlan()
        .random_crashes(start + 60.0, duration_s=900.0,
                        mtbf_s=1800.0, mttr_s=120.0, spare_root=True)
    )
    # Stale routing state *during* the storm is a fault consequence;
    # the checkers still demand a clean fleet after window + grace
    # (grace covers DAO refresh, one period plus persistence slack).
    for checker in suite.checkers:
        if hasattr(checker, "declare_fault_window"):
            plan.declare_windows(checker, grace_s=180.0)
    plan.install(system)
    system.run(1200.0)  # storm (960 s past start) + re-join settle
    return suite


def tsch_dependability_scenario(seed: int) -> CheckerSuite:
    """The partition + border-router built-ins, over the scheduled MAC.

    Same fault moves as :func:`partition_crdt_scenario` and
    :func:`rnfd_root_failure_scenario`, but the whole fleet runs TSCH
    with an adaptive Trickle variant — the point being that *no checker
    changes*: the invariants are MAC-agnostic, and the scheduled stack
    (slotframe alignment, 6P cell negotiation, shared-cell contention)
    must satisfy them through a partition and a root kill exactly as
    CSMA does.  RNFD probes are paced down to fit the single shared
    minimal cell's broadcast capacity (~1 frame/slotframe).
    """
    config = SystemConfig(
        stack=StackConfig(
            mac="tsch",
            # A short (still prime) slotframe: ~4 shared broadcasts/s
            # instead of 1, sized so nine nodes' worth of DIO/RNFD
            # traffic propagates faster than the checkers' staleness
            # persistence windows.  Trades idle duty (~4%) for control
            # -plane headroom, as a dense industrial cell would.
            mac_config=TschConfig(slotframe_slots=23),
            rnfd_enabled=True,
            rnfd=RnfdConfig(probe_period_s=30.0),
            rpl=RplConfig(dao_period_s=120.0,
                          trickle_variant="adaptive-imin"),
        ),
        invariant_checking=True,
    )
    system = IIoTSystem.build(grid_topology(3), config=config, seed=seed)
    suite = system.checkers

    system.start()
    # Scheduled-MAC formation is slower than CSMA: broadcasts share one
    # minimal cell, and unicast paths wait on 6P cell negotiation.
    system.run(600.0)

    start = system.sim.now
    plan = (
        FaultPlan()
        .partition(start + 60.0, cut_x=_CUT_X, heal_after_s=600.0)
        .kill_border_router(start + 1500.0, recover_after_s=600.0)
    )
    # Re-join over TSCH pays slotframe rendezvous plus renegotiated
    # cells on every repaired path; the windows get matching grace.
    for checker in suite.checkers:
        if hasattr(checker, "declare_fault_window"):
            plan.declare_windows(checker, grace_s=600.0)
    plan.install(system)
    system.run(3300.0)
    return suite


#: name -> scenario, for the CLI and the integration sweep.
BUILTIN_SCENARIOS = {
    "partition-crdt": partition_crdt_scenario,
    "rnfd-root-failure": rnfd_root_failure_scenario,
    "hvac-safety": hvac_safety_scenario,
    "availability-probe": availability_probe_scenario,
    "random-crashes": random_crashes_scenario,
    "tsch-dependability": tsch_dependability_scenario,
}
