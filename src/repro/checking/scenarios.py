"""Built-in sweep scenarios: fault scripts under full invariant checking.

Each scenario is a pure function of its seed with the signature the
:class:`~repro.checking.sweep.SeedSweepRunner` expects: build a system
with ``invariant_checking=True``, drive a fault script, return the
:class:`~repro.checking.base.CheckerSuite`.  They cover the two fault
families the paper leans on hardest — network partitions (§V-C) and
border-router failure under RNFD (E5) — so sweeping them across seeds
exercises every layer's checkers against the nastiest schedules the
deterministic kernel can produce.

Kept out of ``repro.checking.__init__`` on purpose: scenarios import
half the codebase (system, CRDTs, faults), and the checking package must
stay importable from :mod:`repro.core.system` without cycles.
"""

from __future__ import annotations

from repro.checking.base import CheckerSuite
from repro.checking.crdt import CrdtLatticeChecker
from repro.core.system import IIoTSystem, SystemConfig
from repro.crdt.maps import LWWMap
from repro.crdt.replication import AntiEntropyConfig, CrdtReplica, NetworkReplicator
from repro.deployment.topology import grid_topology
from repro.faults.injector import FaultInjector
from repro.faults.partitions import GeometricPartition, PartitionController
from repro.net.rpl.dodag import RplConfig
from repro.net.rpl.rnfd import RnfdConfig
from repro.net.stack import StackConfig

#: The vertical cut used by :func:`partition_crdt_scenario` on grid(3)
#: (columns at x = 0, 20, 40 m): two columns left, one right.
_CUT_X = 30.0


def partition_crdt_scenario(seed: int) -> CheckerSuite:
    """Partition a gossiping CRDT deployment, write on both sides, heal.

    Stresses: RPL repair across the cut, CRDT lattice laws under
    concurrent divergent writes, and convergence after the heal.
    """
    config = SystemConfig(
        stack=StackConfig(mac="csma"),
        invariant_checking=True,
    )
    system = IIoTSystem.build(grid_topology(3), config=config, seed=seed)
    suite = system.checkers
    crdt_checker = CrdtLatticeChecker(period_s=60.0)
    suite.add(crdt_checker)

    system.start()
    system.run(180.0)

    stacks = [node.stack for node in system.nodes.values()]
    replicas = [
        crdt_checker.watch(CrdtReplica(s.node_id, LWWMap(s.node_id)))
        for s in stacks
    ]
    replicators = [
        NetworkReplicator(s, r, AntiEntropyConfig(period_s=15.0))
        for s, r in zip(stacks, replicas)
    ]
    for replicator in replicators:
        replicator.start()
    system.run(60.0)

    cutter = PartitionController(system.sim, system.medium, system.trace)
    cutter.apply(GeometricPartition(cut_x=_CUT_X))
    # Divergent writes on both sides of the cut (distinct keys, so the
    # converged value is the union regardless of LWW tie-breaking).
    for stack, replica in zip(stacks, replicas):
        side = "left" if stack.radio.position[0] < _CUT_X else "right"
        replica.mutate(
            lambda s, side=side, nid=stack.node_id:
            s.set(f"setpoint/{side}", float(nid), system.sim.now)
        )
    for _stack, replicator in zip(stacks, replicators):
        replicator.notify_local_update()
    system.run(120.0)

    cutter.heal()
    system.run(240.0)  # anti-entropy quiesces; convergence checked at finish
    return suite


def rnfd_root_failure_scenario(seed: int) -> CheckerSuite:
    """Crash the border router under RNFD; let it recover and re-root.

    Stresses: RNFD's collective sink-failure verdict, DODAG collapse and
    poisoning, floating-DODAG formation, and re-join after recovery —
    the regime with the highest historical risk of routing loops.
    """
    config = SystemConfig(
        stack=StackConfig(
            mac="csma",
            rnfd_enabled=True,
            rnfd=RnfdConfig(probe_period_s=10.0),
            rpl=RplConfig(dao_period_s=60.0),
        ),
        invariant_checking=True,
    )
    system = IIoTSystem.build(grid_topology(3), config=config, seed=seed)
    suite = system.checkers

    system.start()
    system.run(240.0)

    injector = FaultInjector(system.sim, system.nodes, system.trace)
    injector.crash_at(system.sim.now + 10.0, system.topology.root_id,
                      recover_after=300.0)
    system.run(700.0)
    return suite


#: name -> scenario, for the CLI and the integration sweep.
BUILTIN_SCENARIOS = {
    "partition-crdt": partition_crdt_scenario,
    "rnfd-root-failure": rnfd_root_failure_scenario,
}
