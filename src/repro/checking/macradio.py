"""MAC/radio invariants: transceiver state machine and medium accounting.

- :class:`RadioStateChecker` — every ``radio.tx`` record must come from
  an enabled radio that is actually in the TX state (a node whose radio
  claims to sleep, or that has crashed, must not put energy on the air),
  and at end of run each radio's ``frames_sent`` counter must agree with
  the number of ``radio.tx`` records it produced.
- :class:`CollisionAccountingChecker` — the medium may only report a
  collision at a receiver when some *other* transmission actually
  overlapped the collided frame's airtime; a collision without a
  concurrent transmitter means the medium model double-counted.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from repro.checking.base import InvariantChecker
from repro.radio.medium import (
    BITRATE_BPS,
    Medium,
    PHY_OVERHEAD_BYTES,
    RadioState,
)
from repro.sim.trace import TraceRecord

#: Tolerance when matching a collision instant to a frame's end time.
_TIME_EPS = 1e-9


def _airtime(size_bytes: int) -> float:
    return (PHY_OVERHEAD_BYTES + size_bytes) * 8 / BITRATE_BPS


class RadioStateChecker(InvariantChecker):
    """Transmissions must match the transmitter's claimed state."""

    name = "radio.state"

    def __init__(self, medium: Medium) -> None:
        super().__init__()
        self.medium = medium
        self._tx_seen: Dict[int, int] = {}
        self._baseline: Dict[int, int] = {}

    def _setup(self) -> None:
        # Radios may already have transmitted before we attached; count
        # only what we observe from here on.
        self._baseline = {
            nid: radio.frames_sent for nid, radio in self.medium.radios.items()
        }
        self.subscribe("radio.tx", self._on_tx)

    def _on_tx(self, record: TraceRecord) -> None:
        node = record.node
        self._tx_seen[node] = self._tx_seen.get(node, 0) + 1
        radio = self.medium.radios.get(node)
        if radio is None:
            self.record("tx_from_unknown_radio", node=node)
            return
        if not radio.enabled:
            self.record("tx_while_disabled", node=node)
        elif radio.state is not RadioState.TX:
            # The medium enters TX before tracing; a record emitted with
            # the radio in SLEEP/LISTEN is a transmit the state machine
            # never authorized.
            self.record("tx_while_not_transmitting", node=node,
                        claimed_state=radio.state.value)

    def finish(self) -> None:
        for nid, radio in self.medium.radios.items():
            # A radio attached after us has no baseline: its whole
            # counter is in-scope.
            expected = self._baseline.get(nid, 0) + self._tx_seen.get(nid, 0)
            if radio.frames_sent != expected:
                self.record("tx_count_mismatch", node=nid,
                            counter=radio.frames_sent, traced=expected)


class CollisionAccountingChecker(InvariantChecker):
    """Every reported collision needs an actual overlapping transmission.

    The checker reconstructs frame airtimes from ``radio.tx`` records
    (size → airtime at the 802.15.4 PHY rate) and, for each
    ``radio.collision`` at a receiver, demands at least one other
    transmission — from neither the collided frame's sender nor the
    receiver itself — whose airtime overlapped the collided frame's.
    Channel is deliberately ignored: wide-band jammers interfere across
    channels, so time overlap is the sound necessary condition.
    """

    name = "radio.collision"

    def __init__(self, medium: Medium, window_s: float = 1.0) -> None:
        super().__init__()
        self.medium = medium
        self.window_s = window_s
        #: (sender, start, end) of recently observed transmissions.
        self._recent: Deque[Tuple[int, float, float]] = deque()
        self.collisions_checked = 0

    def _setup(self) -> None:
        self.subscribe("radio.tx", self._on_tx)
        self.subscribe("radio.collision", self._on_collision)

    def _on_tx(self, record: TraceRecord) -> None:
        start = record.time
        end = start + _airtime(record.data.get("size", 0))
        self._recent.append((record.node, start, end))
        horizon = start - self.window_s
        while self._recent and self._recent[0][2] < horizon:
            self._recent.popleft()

    def _on_collision(self, record: TraceRecord) -> None:
        self.collisions_checked += 1
        receiver = record.node
        sender = record.data.get("sender")
        now = record.time
        # The collided frame: sender's transmission ending right now
        # (delivery attempts happen at frame end).
        collided = None
        for tx_sender, start, end in reversed(self._recent):
            if tx_sender == sender and abs(end - now) <= _TIME_EPS:
                collided = (start, end)
                break
        if collided is None:
            self.record("collision_without_transmission", node=receiver,
                        sender=sender)
            return
        start, end = collided
        for tx_sender, other_start, other_end in self._recent:
            if tx_sender in (sender, receiver):
                continue
            if other_start < end and other_end > start:
                return  # a genuine interferer overlapped
        self.record("collision_without_interferer", node=receiver,
                    sender=sender, frame_start=start, frame_end=end)
