"""``python -m repro dependability`` — the dependability gate.

Runs the two fault-plan scenarios (:func:`hvac_safety_scenario`,
:func:`availability_probe_scenario`) at a fixed seed, summarizes their
fault-aware checkers, and exits nonzero when either scenario records a
violation or the taxonomy's availability axis grades to zero.  With
``--export`` the summary is written as a focused
``repro.metrics/1`` snapshot — ``dependability.*`` gauges plus the run's
``fault.injected`` counters — which ``make check-dependability`` diffs
against a committed baseline with ``python -m repro diff --fail-on``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Tuple

from repro.checking.availability import AvailabilityChecker
from repro.checking.base import CheckerSuite, Violation
from repro.checking.safety import ComfortEnvelopeChecker
from repro.core.taxonomy import availability_score
from repro.obs.registry import Registry

#: The gate's fixed seed: the snapshot it exports must be byte-stable.
GATE_SEED = 2018


def _run_scenario(name: str, scenario, seed: int,
                  registry: Registry) -> Tuple[List[Violation], CheckerSuite]:
    """One scenario run, summarized into ``registry``."""
    suite = scenario(seed)
    violations = suite.finish()
    suite.detach()

    registry.set("dependability.violations", float(len(violations)),
                 scenario=name)
    for checker in suite.checkers:
        if isinstance(checker, AvailabilityChecker):
            registry.set("dependability.availability.mean",
                         round(checker.mean_availability(), 6), scenario=name)
            registry.set("dependability.availability.min",
                         round(checker.min_availability(), 6), scenario=name)
            registry.set("dependability.availability.reachable_mean",
                         round(checker.mean_reachable(), 6), scenario=name)
            registry.set("dependability.availability.score",
                         round(availability_score(checker.mean_availability()), 6),
                         scenario=name)
        elif isinstance(checker, ComfortEnvelopeChecker):
            registry.set("dependability.comfort.samples",
                         float(checker.samples), scenario=name)
            registry.set("dependability.comfort.fault_windows",
                         float(len(checker.fault_windows)), scenario=name)

    # Carry the run's fault telemetry into the gated snapshot, labeled
    # by scenario, so a plan edit that changes what gets injected fails
    # the exact-diff even when every checker stays clean.
    obs = getattr(suite.trace, "obs", None)
    if obs is not None:
        for key, value in sorted(obs.registry.snapshot().counters.items(),
                                 key=repr):
            metric_name, labels = key
            if metric_name == "fault.injected":
                registry.counter(metric_name, scenario=name,
                                 **dict(labels)).inc(value)
    return violations, suite


def dependability_main(argv=None) -> int:
    from repro.checking.scenarios import (
        availability_probe_scenario,
        hvac_safety_scenario,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro dependability",
        description="Run the fault-plan dependability scenarios and gate "
                     "on violations and the taxonomy availability axis.",
    )
    parser.add_argument("--seed", type=int, default=GATE_SEED,
                        help=f"scenario seed (default: {GATE_SEED})")
    parser.add_argument("--export", metavar="PATH",
                        help="write the summary metrics snapshot "
                             "(repro.metrics/1 JSON) to PATH")
    parser.add_argument("--span-sample-rate", type=float, default=None,
                        metavar="RATE",
                        help="store only this fraction of span traces "
                             "(0..1; metrics stay exact). Gated runs "
                             "(REPRO_BENCH_CHECK=1, as exported by "
                             "`make check-dependability`) force full "
                             "fidelity regardless.")
    parser.add_argument("--span-max-stored", type=int, default=None,
                        metavar="N",
                        help="ring-buffer bound on stored spans "
                             "(gated categories never evicted; ignored "
                             "under gated runs)")
    args = parser.parse_args(argv)
    if args.span_sample_rate is not None and not 0.0 <= args.span_sample_rate <= 1.0:
        parser.error("--span-sample-rate must be in [0, 1]")
    # The environment is the channel Observability reads at construction
    # (and the only one that reaches worker processes); mirrors the
    # sweep/report CLIs.
    import os
    if args.span_sample_rate is not None:
        os.environ["REPRO_SPAN_SAMPLE_RATE"] = repr(args.span_sample_rate)
    if args.span_max_stored is not None:
        os.environ["REPRO_SPAN_MAX_STORED"] = str(args.span_max_stored)

    registry = Registry()
    failed = False
    scenarios = [
        ("hvac-safety", hvac_safety_scenario),
        ("availability-probe", availability_probe_scenario),
    ]
    availability: Optional[float] = None
    for name, scenario in scenarios:
        violations, suite = _run_scenario(name, scenario, args.seed, registry)
        verdict = "OK" if not violations else f"{len(violations)} VIOLATION(S)"
        print(f"{name}: seed {args.seed}, {verdict}")
        for violation in violations[:10]:
            failed = True
            print(f"  {violation}")
        for checker in suite.checkers:
            if isinstance(checker, AvailabilityChecker):
                availability = checker.mean_availability()
                print(f"  service availability: mean "
                      f"{availability:.4f}, min "
                      f"{checker.min_availability():.4f}, reachable mean "
                      f"{checker.mean_reachable():.4f}")

    if availability is None:
        print("availability axis: NOT MEASURED")
        failed = True
    else:
        score = availability_score(availability)
        print(f"availability axis score: {score:.3f} "
              f"(grade anchors: 0.999 good, 0.900 bad)")
        if score <= 0.0:
            print("availability axis grades to zero — gate FAILED")
            failed = True

    if args.export:
        from repro.obs.export import write_metrics_json
        series = write_metrics_json(registry.snapshot(), args.export)
        print(f"exported {series} series -> {args.export}")

    return 1 if failed else 0
