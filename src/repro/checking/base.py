"""The invariant-checker contract and the suite that manages checkers.

An :class:`InvariantChecker` watches a running simulation and records
:class:`Violation` structures when a cross-layer property breaks.  Two
observation styles are supported, and most checkers combine them:

- **event-driven** — :meth:`InvariantChecker.subscribe` attaches a
  callback to a :class:`~repro.sim.trace.TraceLog` category;
- **sampled** — :meth:`InvariantChecker.sample_every` runs a probe on a
  fixed schedule against live component state.

Checkers must be *transparent*: they never mutate the system under
observation, never draw from the simulator's RNG (sampling periods are
fixed, not jittered), and never emit trace records.  Under those rules a
run with checkers attached produces byte-identical traces to the same
seed without them, so enabling checking cannot change what is being
checked — the property the determinism regression tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.trace import TraceLog, TraceRecord


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach.

    Attributes
    ----------
    time:
        Simulated time the breach was observed.
    checker:
        Name of the checker that recorded it.
    invariant:
        Short identifier of the broken property, e.g. ``"dodag_cycle"``.
    node:
        Offending node id, or None for system-wide properties.
    detail:
        State snapshot captured at detection time (free-form, but small
        enough to print in a repro bundle).
    """

    time: float
    checker: str
    invariant: str
    node: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        where = f" node={self.node}" if self.node is not None else ""
        extras = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return (f"[t={self.time:.3f}] {self.checker}/{self.invariant}"
                f"{where} {extras}".rstrip())


class _Sampler:
    """A fixed-period repeating probe (no jitter: determinism)."""

    def __init__(self, sim: Simulator, period_s: float,
                 probe: Callable[[], None]) -> None:
        if period_s <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.period_s = period_s
        self.probe = probe
        self._handle: Optional[EventHandle] = None
        self._arm()

    def _arm(self) -> None:
        self._handle = self.sim.schedule(self.period_s, self._tick)

    def _tick(self) -> None:
        self.probe()
        self._arm()

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class FaultWindowMixin:
    """Declared fault windows: periods where breaches are *expected*.

    Fault-aware checkers (comfort envelope, service availability) mix
    this in so a scenario — or a
    :class:`~repro.faults.plan.FaultPlan` via
    :meth:`~repro.faults.plan.FaultPlan.declare_windows` — can tell them
    when something is deliberately broken.  Excursions inside a declared
    window are fault consequences; the same excursion outside one is a
    genuine violation.

    State is created lazily so the mixin composes with any
    ``__init__`` ordering.
    """

    def _windows(self) -> List[tuple]:
        return self.__dict__.setdefault("_fault_windows", [])

    def declare_fault_window(self, start_s: float, end_s: float,
                             grace_s: float = 0.0) -> None:
        """Declare [start, end + grace] as a period where breaches are
        expected; ``grace_s`` covers recovery after the fault clears
        (rooms re-heat slower than networks re-join)."""
        if end_s < start_s:
            raise ValueError("fault window must not end before it starts")
        self._windows().append((start_s, end_s + grace_s))

    def in_fault_window(self, time_s: float) -> bool:
        return any(start <= time_s <= end for start, end in self._windows())

    @property
    def fault_windows(self) -> List[tuple]:
        """The declared (start, end-including-grace) windows."""
        return list(self._windows())


class InvariantChecker:
    """Base class for runtime invariant checkers.

    Subclasses set :attr:`name`, override :meth:`_setup` to register
    subscriptions and samplers, and optionally override :meth:`finish`
    for end-of-run properties (convergence, counter reconciliation).
    They report breaches through :meth:`record`.
    """

    #: Dotted checker name, used in violation records.
    name = "checker"

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.sim: Optional[Simulator] = None
        self.trace: Optional[TraceLog] = None
        self._unsubscribes: List[Callable[[], None]] = []
        self._samplers: List[_Sampler] = []
        self._attached = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator, trace: TraceLog) -> "InvariantChecker":
        """Bind to a running simulation and begin observing."""
        if self._attached:
            raise RuntimeError(f"checker {self.name} already attached")
        self.sim = sim
        self.trace = trace
        self._attached = True
        self._setup()
        return self

    def detach(self) -> None:
        """Stop observing: drop subscriptions and cancel samplers.

        Recorded violations are kept; the checker can be inspected after
        detach but not re-attached.
        """
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        for sampler in self._samplers:
            sampler.cancel()
        self._samplers.clear()

    def _setup(self) -> None:
        """Subclass hook: register subscriptions and samplers."""

    def finish(self) -> None:
        """Subclass hook: end-of-run checks (called once by the suite)."""

    # ------------------------------------------------------------------
    # observation primitives
    # ------------------------------------------------------------------
    def subscribe(self, category: str,
                  callback: Callable[[TraceRecord], None]) -> None:
        """Watch a trace category; automatically dropped on detach."""
        assert self.trace is not None, "attach() first"
        self._unsubscribes.append(self.trace.subscribe(category, callback))

    def sample_every(self, period_s: float, probe: Callable[[], None]) -> None:
        """Run ``probe`` every ``period_s`` simulated seconds."""
        assert self.sim is not None, "attach() first"
        self._samplers.append(_Sampler(self.sim, period_s, probe))

    def record(self, invariant: str, node: Optional[int] = None,
               **detail: Any) -> Violation:
        """Record one violation (never raises: the run continues so the
        sweep harness can collect every breach, not just the first)."""
        assert self.sim is not None, "attach() first"
        violation = Violation(
            time=self.sim.now, checker=self.name, invariant=invariant,
            node=node, detail=detail,
        )
        self.violations.append(violation)
        obs = self.trace.obs if self.trace is not None else None
        recorder = getattr(obs, "recorder", None)
        if recorder is not None:
            # Flight-recorder trigger: freeze the telemetry windows and
            # pinned spans leading up to this breach (repro.obs.recorder).
            recorder.on_violation(violation)
        return violation

    @property
    def clean(self) -> bool:
        return not self.violations


class CheckerSuite:
    """A set of checkers attached to one simulation run."""

    def __init__(self, sim: Simulator, trace: TraceLog) -> None:
        self.sim = sim
        self.trace = trace
        self.checkers: List[InvariantChecker] = []
        self._finished = False

    def add(self, checker: InvariantChecker) -> InvariantChecker:
        """Attach ``checker`` to this run and manage its lifecycle."""
        checker.attach(self.sim, self.trace)
        self.checkers.append(checker)
        return checker

    def finish(self) -> List[Violation]:
        """Run end-of-run checks once and return all violations."""
        if not self._finished:
            self._finished = True
            for checker in self.checkers:
                checker.finish()
        return self.violations

    def detach(self) -> None:
        for checker in self.checkers:
            checker.detach()

    @property
    def violations(self) -> List[Violation]:
        """All recorded violations, ordered by simulated time."""
        collected: List[Violation] = []
        for checker in self.checkers:
            collected.extend(checker.violations)
        collected.sort(key=lambda v: v.time)
        return collected

    @property
    def clean(self) -> bool:
        return all(checker.clean for checker in self.checkers)

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing every violation, if any."""
        violations = self.violations
        if violations:
            listing = "\n".join(str(v) for v in violations)
            raise AssertionError(
                f"{len(violations)} invariant violation(s):\n{listing}"
            )
