"""Topology generators.

A :class:`Topology` is node id → position with a designated border
router.  Generators cover the deployment shapes the paper's scenarios
imply: lines (pipelines), grids (plant floors), uniform random fields,
clustered construction sites, and multi-floor buildings projected onto
the plane.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

Position = Tuple[float, float]


@dataclass
class Topology:
    """Node placements plus the border-router designation."""

    positions: Dict[int, Position]
    root_id: int = 0
    name: str = "topology"

    def __post_init__(self) -> None:
        if self.root_id not in self.positions:
            raise ValueError(f"root {self.root_id} has no position")

    @property
    def size(self) -> int:
        return len(self.positions)

    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    def connectivity_graph(self, radio_range_m: float) -> "nx.Graph":
        """Disk-model connectivity graph at the given range."""
        graph = nx.Graph()
        graph.add_nodes_from(self.positions)
        items = list(self.positions.items())
        for i, (a, pa) in enumerate(items):
            for b, pb in items[i + 1:]:
                if math.dist(pa, pb) <= radio_range_m:
                    graph.add_edge(a, b)
        return graph

    def is_connected(self, radio_range_m: float) -> bool:
        """Whether every node can reach the root at the given range."""
        graph = self.connectivity_graph(radio_range_m)
        return nx.is_connected(graph) if graph.number_of_nodes() > 0 else True

    def network_depth(self, radio_range_m: float) -> int:
        """Hop eccentricity of the root (the diameter that matters)."""
        graph = self.connectivity_graph(radio_range_m)
        lengths = nx.single_source_shortest_path_length(graph, self.root_id)
        return max(lengths.values()) if lengths else 0


def line_topology(n: int, spacing_m: float = 20.0) -> Topology:
    """A pipeline: nodes in a row, root at one end."""
    if n < 1:
        raise ValueError("n must be >= 1")
    positions = {i: (i * spacing_m, 0.0) for i in range(n)}
    return Topology(positions, root_id=0, name=f"line-{n}")


def grid_topology(side: int, spacing_m: float = 20.0) -> Topology:
    """A plant floor: ``side × side`` grid, root in a corner."""
    if side < 1:
        raise ValueError("side must be >= 1")
    positions = {}
    node_id = 0
    for y in range(side):
        for x in range(side):
            positions[node_id] = (x * spacing_m, y * spacing_m)
            node_id += 1
    return Topology(positions, root_id=0, name=f"grid-{side}x{side}")


def random_topology(
    n: int,
    area_m: float,
    radio_range_m: float = 25.0,
    seed: int = 0,
    max_attempts: int = 200,
) -> Topology:
    """Uniform random placement, resampled until connected.

    The root sits at the area's corner (a border router is at the
    building edge, not in the middle of the field).
    """
    rng = random.Random(seed)
    for _attempt in range(max_attempts):
        positions: Dict[int, Position] = {0: (0.0, 0.0)}
        for node_id in range(1, n):
            positions[node_id] = (
                rng.uniform(0, area_m), rng.uniform(0, area_m)
            )
        topology = Topology(positions, root_id=0, name=f"random-{n}")
        if topology.is_connected(radio_range_m):
            return topology
    raise RuntimeError(
        f"could not sample a connected topology: n={n}, area={area_m}, "
        f"range={radio_range_m}"
    )


def clustered_site_topology(
    clusters: int,
    nodes_per_cluster: int,
    cluster_spread_m: float = 15.0,
    site_span_m: float = 120.0,
    radio_range_m: float = 30.0,
    seed: int = 0,
) -> Topology:
    """A construction site: dense work-area clusters joined by relays.

    Cluster centers are placed on a line across the site with a relay
    chain guaranteed by the spacing; nodes scatter around their center.
    """
    if clusters < 1 or nodes_per_cluster < 1:
        raise ValueError("clusters and nodes_per_cluster must be >= 1")
    rng = random.Random(seed)
    positions: Dict[int, Position] = {0: (0.0, 0.0)}
    node_id = 1
    step = min(site_span_m / max(clusters, 1), radio_range_m * 0.8)
    for cluster in range(clusters):
        center = ((cluster + 1) * step, rng.uniform(-10.0, 10.0))
        for _ in range(nodes_per_cluster):
            positions[node_id] = (
                center[0] + rng.uniform(-cluster_spread_m, cluster_spread_m),
                center[1] + rng.uniform(-cluster_spread_m, cluster_spread_m),
            )
            node_id += 1
    return Topology(positions, root_id=0,
                    name=f"site-{clusters}x{nodes_per_cluster}")


@dataclass
class CampusTopology(Topology):
    """A multi-building district with one border-router domain each.

    ``domains`` maps building name → the node ids deployed in it;
    ``border_routers`` maps building name → the id of its border
    router.  ``root_id`` (node 0) is the district root: the first
    building's border router, through which inter-domain traffic
    transits to the cloud tier.
    """

    domains: Dict[str, List[int]] = field(default_factory=dict)
    border_routers: Dict[str, int] = field(default_factory=dict)

    def domain_of(self, node_id: int) -> Optional[str]:
        """The building a node belongs to (None for unknown ids)."""
        for name, members in self.domains.items():
            if node_id in members:
                return name
        return None


def campus_topology(
    buildings: int,
    nodes_per_building: int,
    building_span_m: float = 90.0,
    building_gap_m: float = 60.0,
    buildings_per_row: int = 4,
    jitter_m: float = 4.0,
    seed: int = 0,
) -> CampusTopology:
    """An industrial campus: a district of buildings, one domain each.

    Buildings are laid out row-major on a district grid, separated by
    ``building_gap_m`` of open ground.  Inside each building, nodes sit
    on a near-square grid spanning ``building_span_m``, jittered by up
    to ``jitter_m`` (deterministic in ``seed``) so link qualities are
    not artifacts of perfect alignment.  Node ids are contiguous per
    building — id locality mirrors spatial locality, which is also the
    honest (hardest) layout for caches keyed by id.  The first id of
    each block is the building's border router, placed at the building
    corner; node 0 doubles as the district root.

    Total size is exactly ``buildings * nodes_per_building``, so scale
    benchmarks can hit round node counts.
    """
    if buildings < 1 or nodes_per_building < 1:
        raise ValueError("buildings and nodes_per_building must be >= 1")
    rng = random.Random(seed)
    pitch = building_span_m + building_gap_m
    side = max(1, math.ceil(math.sqrt(nodes_per_building)))
    spacing = building_span_m / side
    positions: Dict[int, Position] = {}
    domains: Dict[str, List[int]] = {}
    border_routers: Dict[str, int] = {}
    node_id = 0
    for b in range(buildings):
        name = f"bldg-{b}"
        origin_x = (b % buildings_per_row) * pitch
        origin_y = (b // buildings_per_row) * pitch
        members: List[int] = []
        border_routers[name] = node_id
        for i in range(nodes_per_building):
            if i == 0:
                # The border router anchors the building corner exactly:
                # jitter would blur the domain entry point.
                pos = (origin_x, origin_y)
            else:
                pos = (
                    origin_x + (i % side) * spacing
                    + rng.uniform(-jitter_m, jitter_m),
                    origin_y + (i // side) * spacing
                    + rng.uniform(-jitter_m, jitter_m),
                )
            positions[node_id] = pos
            members.append(node_id)
            node_id += 1
        domains[name] = members
    return CampusTopology(
        positions, root_id=0,
        name=f"campus-{buildings}x{nodes_per_building}",
        domains=domains, border_routers=border_routers,
    )


def building_topology(
    floors: int,
    zones_per_floor: int,
    zone_spacing_m: float = 18.0,
    floor_spacing_m: float = 12.0,
) -> Topology:
    """An office building: zones along corridors, floors stacked.

    Projected onto the plane with floors as rows; the extra path loss of
    inter-floor slabs is approximated by the row spacing.
    """
    if floors < 1 or zones_per_floor < 1:
        raise ValueError("floors and zones_per_floor must be >= 1")
    positions: Dict[int, Position] = {0: (0.0, 0.0)}
    node_id = 1
    for floor in range(floors):
        for zone in range(zones_per_floor):
            positions[node_id] = (
                (zone + 1) * zone_spacing_m, floor * floor_spacing_m
            )
            node_id += 1
    return Topology(positions, root_id=0,
                    name=f"building-{floors}f-{zones_per_floor}z")
