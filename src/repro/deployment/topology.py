"""Topology generators.

A :class:`Topology` is node id → position with a designated border
router.  Generators cover the deployment shapes the paper's scenarios
imply: lines (pipelines), grids (plant floors), uniform random fields,
clustered construction sites, and multi-floor buildings projected onto
the plane.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

Position = Tuple[float, float]


@dataclass
class Topology:
    """Node placements plus the border-router designation."""

    positions: Dict[int, Position]
    root_id: int = 0
    name: str = "topology"

    def __post_init__(self) -> None:
        if self.root_id not in self.positions:
            raise ValueError(f"root {self.root_id} has no position")

    @property
    def size(self) -> int:
        return len(self.positions)

    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    def connectivity_graph(self, radio_range_m: float) -> "nx.Graph":
        """Disk-model connectivity graph at the given range."""
        graph = nx.Graph()
        graph.add_nodes_from(self.positions)
        items = list(self.positions.items())
        for i, (a, pa) in enumerate(items):
            for b, pb in items[i + 1:]:
                if math.dist(pa, pb) <= radio_range_m:
                    graph.add_edge(a, b)
        return graph

    def is_connected(self, radio_range_m: float) -> bool:
        """Whether every node can reach the root at the given range."""
        graph = self.connectivity_graph(radio_range_m)
        return nx.is_connected(graph) if graph.number_of_nodes() > 0 else True

    def network_depth(self, radio_range_m: float) -> int:
        """Hop eccentricity of the root (the diameter that matters)."""
        graph = self.connectivity_graph(radio_range_m)
        lengths = nx.single_source_shortest_path_length(graph, self.root_id)
        return max(lengths.values()) if lengths else 0


def line_topology(n: int, spacing_m: float = 20.0) -> Topology:
    """A pipeline: nodes in a row, root at one end."""
    if n < 1:
        raise ValueError("n must be >= 1")
    positions = {i: (i * spacing_m, 0.0) for i in range(n)}
    return Topology(positions, root_id=0, name=f"line-{n}")


def grid_topology(side: int, spacing_m: float = 20.0) -> Topology:
    """A plant floor: ``side × side`` grid, root in a corner."""
    if side < 1:
        raise ValueError("side must be >= 1")
    positions = {}
    node_id = 0
    for y in range(side):
        for x in range(side):
            positions[node_id] = (x * spacing_m, y * spacing_m)
            node_id += 1
    return Topology(positions, root_id=0, name=f"grid-{side}x{side}")


def random_topology(
    n: int,
    area_m: float,
    radio_range_m: float = 25.0,
    seed: int = 0,
    max_attempts: int = 200,
) -> Topology:
    """Uniform random placement, resampled until connected.

    The root sits at the area's corner (a border router is at the
    building edge, not in the middle of the field).
    """
    rng = random.Random(seed)
    for _attempt in range(max_attempts):
        positions: Dict[int, Position] = {0: (0.0, 0.0)}
        for node_id in range(1, n):
            positions[node_id] = (
                rng.uniform(0, area_m), rng.uniform(0, area_m)
            )
        topology = Topology(positions, root_id=0, name=f"random-{n}")
        if topology.is_connected(radio_range_m):
            return topology
    raise RuntimeError(
        f"could not sample a connected topology: n={n}, area={area_m}, "
        f"range={radio_range_m}"
    )


def clustered_site_topology(
    clusters: int,
    nodes_per_cluster: int,
    cluster_spread_m: float = 15.0,
    site_span_m: float = 120.0,
    radio_range_m: float = 30.0,
    seed: int = 0,
) -> Topology:
    """A construction site: dense work-area clusters joined by relays.

    Cluster centers are placed on a line across the site with a relay
    chain guaranteed by the spacing; nodes scatter around their center.
    """
    if clusters < 1 or nodes_per_cluster < 1:
        raise ValueError("clusters and nodes_per_cluster must be >= 1")
    rng = random.Random(seed)
    positions: Dict[int, Position] = {0: (0.0, 0.0)}
    node_id = 1
    step = min(site_span_m / max(clusters, 1), radio_range_m * 0.8)
    for cluster in range(clusters):
        center = ((cluster + 1) * step, rng.uniform(-10.0, 10.0))
        for _ in range(nodes_per_cluster):
            positions[node_id] = (
                center[0] + rng.uniform(-cluster_spread_m, cluster_spread_m),
                center[1] + rng.uniform(-cluster_spread_m, cluster_spread_m),
            )
            node_id += 1
    return Topology(positions, root_id=0,
                    name=f"site-{clusters}x{nodes_per_cluster}")


def building_topology(
    floors: int,
    zones_per_floor: int,
    zone_spacing_m: float = 18.0,
    floor_spacing_m: float = 12.0,
) -> Topology:
    """An office building: zones along corridors, floors stacked.

    Projected onto the plane with floors as rows; the extra path loss of
    inter-floor slabs is approximated by the row spacing.
    """
    if floors < 1 or zones_per_floor < 1:
        raise ValueError("floors and zones_per_floor must be >= 1")
    positions: Dict[int, Position] = {0: (0.0, 0.0)}
    node_id = 1
    for floor in range(floors):
        for zone in range(zones_per_floor):
            positions[node_id] = (
                (zone + 1) * zone_spacing_m, floor * floor_spacing_m
            )
            node_id += 1
    return Topology(positions, root_id=0,
                    name=f"building-{floors}f-{zones_per_floor}z")
