"""Deployment modelling: topologies and incremental rollout (§IV).

Sensing/actuation points are *placed by the application*, not by the
software architect — topologies here encode that: grids and buildings
for structured plants, clustered layouts for construction sites, and
rollout plans that grow a deployment by orders of magnitude in stages.
"""

from repro.deployment.topology import (
    CampusTopology,
    Topology,
    building_topology,
    campus_topology,
    clustered_site_topology,
    grid_topology,
    line_topology,
    random_topology,
)
from repro.deployment.rollout import RolloutPlan, RolloutStage

__all__ = [
    "RolloutPlan",
    "RolloutStage",
    "CampusTopology",
    "Topology",
    "building_topology",
    "campus_topology",
    "clustered_site_topology",
    "grid_topology",
    "line_topology",
    "random_topology",
]
