"""Incremental rollout plans (paper §IV).

Deployments "start with one or a few small tests, followed by a rollout
comprising initially only a part of the target system" — so the system
must tolerate growth by orders of magnitude *in place*.  A
:class:`RolloutPlan` slices a topology into staged activations;
experiment E13 drives one and verifies the network keeps delivering at
every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.deployment.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class RolloutStage:
    """One activation wave."""

    name: str
    start_time_s: float
    node_ids: Sequence[int]

    @property
    def size(self) -> int:
        return len(self.node_ids)


@dataclass
class RolloutPlan:
    """An ordered sequence of activation stages over one topology."""

    topology: Topology
    stages: List[RolloutStage] = field(default_factory=list)

    def validate(self) -> None:
        seen = set()
        last_time = float("-inf")
        for stage in self.stages:
            if stage.start_time_s < last_time:
                raise ValueError("stages must be time-ordered")
            last_time = stage.start_time_s
            for node_id in stage.node_ids:
                if node_id in seen:
                    raise ValueError(f"node {node_id} appears in two stages")
                if node_id not in self.topology.positions:
                    raise ValueError(f"node {node_id} not in topology")
                seen.add(node_id)

    def cumulative_size(self, stage_index: int) -> int:
        """Active node count after the given stage."""
        return sum(s.size for s in self.stages[: stage_index + 1])

    @staticmethod
    def geometric(
        topology: Topology,
        pilot_size: int = 5,
        growth_factor: int = 4,
        stage_interval_s: float = 1800.0,
        start_time_s: float = 0.0,
    ) -> "RolloutPlan":
        """Pilot → ×growth → ×growth … until the topology is exhausted.

        Nodes activate in id order, which for the provided generators is
        roughly distance-from-root order — matching how crews actually
        install outward from the backhaul.
        """
        node_ids = [n for n in topology.node_ids() if n != topology.root_id]
        stages: List[RolloutStage] = []
        cursor = 0
        size = pilot_size
        index = 0
        time = start_time_s
        while cursor < len(node_ids):
            chunk = node_ids[cursor: cursor + size]
            stages.append(RolloutStage(
                name=f"stage-{index}", start_time_s=time, node_ids=chunk,
            ))
            cursor += len(chunk)
            size *= growth_factor
            index += 1
            time += stage_interval_s
        plan = RolloutPlan(topology=topology, stages=stages)
        plan.validate()
        return plan

    def execute(
        self,
        sim: Simulator,
        activate: Callable[[int], None],
        on_stage_complete: Optional[Callable[[RolloutStage], None]] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        """Schedule every stage's activations on the kernel."""
        self.validate()
        log = trace if trace is not None else TraceLog(enabled=False)

        def run_stage(stage: RolloutStage) -> None:
            for node_id in stage.node_ids:
                activate(node_id)
            log.emit(sim.now, "rollout.stage", node=None,
                     name=stage.name, size=stage.size)
            if on_stage_complete is not None:
                on_stage_complete(stage)

        for stage in self.stages:
            sim.schedule_at(stage.start_time_s,
                            (lambda s: lambda: run_stage(s))(stage))
