"""Structured event tracing.

Every layer of the stack emits trace records (packet sent, parent
changed, comfort violated, ...).  Experiments and tests query the trace
instead of instrumenting protocol internals, which keeps measurement
code out of the protocols themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    category:
        Dotted namespace, e.g. ``"mac.tx"`` or ``"rpl.parent_change"``.
    node:
        Originating node id, or None for system-wide records.
    data:
        Free-form payload describing the occurrence.
    """

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """An append-only log of :class:`TraceRecord` with query helpers.

    Set ``enabled = False`` to turn recording off (benchmarks that only
    need counters do this); counters keep accumulating either way.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.counters: Dict[str, int] = {}
        self._subscribers: Dict[str, List[Callable[[TraceRecord], None]]] = {}
        #: Per-category view of ``records``, maintained on emit so
        #: category queries never rescan the whole log.
        self._by_category: Dict[str, List[TraceRecord]] = {}
        #: The run's observability bundle (:class:`repro.obs.Observability`),
        #: attached externally; None keeps instrumentation disabled.
        self.obs = None
        #: The run's installed :class:`repro.faults.plan.FaultPlan`
        #: (clauses accumulate across installs).  Repro bundles read it
        #: so a failing seed ships its own injection script.
        self.fault_plan = None

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Record one occurrence and notify subscribers.

        Counters always accumulate; the :class:`TraceRecord` itself is
        only built when someone will see it (recording enabled, or a
        subscriber on this category).  Disabled-and-unwatched emits are
        therefore nearly free — the common case for benchmark runs,
        which is why protocols can trace liberally.
        """
        counters = self.counters
        counters[category] = counters.get(category, 0) + 1
        subscribers = self._subscribers.get(category)
        if not self.enabled and not subscribers:
            return
        record = TraceRecord(time=time, category=category, node=node, data=data)
        if self.enabled:
            self.records.append(record)
            bucket = self._by_category.get(category)
            if bucket is None:
                bucket = self._by_category[category] = []
            bucket.append(record)
        if subscribers:
            # Iterate over a snapshot: a callback may unsubscribe
            # (itself or another subscriber) while the loop runs.
            for callback in tuple(subscribers):
                callback(record)

    def subscribe(
        self, category: str, callback: Callable[[TraceRecord], None]
    ) -> Callable[[], None]:
        """Invoke ``callback`` for every future record in ``category``.

        Returns an unsubscribe handle: a zero-argument callable that
        removes the subscription (idempotent).  Long-lived loggers can
        otherwise accumulate dead callbacks across repeated checker or
        detector setup/teardown cycles.
        """
        callbacks = self._subscribers.setdefault(category, [])
        callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                callbacks.remove(callback)
            except ValueError:
                pass  # already removed

        return unsubscribe

    def count(self, category: str) -> int:
        """Total records emitted in ``category`` (even while disabled)."""
        return self.counters.get(category, 0)

    def query(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Iterator[TraceRecord]:
        """Iterate stored records matching the filters.

        Category queries walk the per-category index instead of the
        whole log — checkers and metric collectors issue them per call,
        so a full rescan would be O(records x queries).  Records within
        one category are in emission order, the same order the full
        scan yields them.
        """
        if category is not None:
            candidates = self._by_category.get(category, ())
        else:
            candidates = self.records
        for record in candidates:
            if node is not None and record.node != node:
                continue
            if not (since <= record.time <= until):
                continue
            yield record

    def clear(self) -> None:
        """Drop stored records and counters."""
        self.records.clear()
        self.counters.clear()
        self._by_category.clear()

    def __len__(self) -> int:
        return len(self.records)
