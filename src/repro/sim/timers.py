"""Restartable timers on top of the kernel.

Protocol code wants timers it can arm, re-arm, and cancel by name —
Trickle intervals, MAC wakeups, CoAP retransmissions, watchdogs.  These
wrappers manage the underlying :class:`~repro.sim.kernel.EventHandle`
lifecycle so protocol modules never touch the heap directly.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import EventHandle, Simulator


class Timer:
    """A one-shot, restartable timer.

    Restarting an armed timer cancels the previous deadline — the common
    "push the watchdog" idiom.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def armed(self) -> bool:
        """True while the timer will still fire."""
        return self._handle is not None and self._handle.pending

    @property
    def deadline(self) -> Optional[float]:
        """Absolute fire time, or None when disarmed."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTimer:
    """A fixed-period repeating timer with optional random phase.

    The first firing happens after ``phase`` seconds (drawn uniformly in
    ``[0, period)`` when not given, to avoid artificial synchronization
    between nodes — a classic simulation artifact this kernel must not
    exhibit).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        phase: Optional[float] = None,
        rng_stream: str = "periodic-timer",
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._running = False
        if phase is None:
            phase = sim.substream(rng_stream).uniform(0.0, period)
        self._phase = phase

    @property
    def period(self) -> float:
        return self._period

    @period.setter
    def period(self, value: float) -> None:
        if value <= 0:
            raise ValueError("period must be positive")
        self._period = value

    def start(self) -> None:
        """Start the periodic schedule.  Idempotent while running."""
        if self._running:
            return
        self._running = True
        self._handle = self._sim.schedule(self._phase, self._tick)

    def stop(self) -> None:
        """Stop firing.  Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._running

    def _tick(self) -> None:
        if not self._running:
            return
        self._handle = self._sim.schedule(self._period, self._tick)
        self._callback()
