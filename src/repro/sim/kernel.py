"""The discrete-event simulation kernel.

The kernel is a deterministic priority-queue scheduler.  Events are
``(time, priority, sequence)``-ordered, so two events scheduled for the
same instant fire in the order they were scheduled (FIFO) unless an
explicit priority says otherwise.  Determinism is a hard requirement:
every stochastic component in the reproduction draws from
:meth:`Simulator.rng` (or a named substream from :meth:`Simulator.substream`),
never from the global :mod:`random` module, so that a simulation run is a
pure function of its seed.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Any, Callable, Dict, List, Optional


class SimTimeError(ValueError):
    """Raised when an event is scheduled in the simulated past."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps cancellation O(1) which matters because protocol
    timers (MAC backoffs, Trickle intervals, CoAP retransmissions) are
    cancelled far more often than they fire.  The owning simulator
    counts cancelled-but-queued events and compacts the heap when they
    dominate it, so long-lived runs don't drag dead entries through
    every push and pop.
    """

    __slots__ = ("time", "callback", "cancelled", "fired", "_sim")

    def __init__(self, time: float, callback: Callable[[], None],
                 sim: Optional["Simulator"] = None) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        if not self.cancelled and not self.fired and self._sim is not None:
            self._sim._note_cancelled()
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled and not self.fired


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the run.  All randomness must flow from
        :attr:`rng` or from named substreams (:meth:`substream`), which
        are derived deterministically from this seed.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> out = []
    >>> _ = sim.schedule(2.0, lambda: out.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: out.append(sim.now))
    >>> sim.run()
    >>> out
    [1.0, 2.0]
    """

    #: Compact only past this many dead entries: below it, scanning the
    #: heap costs more than the skips it would save.
    _COMPACT_MIN_CANCELLED = 64

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._substreams: Dict[str, random.Random] = {}
        self._heap: List[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._cancelled_queued = 0
        self._compactions = 0
        #: Opt-in wall-time profiler (:class:`repro.obs.SimProfiler`);
        #: None costs a single branch per event.
        self._profiler = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for budget checks in tests)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def substream(self, name: str) -> random.Random:
        """Return a named RNG substream derived from the master seed.

        Substreams decouple components: adding a random draw in the MAC
        layer does not perturb the sequence seen by the sensor layer, so
        experiments stay comparable across code changes.
        """
        stream = self._substreams.get(name)
        if stream is None:
            # A stable digest, NOT built-in hash(): str hashing is
            # randomized per process, which would make runs
            # irreproducible across invocations.
            digest = hashlib.md5(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "little"))
            self._substreams[name] = stream
        return stream

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimTimeError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimTimeError(f"cannot schedule at {time} < now {self._now}")
        if (self._cancelled_queued >= self._COMPACT_MIN_CANCELLED
                and self._cancelled_queued * 2 >= len(self._heap)):
            self._compact()
        handle = EventHandle(time, callback, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, handle))
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none remain."""
        while self._heap:
            time, _priority, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                self._cancelled_queued -= 1
                continue
            self._now = time
            handle.fired = True
            self._events_processed += 1
            profiler = self._profiler
            if profiler is None:
                handle.callback()
            else:
                profiler.record(handle.callback)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        When ``until`` is given, simulated time is advanced to exactly
        ``until`` even if the queue drains earlier, so metrics windows
        have well-defined lengths.
        """
        self._stopped = False
        self._running = True
        executed = 0
        try:
            while self._heap and not self._stopped:
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if self.step():
                    executed += 1
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    def _peek_time(self) -> Optional[float]:
        while self._heap:
            time, _priority, _seq, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                self._cancelled_queued -= 1
                continue
            return time
        return None

    # ------------------------------------------------------------------
    # heap hygiene
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """An EventHandle in the heap was cancelled before firing."""
        self._cancelled_queued += 1

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Pop order depends only on the ``(time, priority, seq)`` total
        order of the entries, not on the heap's internal layout, so
        compaction cannot change event execution order — determinism
        survives.  Triggered when at least half the heap is dead, which
        bounds amortized cost at O(1) per cancellation.
        """
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_queued = 0
        self._compactions += 1

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return len(self._heap) - self._cancelled_queued

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` for the current instant (after the
        currently-running event)."""
        return self.schedule(0.0, callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={self.pending_events})"


def exponential_backoff(
    rng: random.Random,
    attempt: int,
    base: float,
    factor: float = 2.0,
    cap: float = float("inf"),
    jitter: float = 0.5,
) -> float:
    """Shared truncated-exponential-backoff helper.

    Returns a delay for retry number ``attempt`` (0-based): the base
    interval doubled per attempt, capped, with ±``jitter`` fractional
    randomization.  Used by CoAP retransmission, MAC retries, and
    anti-entropy scheduling so they all back off consistently.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    interval = min(base * (factor**attempt), cap)
    if jitter <= 0:
        return interval
    low = interval * (1.0 - jitter)
    high = interval * (1.0 + jitter)
    return rng.uniform(low, min(high, cap) if cap != float("inf") else high)
