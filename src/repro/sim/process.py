"""Generator-based lightweight processes.

Sequential protocol logic (a sensor's sample→send loop, a rollout
schedule, a fault-injection scenario) reads far better as a coroutine
than as a hand-written callback state machine.  A process is a plain
generator that yields *commands*:

- ``yield sleep(dt)`` — suspend for ``dt`` simulated seconds;
- ``yield wait(event)`` — suspend until a :class:`ProcessEvent` fires,
  receiving the value it was fired with.

Example
-------
>>> from repro.sim import Simulator, spawn, sleep
>>> sim = Simulator()
>>> log = []
>>> def sampler():
...     for _ in range(3):
...         log.append(sim.now)
...         yield sleep(10.0)
>>> _ = spawn(sim, sampler())
>>> sim.run()
>>> log
[0.0, 10.0, 20.0]
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.sim.kernel import Simulator


class _Sleep:
    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = delay


class ProcessEvent:
    """A one-to-many wakeup channel processes can wait on."""

    def __init__(self) -> None:
        self._waiters: List["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Wake every waiting process, delivering ``value`` to each."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)


class _Wait:
    __slots__ = ("event",)

    def __init__(self, event: ProcessEvent) -> None:
        self.event = event


def sleep(delay: float) -> _Sleep:
    """Yield this from a process to suspend for ``delay`` seconds."""
    return _Sleep(delay)


def wait(event: ProcessEvent) -> _Wait:
    """Yield this from a process to suspend until ``event`` fires."""
    return _Wait(event)


class Process:
    """A running generator process.  Create via :func:`spawn`."""

    def __init__(self, sim: Simulator, generator: Generator[Any, Any, Any], name: str = "") -> None:
        self._sim = sim
        self._generator = generator
        self.name = name
        self.alive = True
        self.result: Any = None
        self.done_event = ProcessEvent()

    def kill(self) -> None:
        """Terminate the process; its generator is closed."""
        if not self.alive:
            return
        self.alive = False
        self._generator.close()
        self.done_event.fire(None)

    def _resume(self, value: Any = None) -> None:
        if not self.alive:
            return
        try:
            command = self._generator.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self.done_event.fire(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, _Sleep):
            self._sim.schedule(command.delay, self._resume)
        elif isinstance(command, _Wait):
            command.event._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {command!r}; expected sleep(...) or wait(...)"
            )


def spawn(sim: Simulator, generator: Generator[Any, Any, Any], name: str = "") -> Process:
    """Start ``generator`` as a process; it begins at the current instant."""
    process = Process(sim, generator, name=name)
    sim.call_soon(process._resume)
    return process
