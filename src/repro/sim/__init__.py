"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which every other layer of the
reproduction runs: a priority-queue event scheduler (:class:`Simulator`),
cancellable timers (:class:`Timer`), generator-based lightweight
processes (:func:`repro.sim.process.spawn`), and a structured trace
facility (:class:`repro.sim.trace.TraceLog`).

All simulated components must obtain time and randomness exclusively
from the kernel so that a run is a pure function of its seed.
"""

from repro.sim.kernel import EventHandle, SimTimeError, Simulator
from repro.sim.process import Process, sleep, spawn, wait
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "EventHandle",
    "PeriodicTimer",
    "Process",
    "SimTimeError",
    "Simulator",
    "Timer",
    "TraceLog",
    "TraceRecord",
    "sleep",
    "spawn",
    "wait",
]
