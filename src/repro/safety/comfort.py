"""Comfort bands, occupancy schedules, and violation accounting.

Soft safety margins as the paper frames them: the band can vary with
who occupies the space and when, and violating it is a *cost*, not a
crash — tracked in degree-hours so the revenue model can price it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer


@dataclass(frozen=True)
class ComfortBand:
    """An acceptable temperature interval."""

    lower_c: float
    upper_c: float

    def __post_init__(self) -> None:
        if self.lower_c > self.upper_c:
            raise ValueError("lower_c must not exceed upper_c")

    def violation_degrees(self, temperature_c: float) -> float:
        """Distance outside the band (0 when inside)."""
        if temperature_c < self.lower_c:
            return self.lower_c - temperature_c
        if temperature_c > self.upper_c:
            return temperature_c - self.upper_c
        return 0.0

    def widened(self, margin_c: float) -> "ComfortBand":
        """A softer band (the energy-saving knob of experiment E8)."""
        return ComfortBand(self.lower_c - margin_c, self.upper_c + margin_c)

    @property
    def midpoint_c(self) -> float:
        return (self.lower_c + self.upper_c) / 2.0


class OccupancySchedule:
    """Daily occupancy: a list of (start_hour, end_hour, headcount)."""

    def __init__(
        self, periods: Optional[List[Tuple[float, float, int]]] = None
    ) -> None:
        # Default: office hours, 8 people 8:00-18:00.
        self.periods = periods if periods is not None else [(8.0, 18.0, 8)]

    def occupants(self, time_s: float) -> int:
        """Headcount at simulated ``time_s`` (day wraps at 24 h)."""
        hour = (time_s / 3600.0) % 24.0
        total = 0
        for start, end, count in self.periods:
            if start <= hour < end:
                total += count
        return total

    def occupied(self, time_s: float) -> bool:
        return self.occupants(time_s) > 0


class ComfortTracker:
    """Samples a zone's temperature and integrates violations.

    Violations only accrue while the space is occupied — empty rooms
    have no comfort requirement, which is what makes occupancy-aware
    setback profitable.
    """

    def __init__(
        self,
        sim: Simulator,
        temperature: "callable",
        band: ComfortBand,
        schedule: Optional[OccupancySchedule] = None,
        sample_period_s: float = 60.0,
    ) -> None:
        self.sim = sim
        self.temperature = temperature
        self.band = band
        self.schedule = schedule if schedule is not None else OccupancySchedule()
        self.sample_period_s = sample_period_s
        self.violation_degree_hours = 0.0
        self.occupied_hours = 0.0
        self.samples = 0
        self.worst_violation_c = 0.0
        self._timer = PeriodicTimer(sim, sample_period_s, self._sample, phase=0.0)

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        self.samples += 1
        if not self.schedule.occupied(self.sim.now):
            return
        hours = self.sample_period_s / 3600.0
        self.occupied_hours += hours
        violation = self.band.violation_degrees(self.temperature())
        self.violation_degree_hours += violation * hours
        self.worst_violation_c = max(self.worst_violation_c, violation)

    @property
    def mean_violation_c(self) -> float:
        """Average violation depth over occupied time."""
        if self.occupied_hours == 0:
            return 0.0
        return self.violation_degree_hours / self.occupied_hours
