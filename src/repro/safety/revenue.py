"""The provider's revenue model (paper §V-B).

"The revenue the system provider receives (or the penalties the
provider has to pay) can be made dependent on the comfort and energy
savings."  This module prices a run: a base service fee, minus energy
cost, minus comfort penalties that grow with violation depth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RevenueModel:
    """Pricing of one zone-day."""

    base_fee_per_day: float = 10.0
    energy_price_per_kwh: float = 0.25
    #: Penalty per degree-hour of comfort violation.
    comfort_penalty_per_degree_hour: float = 1.0
    #: Violations beyond this depth (°C) breach the SLA entirely.
    sla_breach_c: float = 3.0
    sla_breach_penalty: float = 20.0

    def statement(
        self,
        days: float,
        energy_kwh: float,
        violation_degree_hours: float,
        worst_violation_c: float,
    ) -> "RevenueStatement":
        """Price one measured run."""
        if days <= 0:
            raise ValueError("days must be positive")
        revenue = self.base_fee_per_day * days
        energy_cost = self.energy_price_per_kwh * energy_kwh
        comfort_penalty = (
            self.comfort_penalty_per_degree_hour * violation_degree_hours
        )
        breach_penalty = (
            self.sla_breach_penalty if worst_violation_c > self.sla_breach_c else 0.0
        )
        return RevenueStatement(
            days=days,
            gross=revenue,
            energy_cost=energy_cost,
            comfort_penalty=comfort_penalty,
            breach_penalty=breach_penalty,
        )


@dataclass(frozen=True)
class RevenueStatement:
    """The priced outcome of a run."""

    days: float
    gross: float
    energy_cost: float
    comfort_penalty: float
    breach_penalty: float

    @property
    def net(self) -> float:
        return self.gross - self.energy_cost - self.comfort_penalty - self.breach_penalty

    @property
    def net_per_day(self) -> float:
        return self.net / self.days
