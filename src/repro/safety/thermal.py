"""Lumped-RC thermal model of a building zone.

One thermal mass per zone: ``C dT/dt = (T_out − T)/R + Q``.  This is the
standard first-order substitute for a real plant (DESIGN.md substitution
table); it exhibits exactly the lag/overshoot dynamics that make the
comfort-vs-energy tradeoff non-trivial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer


@dataclass(frozen=True)
class ThermalConfig:
    """Zone physics parameters."""

    #: Thermal resistance to outside, K/W.
    resistance_k_per_w: float = 0.02
    #: Thermal capacitance, J/K (~a small office).
    capacitance_j_per_k: float = 2.0e6
    #: Heater maximum power, W.
    heater_max_w: float = 3000.0
    #: Cooling maximum power (extracted), W.
    cooler_max_w: float = 3000.0
    #: Integration step, s.
    step_s: float = 60.0
    #: Internal gains per occupant, W.
    occupant_gain_w: float = 100.0

    def validate(self) -> None:
        if min(self.resistance_k_per_w, self.capacitance_j_per_k, self.step_s) <= 0:
            raise ValueError("physical parameters must be positive")


class ThermalZone:
    """One zone's integrating thermal state.

    ``heat_fraction`` / ``cool_fraction`` in [0, 1] are set by the HVAC
    actuators; ``outside`` and ``occupants`` are callables sampled each
    step, so the zone composes with phenomena and occupancy schedules.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        outside: Callable[[float], float],
        occupants: Optional[Callable[[float], int]] = None,
        config: Optional[ThermalConfig] = None,
        initial_temp_c: float = 18.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.outside = outside
        self.occupants = occupants if occupants is not None else (lambda t: 0)
        self.config = config if config is not None else ThermalConfig()
        self.config.validate()
        self.temperature_c = initial_temp_c
        self.heat_fraction = 0.0
        self.cool_fraction = 0.0
        self.energy_used_j = 0.0
        self._stepper = PeriodicTimer(sim, self.config.step_s, self._step, phase=0.0)

    def start(self) -> None:
        """Begin integrating the zone physics."""
        self._stepper.start()

    def stop(self) -> None:
        self._stepper.stop()

    def _step(self) -> None:
        cfg = self.config
        now = self.sim.now
        t_out = self.outside(now)
        q_hvac = (
            self.heat_fraction * cfg.heater_max_w
            - self.cool_fraction * cfg.cooler_max_w
        )
        q_internal = self.occupants(now) * cfg.occupant_gain_w
        # Exact solution of the linear ODE over one step (stable for any
        # step size, unlike forward Euler).
        tau = cfg.resistance_k_per_w * cfg.capacitance_j_per_k
        q_total = q_hvac + q_internal
        equilibrium = t_out + q_total * cfg.resistance_k_per_w
        decay = math.exp(-cfg.step_s / tau)
        self.temperature_c = equilibrium + (self.temperature_c - equilibrium) * decay
        self.energy_used_j += (
            abs(self.heat_fraction) * cfg.heater_max_w
            + abs(self.cool_fraction) * cfg.cooler_max_w
        ) * cfg.step_s

    @property
    def energy_used_kwh(self) -> float:
        return self.energy_used_j / 3.6e6
