"""Soft safety: the HVAC comfort-vs-energy case study (paper §V-B).

The paper argues safety in non-life-critical industrial IoT is
*continuous*: an HVAC system may deliberately trade comfort-margin
violations for energy savings, with revenue tied to both.  This package
provides the physics (lumped-RC thermal zones), the policies (bang-bang,
PI, and occupancy-aware setback controllers), the comfort accounting,
and the revenue model experiment E8 sweeps.
"""

from repro.safety.comfort import ComfortBand, ComfortTracker, OccupancySchedule
from repro.safety.controllers import (
    BangBangController,
    Controller,
    PIController,
    SetbackController,
)
from repro.safety.hvac import HvacZone, HvacBuilding
from repro.safety.revenue import RevenueModel, RevenueStatement
from repro.safety.thermal import ThermalZone, ThermalConfig

__all__ = [
    "BangBangController",
    "ComfortBand",
    "ComfortTracker",
    "Controller",
    "HvacBuilding",
    "HvacZone",
    "OccupancySchedule",
    "PIController",
    "RevenueModel",
    "RevenueStatement",
    "SetbackController",
    "ThermalConfig",
    "ThermalZone",
]
