"""HVAC control policies.

All controllers share one contract: given the measured temperature (and
the time), produce heat/cool fractions in [0, 1].  The policies span the
tradeoff E8 sweeps — from the rigid thermostat to the occupancy-aware
setback policy that "deliberately violates margins to minimize energy
consumption".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.safety.comfort import ComfortBand, OccupancySchedule


class Controller(abc.ABC):
    """A control policy: temperature → (heat_fraction, cool_fraction)."""

    @abc.abstractmethod
    def control(self, temperature_c: float, time_s: float) -> Tuple[float, float]:
        """Compute actuation for the current measurement."""


@dataclass
class BangBangController(Controller):
    """Thermostat with hysteresis around the band edges."""

    band: ComfortBand
    hysteresis_c: float = 0.5

    def __post_init__(self) -> None:
        self._heating = False
        self._cooling = False

    def control(self, temperature_c: float, time_s: float) -> Tuple[float, float]:
        if temperature_c < self.band.lower_c:
            self._heating = True
        elif temperature_c > self.band.lower_c + self.hysteresis_c:
            self._heating = False
        if temperature_c > self.band.upper_c:
            self._cooling = True
        elif temperature_c < self.band.upper_c - self.hysteresis_c:
            self._cooling = False
        return (1.0 if self._heating else 0.0, 1.0 if self._cooling else 0.0)


@dataclass
class PIController(Controller):
    """Proportional-integral control toward the band midpoint."""

    band: ComfortBand
    kp: float = 0.8
    ki: float = 0.002
    #: Anti-windup clamp on the integral term.
    integral_limit: float = 400.0
    sample_period_s: float = 60.0

    def __post_init__(self) -> None:
        self._integral = 0.0

    def control(self, temperature_c: float, time_s: float) -> Tuple[float, float]:
        error = self.band.midpoint_c - temperature_c
        self._integral += error * self.sample_period_s
        self._integral = max(-self.integral_limit,
                             min(self.integral_limit, self._integral))
        output = self.kp * error + self.ki * self._integral
        if output >= 0:
            return (min(output, 1.0), 0.0)
        return (0.0, min(-output, 1.0))


@dataclass
class SetbackController(Controller):
    """Occupancy-aware setback: soft margins when nobody is there.

    Wraps an inner policy, switching between the strict band (occupied)
    and a widened band (empty), with a warm-up lead before occupancy
    begins so the zone re-enters the strict band in time.
    """

    band: ComfortBand
    schedule: OccupancySchedule
    setback_margin_c: float = 4.0
    warmup_lead_s: float = 3600.0
    hysteresis_c: float = 0.5

    def __post_init__(self) -> None:
        self._strict = BangBangController(self.band, self.hysteresis_c)
        self._relaxed = BangBangController(
            self.band.widened(self.setback_margin_c), self.hysteresis_c
        )

    def _strict_mode(self, time_s: float) -> bool:
        if self.schedule.occupied(time_s):
            return True
        # Look ahead: pre-heat/cool before people arrive.
        return self.schedule.occupied(time_s + self.warmup_lead_s)

    def control(self, temperature_c: float, time_s: float) -> Tuple[float, float]:
        policy = self._strict if self._strict_mode(time_s) else self._relaxed
        return policy.control(temperature_c, time_s)


@dataclass
class FixedOutputController(Controller):
    """Constant actuation — the fallback a partitioned zone can apply
    when it cannot reach its remote controller (fails safe, §V-C)."""

    heat_fraction: float = 0.0
    cool_fraction: float = 0.0

    def control(self, temperature_c: float, time_s: float) -> Tuple[float, float]:
        return (self.heat_fraction, self.cool_fraction)
