"""HVAC zones wired to networked devices.

Two control placements, matching the availability discussion (§V-C):

- **local** — the control policy runs on the zone's own device; network
  partitions cannot break the loop;
- **remote** — measurements travel to a controller on the border router
  and commands travel back; a watchdog falls back to a local safe
  policy when commands stop arriving (the "continue offering
  functionality, possibly within a limited scope" requirement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.devices.actuators import Actuator
from repro.devices.node import DeviceNode
from repro.safety.comfort import ComfortBand, ComfortTracker, OccupancySchedule
from repro.safety.controllers import BangBangController, Controller
from repro.safety.thermal import ThermalConfig, ThermalZone
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceLog

#: Ports for the remote control loop.
HVAC_REPORT_PORT = 9906
HVAC_COMMAND_PORT = 9907


class _ZoneTemperature:
    """Phenomenon adapter exposing a zone's temperature to a Sensor."""

    def __init__(self, zone: ThermalZone) -> None:
        self.zone = zone

    def value_at(self, time: float, position) -> float:
        return self.zone.temperature_c


@dataclass(frozen=True)
class TempReport:
    """Zone → controller measurement."""

    zone: str
    node: int
    temperature_c: float

    SIZE_BYTES = 8

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


@dataclass(frozen=True)
class HvacCommand:
    """Controller → zone actuation command."""

    zone: str
    heat_fraction: float
    cool_fraction: float

    SIZE_BYTES = 8

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


class HvacZone:
    """One zone: physics + device + sensor/actuators + comfort meter."""

    def __init__(
        self,
        node: DeviceNode,
        outside: Callable[[float], float],
        band: ComfortBand,
        schedule: Optional[OccupancySchedule] = None,
        thermal: Optional[ThermalConfig] = None,
        control_period_s: float = 60.0,
        initial_temp_c: float = 18.0,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.name = f"zone-{node.node_id}"
        self.schedule = schedule if schedule is not None else OccupancySchedule()
        self.zone = ThermalZone(
            node.sim, self.name, outside,
            occupants=self.schedule.occupants,
            config=thermal, initial_temp_c=initial_temp_c,
        )
        self.band = band
        self.control_period_s = control_period_s
        self.sensor = node.add_sensor("zone_temp", _ZoneTemperature(self.zone))
        self.heater = node.add_actuator(Actuator(node.sim, "heater"))
        self.cooler = node.add_actuator(Actuator(node.sim, "cooler"))
        self.comfort = ComfortTracker(
            node.sim, lambda: self.zone.temperature_c, band, self.schedule
        )
        self.controller: Optional[Controller] = None
        self._loop: Optional[PeriodicTimer] = None
        self.commands_applied = 0

    # ------------------------------------------------------------------
    def start(self, controller: Optional[Controller] = None) -> None:
        """Start physics and comfort tracking; with ``controller``, also
        run a local control loop."""
        self.zone.start()
        self.comfort.start()
        if controller is not None:
            self.controller = controller
            self._loop = PeriodicTimer(
                self.sim, self.control_period_s, self._local_control, phase=0.0
            )
            self._loop.start()

    def stop(self) -> None:
        self.zone.stop()
        self.comfort.stop()
        if self._loop is not None:
            self._loop.stop()

    def _local_control(self) -> None:
        if self.controller is None or not self.node.alive:
            return
        reading = self.sensor.read()
        if reading is None:
            return
        heat, cool = self.controller.control(reading, self.sim.now)
        self.apply(heat, cool)

    def apply(self, heat_fraction: float, cool_fraction: float) -> None:
        """Drive the actuators and couple them into the physics."""
        self.heater.command(heat_fraction, issuer=self.node.node_id)
        self.cooler.command(cool_fraction, issuer=self.node.node_id)
        self.zone.heat_fraction = self.heater.output
        self.zone.cool_fraction = self.cooler.output
        self.commands_applied += 1


class RemoteHvacController:
    """The controller side, hosted on the border router."""

    def __init__(self, root_node: DeviceNode,
                 trace: Optional[TraceLog] = None) -> None:
        if not root_node.is_root:
            raise ValueError("remote controller runs on the border router")
        self.node = root_node
        self.sim = root_node.sim
        self.trace = trace if trace is not None else root_node.stack.trace
        self.policies: Dict[str, Controller] = {}
        self.reports_handled = 0
        root_node.stack.bind(HVAC_REPORT_PORT, self._on_report)

    def manage(self, zone_name: str, policy: Controller) -> None:
        """Register the policy for one zone."""
        self.policies[zone_name] = policy

    def _on_report(self, datagram) -> None:
        report = datagram.payload
        if not isinstance(report, TempReport):
            return
        policy = self.policies.get(report.zone)
        if policy is None:
            return
        self.reports_handled += 1
        heat, cool = policy.control(report.temperature_c, self.sim.now)
        command = HvacCommand(zone=report.zone, heat_fraction=heat,
                              cool_fraction=cool)
        self.node.stack.send_datagram(
            report.node, HVAC_COMMAND_PORT, command, command.size_bytes
        )


class RemoteControlLoop:
    """The zone side of remote control, with a safe-fallback watchdog."""

    def __init__(
        self,
        zone: HvacZone,
        controller_node: int,
        fallback: Optional[Controller] = None,
        fallback_timeout_s: float = 600.0,
    ) -> None:
        self.zone = zone
        self.sim = zone.sim
        self.controller_node = controller_node
        self.fallback = (
            fallback if fallback is not None
            else BangBangController(zone.band.widened(1.0))
        )
        self.fallback_timeout_s = fallback_timeout_s
        self.in_fallback = False
        self.fallback_activations = 0
        self.commands_received = 0
        self._report_timer = PeriodicTimer(
            self.sim, zone.control_period_s, self._report, phase=0.0
        )
        self._watchdog = Timer(self.sim, self._fallback_tick)
        zone.node.stack.bind(HVAC_COMMAND_PORT, self._on_command)

    def start(self) -> None:
        """Begin reporting; physics/comfort must be started on the zone."""
        self._report_timer.start()
        self._watchdog.start(self.fallback_timeout_s)

    def stop(self) -> None:
        self._report_timer.stop()
        self._watchdog.cancel()

    def _report(self) -> None:
        if not self.zone.node.alive:
            return
        reading = self.zone.sensor.read()
        if reading is None:
            return
        report = TempReport(
            zone=self.zone.name, node=self.zone.node.node_id,
            temperature_c=reading,
        )
        self.zone.node.stack.send_datagram(
            self.controller_node, HVAC_REPORT_PORT, report, report.size_bytes
        )

    def _on_command(self, datagram) -> None:
        command = datagram.payload
        if not isinstance(command, HvacCommand) or command.zone != self.zone.name:
            return
        self.commands_received += 1
        if self.in_fallback:
            self.in_fallback = False  # connectivity restored
        self._watchdog.start(self.fallback_timeout_s)
        self.zone.apply(command.heat_fraction, command.cool_fraction)

    def _fallback_tick(self) -> None:
        """No command for too long: run the local safe policy."""
        if not self.in_fallback:
            self.in_fallback = True
            self.fallback_activations += 1
        reading = self.zone.sensor.read()
        if reading is not None:
            heat, cool = self.fallback.control(reading, self.sim.now)
            self.zone.apply(heat, cool)
        self._watchdog.start(self.zone.control_period_s)


class HvacBuilding:
    """A set of zones sharing an outside climate (convenience wiring)."""

    def __init__(self, outside: Callable[[float], float]) -> None:
        self.outside = outside
        self.zones: List[HvacZone] = []

    def add_zone(self, zone: HvacZone) -> HvacZone:
        self.zones.append(zone)
        return zone

    def total_energy_kwh(self) -> float:
        return sum(zone.zone.energy_used_kwh for zone in self.zones)

    def total_violation_degree_hours(self) -> float:
        return sum(zone.comfort.violation_degree_hours for zone in self.zones)
