"""Scripted fault scenarios.

The injector schedules precise fault events against a set of device
nodes — the deterministic counterpart to the stochastic
:class:`~repro.faults.failures.FailureProcess`, used when an experiment
needs "kill the border router at t=600" rather than "fail randomly".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.devices.node import DeviceNode
from repro.devices.sensors import SensorFault
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass
class InjectedFault:
    """Record of one injected fault (for experiment bookkeeping)."""

    time: float
    kind: str
    node: int
    detail: Dict[str, object] = field(default_factory=dict)


class FaultInjector:
    """Schedules crash, recovery, and sensor faults on device nodes."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Dict[int, DeviceNode],
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.nodes = nodes
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.injected: List[InjectedFault] = []

    def _record(self, kind: str, node: int, **detail: object) -> None:
        fault = InjectedFault(time=self.sim.now, kind=kind, node=node,
                              detail=dict(detail))
        self.injected.append(fault)
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("fault.injected", kind=kind, node=node)
        self.trace.emit(self.sim.now, f"fault.{kind}", node=node, **detail)

    # ------------------------------------------------------------------
    def crash_at(self, time: float, node_id: int,
                 recover_after: Optional[float] = None) -> None:
        """Crash-stop ``node_id`` at ``time``; optionally auto-recover."""
        node = self.nodes[node_id]

        def crash() -> None:
            node.fail()
            self._record("crash", node_id)
            if recover_after is not None:
                self.sim.schedule(recover_after, recover)

        def recover() -> None:
            node.recover()
            self._record("recover", node_id)

        self.sim.schedule_at(time, crash)

    def recover_at(self, time: float, node_id: int) -> None:
        """Recover a previously crashed node at ``time``."""
        node = self.nodes[node_id]

        def recover() -> None:
            node.recover()
            self._record("recover", node_id)

        self.sim.schedule_at(time, recover)

    def sensor_fault_at(
        self,
        time: float,
        node_id: int,
        sensor: str,
        fault: SensorFault,
        clear_after: Optional[float] = None,
    ) -> None:
        """Put one sensor into a fault mode at ``time``."""
        node = self.nodes[node_id]

        def inject() -> None:
            node.sensors[sensor].inject_fault(fault)
            self._record("sensor", node_id, sensor=sensor, mode=fault.value)
            if clear_after is not None:
                self.sim.schedule(clear_after, clear)

        def clear() -> None:
            node.sensors[sensor].clear_fault()
            self._record("sensor_clear", node_id, sensor=sensor)

        self.sim.schedule_at(time, inject)
