"""Fault injection for the dependability experiments (paper §V).

- :mod:`repro.faults.injector` — scripted fault scenarios: node
  crash/recover at chosen times, sensor faults, border-router kill;
- :mod:`repro.faults.failures` — stochastic MTBF/MTTR failure processes
  driving the reliability and availability metrics;
- :mod:`repro.faults.partitions` — geometric network partitions and
  per-link blocks through the medium's link filter, and their healing;
- :mod:`repro.faults.plan` — declarative, seed-deterministic fault
  plans compiling onto the primitives above, with checker fault-window
  declaration and ``fault.*`` observability built in.
"""

from repro.faults.failures import FailureProcess, FailureProcessConfig
from repro.faults.injector import FaultInjector
from repro.faults.partitions import GeometricPartition, PartitionController
from repro.faults.plan import (
    BORDER_ROUTER,
    CrashClause,
    FaultPlan,
    FaultPlanRuntime,
    InterferenceClause,
    LinkFlapClause,
    PartitionClause,
    RandomCrashesClause,
    SensorClause,
)

__all__ = [
    "BORDER_ROUTER",
    "CrashClause",
    "FailureProcess",
    "FailureProcessConfig",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanRuntime",
    "GeometricPartition",
    "InterferenceClause",
    "LinkFlapClause",
    "PartitionClause",
    "PartitionController",
    "RandomCrashesClause",
    "SensorClause",
]
