"""Fault injection for the dependability experiments (paper §V).

- :mod:`repro.faults.injector` — scripted fault scenarios: node
  crash/recover at chosen times, sensor faults, border-router kill;
- :mod:`repro.faults.failures` — stochastic MTBF/MTTR failure processes
  driving the reliability and availability metrics;
- :mod:`repro.faults.partitions` — geometric network partitions through
  the medium's link filter, and their healing.
"""

from repro.faults.failures import FailureProcess, FailureProcessConfig
from repro.faults.injector import FaultInjector
from repro.faults.partitions import GeometricPartition, PartitionController

__all__ = [
    "FailureProcess",
    "FailureProcessConfig",
    "FaultInjector",
    "GeometricPartition",
    "PartitionController",
]
