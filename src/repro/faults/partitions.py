"""Network partitions (paper §V-C, ref [44]).

A partition is modelled as a physical cut: links crossing a geometric
boundary stop carrying anything.  This is what happens when a forklift
parks in front of the relay shelf or a firewall change kills the
backhaul — connectivity is severed while both sides keep running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.radio.medium import Medium
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class GeometricPartition:
    """A vertical cut: nodes with x < ``cut_x`` vs the rest."""

    cut_x: float

    def side(self, position: Tuple[float, float]) -> int:
        return 0 if position[0] < self.cut_x else 1


class PartitionController:
    """Applies and heals partitions on a medium."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._sides: Optional[Dict[int, int]] = None
        self.partitions_applied = 0

    @property
    def partitioned(self) -> bool:
        return self._sides is not None

    def apply(self, partition: GeometricPartition) -> Dict[int, int]:
        """Cut every link crossing the boundary; returns node → side."""
        sides = {
            node_id: partition.side(radio.position)
            for node_id, radio in self.medium.radios.items()
        }
        self._sides = sides
        self.medium.set_link_filter(
            lambda a, b: sides.get(a) != sides.get(b)
        )
        self.partitions_applied += 1
        self.trace.emit(self.sim.now, "partition.applied", node=None,
                        left=sum(1 for s in sides.values() if s == 0),
                        right=sum(1 for s in sides.values() if s == 1))
        return sides

    def heal(self) -> None:
        """Restore full connectivity."""
        self._sides = None
        self.medium.set_link_filter(None)
        self.trace.emit(self.sim.now, "partition.healed", node=None)

    def apply_at(self, time: float, partition: GeometricPartition,
                 heal_after: Optional[float] = None) -> None:
        """Schedule a partition (and optional heal) on the kernel."""
        self.sim.schedule_at(time, lambda: self.apply(partition))
        if heal_after is not None:
            self.sim.schedule_at(time + heal_after, self.heal)

    def isolated_sides(self) -> List[Set[int]]:
        """Current side membership (empty when not partitioned)."""
        if self._sides is None:
            return []
        groups: Dict[int, Set[int]] = {}
        for node_id, side in self._sides.items():
            groups.setdefault(side, set()).add(node_id)
        return list(groups.values())
