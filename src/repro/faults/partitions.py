"""Network partitions (paper §V-C, ref [44]).

A partition is modelled as a physical cut: links crossing a geometric
boundary stop carrying anything.  This is what happens when a forklift
parks in front of the relay shelf or a firewall change kills the
backhaul — connectivity is severed while both sides keep running.

The controller is the single owner of the medium's link filter: it
composes the geometric cut with any individually blocked links (link
flaps), so fault plans can overlay both without clobbering each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.radio.medium import Medium
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class GeometricPartition:
    """A vertical cut: nodes with x < ``cut_x`` vs the rest."""

    cut_x: float

    def side(self, position: Tuple[float, float]) -> int:
        return 0 if position[0] < self.cut_x else 1


class PartitionController:
    """Applies and heals partitions (and link blocks) on a medium."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._sides: Optional[Dict[int, int]] = None
        self._blocked_links: Set[Tuple[int, int]] = set()
        self.partitions_applied = 0
        self.links_blocked = 0

    @property
    def partitioned(self) -> bool:
        return self._sides is not None

    @property
    def sides(self) -> Optional[Dict[int, int]]:
        """Current node → side map, or None when not partitioned."""
        return dict(self._sides) if self._sides is not None else None

    # ------------------------------------------------------------------
    def _inc_injected(self, kind: str) -> None:
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("fault.injected", kind=kind)

    def _refresh_filter(self) -> None:
        """Install one composite predicate for sides + blocked pairs."""
        sides = self._sides
        blocked = self._blocked_links
        if sides is None and not blocked:
            self.medium.set_link_filter(None)
            return

        def link_blocked(a: int, b: int) -> bool:
            if sides is not None and sides.get(a) != sides.get(b):
                return True
            pair = (a, b) if a <= b else (b, a)
            return pair in blocked

        self.medium.set_link_filter(link_blocked)

    # ------------------------------------------------------------------
    def apply(self, partition: GeometricPartition) -> Dict[int, int]:
        """Cut every link crossing the boundary; returns node → side."""
        sides = {
            node_id: partition.side(radio.position)
            for node_id, radio in self.medium.radios.items()
        }
        self._sides = sides
        self._refresh_filter()
        self.partitions_applied += 1
        self._inc_injected("partition")
        self.trace.emit(self.sim.now, "partition.applied", node=None,
                        left=sum(1 for s in sides.values() if s == 0),
                        right=sum(1 for s in sides.values() if s == 1))
        return sides

    def heal(self) -> None:
        """Restore cross-boundary connectivity (blocked links persist)."""
        self._sides = None
        self._refresh_filter()
        self.trace.emit(self.sim.now, "partition.healed", node=None)

    def apply_at(self, time: float, partition: GeometricPartition,
                 heal_after: Optional[float] = None) -> None:
        """Schedule a partition (and optional heal) on the kernel."""
        self.sim.schedule_at(time, lambda: self.apply(partition))
        if heal_after is not None:
            self.sim.schedule_at(time + heal_after, self.heal)

    # ------------------------------------------------------------------
    def block_link(self, a: int, b: int) -> None:
        """Sever one bidirectional link (a flapping or shadowed hop)."""
        pair = (a, b) if a <= b else (b, a)
        if pair in self._blocked_links:
            return
        self._blocked_links.add(pair)
        self._refresh_filter()
        self.links_blocked += 1
        self._inc_injected("link_down")
        self.trace.emit(self.sim.now, "partition.link_down", node=None,
                        a=pair[0], b=pair[1])

    def unblock_link(self, a: int, b: int) -> None:
        """Restore a previously blocked link."""
        pair = (a, b) if a <= b else (b, a)
        if pair not in self._blocked_links:
            return
        self._blocked_links.discard(pair)
        self._refresh_filter()
        self.trace.emit(self.sim.now, "partition.link_up", node=None,
                        a=pair[0], b=pair[1])

    @property
    def blocked_links(self) -> FrozenSet[Tuple[int, int]]:
        return frozenset(self._blocked_links)

    # ------------------------------------------------------------------
    def isolated_sides(self) -> List[Set[int]]:
        """Current side membership (empty when not partitioned)."""
        if self._sides is None:
            return []
        groups: Dict[int, Set[int]] = {}
        for node_id, side in self._sides.items():
            groups.setdefault(side, set()).add(node_id)
        return list(groups.values())
