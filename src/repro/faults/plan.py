"""Declarative fault plans: composable, seed-deterministic fault schedules.

A :class:`FaultPlan` is the declarative counterpart to hand-wiring
:class:`~repro.faults.injector.FaultInjector`,
:class:`~repro.faults.partitions.PartitionController`,
:class:`~repro.faults.failures.FailureProcess` and
:class:`~repro.radio.interference.WifiInterferer` per scenario.  A plan
is a list of *clauses* — timed node crashes (including the border
router), geometric partition/heal cycles, per-link flaps, sensor
stuck/drift faults, interference bursts, and bounded stochastic
crash/repair windows — expressed in absolute simulated time.  The same
plan serves three consumers at once:

- :meth:`FaultPlan.install` compiles the clauses onto a running
  :class:`~repro.core.system.IIoTSystem` through the existing fault
  primitives, returning a :class:`FaultPlanRuntime`;
- :meth:`FaultPlan.declare_windows` feeds every clause's fault window to
  a fault-aware checker
  (:class:`~repro.checking.base.FaultWindowMixin`), so excursions during
  injected faults are expected and the same excursion outside one fails
  the run;
- the runtime emits ``fault.<kind>`` spans spanning each clause's
  active window plus ``fault.active`` / ``fault.injected`` metrics
  through :mod:`repro.obs`, so every trace shows *which fault was live*
  when a violation fired.

Determinism: clause times are static, and every stochastic clause draws
only from named kernel substreams — so a plan run is a pure function of
the simulation seed (pinned by the jobs=1 vs jobs=N snapshot-identity
test).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.devices.sensors import SensorFault
from repro.faults.failures import FailureProcess, FailureProcessConfig
from repro.faults.injector import FaultInjector
from repro.faults.partitions import GeometricPartition, PartitionController

#: Sentinel node id: resolved to the system's border router at install.
BORDER_ROUTER = -1


# ----------------------------------------------------------------------
# clauses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashClause:
    """Crash-stop one node (``BORDER_ROUTER`` kills the root)."""

    at_s: float
    node: int
    recover_after_s: Optional[float] = None

    kind = "crash"

    def window(self) -> Tuple[float, float]:
        end = math.inf if self.recover_after_s is None \
            else self.at_s + self.recover_after_s
        return self.at_s, end


@dataclass(frozen=True)
class PartitionClause:
    """Apply a vertical geometric cut, optionally healing later."""

    at_s: float
    cut_x: float
    heal_after_s: Optional[float] = None

    kind = "partition"

    def window(self) -> Tuple[float, float]:
        end = math.inf if self.heal_after_s is None \
            else self.at_s + self.heal_after_s
        return self.at_s, end


@dataclass(frozen=True)
class LinkFlapClause:
    """Sever one link for ``down_s``, ``cycles`` times, ``up_s`` apart."""

    at_s: float
    a: int
    b: int
    down_s: float
    cycles: int = 1
    up_s: float = 0.0

    kind = "link_flap"

    def window(self) -> Tuple[float, float]:
        period = self.down_s + self.up_s
        return self.at_s, self.at_s + self.cycles * period - self.up_s


@dataclass(frozen=True)
class SensorClause:
    """Put one sensor into a fault mode (stuck, drift, offset, dead)."""

    at_s: float
    node: int
    sensor: str
    mode: SensorFault = SensorFault.STUCK
    clear_after_s: Optional[float] = None

    kind = "sensor"

    def window(self) -> Tuple[float, float]:
        end = math.inf if self.clear_after_s is None \
            else self.at_s + self.clear_after_s
        return self.at_s, end


@dataclass(frozen=True)
class InterferenceClause:
    """A co-located wide-band interferer active for ``duration_s``."""

    at_s: float
    duration_s: float
    position: Tuple[float, float]
    wifi_channel: int = 6
    duty_cycle: float = 0.30
    tx_power_dbm: float = 15.0
    #: Interferer node id (must not collide with deployment node ids).
    node_id: int = 950

    kind = "interference"

    def window(self) -> Tuple[float, float]:
        return self.at_s, self.at_s + self.duration_s


@dataclass(frozen=True)
class RandomCrashesClause:
    """A bounded stochastic crash/repair window (exponential MTBF/MTTR).

    At the window's end the process stops and any node still down is
    recovered, so the fault window genuinely bounds the disturbance.
    """

    at_s: float
    duration_s: float
    mtbf_s: float = 4 * 3600.0
    mttr_s: float = 600.0
    spare_root: bool = True

    kind = "random_crashes"

    def window(self) -> Tuple[float, float]:
        return self.at_s, self.at_s + self.duration_s


Clause = Any  # any of the clause dataclasses above

#: ``kind`` → clause class, for the JSON round trip.
_CLAUSE_KINDS = {
    cls.kind: cls for cls in (
        CrashClause, PartitionClause, LinkFlapClause, SensorClause,
        InterferenceClause, RandomCrashesClause)
}


def _clause_to_jsonable(clause: Clause) -> Dict[str, Any]:
    import dataclasses
    payload: Dict[str, Any] = {"kind": clause.kind}
    for f in dataclasses.fields(clause):
        value = getattr(clause, f.name)
        if isinstance(value, SensorFault):
            value = value.value
        elif isinstance(value, tuple):
            value = list(value)
        payload[f.name] = value
    return payload


def _clause_from_jsonable(payload: Dict[str, Any]) -> Clause:
    import dataclasses
    kind = payload.get("kind")
    cls = _CLAUSE_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault clause kind {kind!r}")
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in payload:
            continue
        value = payload[f.name]
        if f.name == "mode":
            value = SensorFault(value)
        elif f.name == "position":
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class FaultPlan:
    """An ordered, composable schedule of fault clauses.

    Builder methods append a clause and return the plan, so schedules
    read as a chain::

        plan = (FaultPlan()
                .crash(at_s=1800.0, node=5, recover_after_s=600.0)
                .partition(at_s=4800.0, cut_x=30.0, heal_after_s=900.0))

    Times are absolute simulated seconds: the scenario that owns the
    timeline builds the plan against it.
    """

    def __init__(self, clauses: Iterable[Clause] = ()) -> None:
        self.clauses: List[Clause] = list(clauses)

    # -- builders ------------------------------------------------------
    def add(self, clause: Clause) -> "FaultPlan":
        self.clauses.append(clause)
        return self

    def crash(self, at_s: float, node: int,
              recover_after_s: Optional[float] = None) -> "FaultPlan":
        return self.add(CrashClause(at_s, node, recover_after_s))

    def kill_border_router(self, at_s: float,
                           recover_after_s: Optional[float] = None
                           ) -> "FaultPlan":
        return self.add(CrashClause(at_s, BORDER_ROUTER, recover_after_s))

    def partition(self, at_s: float, cut_x: float,
                  heal_after_s: Optional[float] = None) -> "FaultPlan":
        return self.add(PartitionClause(at_s, cut_x, heal_after_s))

    def flap_link(self, at_s: float, a: int, b: int, down_s: float,
                  cycles: int = 1, up_s: float = 0.0) -> "FaultPlan":
        return self.add(LinkFlapClause(at_s, a, b, down_s, cycles, up_s))

    def sensor_fault(self, at_s: float, node: int, sensor: str,
                     mode: SensorFault = SensorFault.STUCK,
                     clear_after_s: Optional[float] = None) -> "FaultPlan":
        return self.add(SensorClause(at_s, node, sensor, mode, clear_after_s))

    def interference(self, at_s: float, duration_s: float,
                     position: Tuple[float, float], wifi_channel: int = 6,
                     duty_cycle: float = 0.30,
                     node_id: int = 950) -> "FaultPlan":
        return self.add(InterferenceClause(
            at_s, duration_s, position, wifi_channel=wifi_channel,
            duty_cycle=duty_cycle, node_id=node_id))

    def random_crashes(self, at_s: float, duration_s: float,
                       mtbf_s: float = 4 * 3600.0, mttr_s: float = 600.0,
                       spare_root: bool = True) -> "FaultPlan":
        return self.add(RandomCrashesClause(at_s, duration_s, mtbf_s,
                                            mttr_s, spare_root))

    def extend(self, other: "FaultPlan") -> "FaultPlan":
        """Compose another plan's clauses into this one."""
        self.clauses.extend(other.clauses)
        return self

    # -- declarative views ---------------------------------------------
    def windows(self) -> List[Tuple[float, float]]:
        """Every clause's (start, end) fault window, in clause order.

        Open-ended clauses (no recovery/heal/clear) end at infinity.
        """
        return [clause.window() for clause in self.clauses]

    def declare_windows(self, checker, grace_s: float = 0.0) -> None:
        """Feed every clause window to a fault-aware checker
        (:class:`~repro.checking.base.FaultWindowMixin`)."""
        for start, end in self.windows():
            checker.declare_fault_window(start, end, grace_s=grace_s)

    def validate(self) -> None:
        for clause in self.clauses:
            start, end = clause.window()
            if start < 0:
                raise ValueError(f"{clause.kind} clause starts before t=0")
            if end < start:
                raise ValueError(f"{clause.kind} clause ends before it starts")

    # -- serialization (repro bundles, flight dumps) --------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON shape; clauses keep plan order."""
        return {
            "format": "repro.faultplan/1",
            "clauses": [_clause_to_jsonable(c) for c in self.clauses],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if payload.get("format") != "repro.faultplan/1":
            raise ValueError(
                f"not a fault plan: format={payload.get('format')!r}")
        return cls(_clause_from_jsonable(c) for c in payload.get("clauses", []))

    # -- compilation ---------------------------------------------------
    def install(self, system) -> "FaultPlanRuntime":
        """Compile onto a (typically converged) system; times already in
        the past are rejected — the plan is a schedule, not a replay."""
        self.validate()
        for clause in self.clauses:
            if clause.at_s < system.sim.now - 1e-9:
                raise ValueError(
                    f"{clause.kind} clause at t={clause.at_s:g} is in the "
                    f"past (now={system.sim.now:g})"
                )
        # Register on the trace so repro bundles (and flight dumps) can
        # ship the injection script; repeated installs accumulate.
        existing = getattr(system.trace, "fault_plan", None)
        if existing is None:
            system.trace.fault_plan = FaultPlan(self.clauses)
        else:
            existing.clauses.extend(self.clauses)
        return FaultPlanRuntime(self, system)

    def __len__(self) -> int:
        return len(self.clauses)


# ----------------------------------------------------------------------
# the runtime
# ----------------------------------------------------------------------
class FaultPlanRuntime:
    """One plan compiled onto one system.

    Owns the fault primitives, schedules every clause, and manages the
    observability surface: one ``fault.<kind>`` span per clause held
    open across its active window (stochastic crashes inside a
    ``random_crashes`` window land as child events), and the
    ``fault.active`` gauge tracking how many clauses are live.
    """

    def __init__(self, plan: FaultPlan, system) -> None:
        self.plan = plan
        self.system = system
        self.sim = system.sim
        self.trace = system.trace
        self.injector = FaultInjector(system.sim, system.nodes, system.trace)
        self.partitions = PartitionController(system.sim, system.medium,
                                              system.trace)
        self.failure_processes: List[FailureProcess] = []
        self.interferers: List = []
        self.active_clauses = 0
        self._spans: Dict[int, Any] = {}
        self._unsubscribes: List = []
        for index, clause in enumerate(plan.clauses):
            getattr(self, f"_install_{clause.kind}")(index, clause)

    # -- shared window bookkeeping -------------------------------------
    def _obs(self):
        return self.trace.obs

    def _begin(self, index: int, clause: Clause, **data: Any) -> None:
        self.active_clauses += 1
        obs = self._obs()
        if obs is None:
            return
        obs.registry.set("fault.active", self.active_clauses)
        if obs.spans is not None:
            self._spans[index] = obs.spans.start(
                None, f"fault.{clause.kind}", node=data.pop("node", None),
                t=self.sim.now, **data)
        recorder = getattr(obs, "recorder", None)
        if recorder is not None:
            # Flight-recorder trigger: a fault window opening is the
            # moment to freeze the pre-fault telemetry weather.
            recorder.on_fault_window(clause.kind, self.sim.now, clause=index)

    def _end(self, index: int, **data: Any) -> None:
        self.active_clauses -= 1
        obs = self._obs()
        if obs is None:
            return
        obs.registry.set("fault.active", self.active_clauses)
        ctx = self._spans.get(index)
        if ctx is not None and obs.spans is not None:
            obs.spans.finish(ctx, self.sim.now, **data)

    def _window_events(self, index: int, clause: Clause,
                       **data: Any) -> None:
        start, end = clause.window()
        self.sim.schedule_at(start, lambda: self._begin(index, clause, **data))
        if end != math.inf:
            self.sim.schedule_at(end, lambda: self._end(index))

    # -- per-clause installers -----------------------------------------
    def _resolve(self, node: int) -> int:
        return self.system.topology.root_id if node == BORDER_ROUTER else node

    def _install_crash(self, index: int, clause: CrashClause) -> None:
        node = self._resolve(clause.node)
        self.injector.crash_at(clause.at_s, node,
                               recover_after=clause.recover_after_s)
        self._window_events(index, clause, node=node)

    def _install_partition(self, index: int, clause: PartitionClause) -> None:
        self.partitions.apply_at(clause.at_s,
                                 GeometricPartition(cut_x=clause.cut_x),
                                 heal_after=clause.heal_after_s)
        self._window_events(index, clause, cut_x=clause.cut_x)

    def _install_link_flap(self, index: int, clause: LinkFlapClause) -> None:
        for cycle in range(clause.cycles):
            down_at = clause.at_s + cycle * (clause.down_s + clause.up_s)
            self.sim.schedule_at(
                down_at,
                lambda a=clause.a, b=clause.b: self.partitions.block_link(a, b))
            self.sim.schedule_at(
                down_at + clause.down_s,
                lambda a=clause.a, b=clause.b: self.partitions.unblock_link(a, b))
        self._window_events(index, clause, a=clause.a, b=clause.b,
                            cycles=clause.cycles)

    def _install_sensor(self, index: int, clause: SensorClause) -> None:
        self.injector.sensor_fault_at(clause.at_s, clause.node, clause.sensor,
                                      clause.mode,
                                      clear_after=clause.clear_after_s)
        self._window_events(index, clause, node=clause.node,
                            sensor=clause.sensor, mode=clause.mode.value)

    def _install_interference(self, index: int,
                              clause: InterferenceClause) -> None:
        # Imported here: repro.faults must stay importable without the
        # radio interference module's channel tables.
        from repro.radio.interference import InterfererConfig, WifiInterferer

        def start() -> None:
            interferer = WifiInterferer(
                self.sim, self.system.medium, clause.node_id, clause.position,
                config=InterfererConfig(wifi_channel=clause.wifi_channel,
                                        duty_cycle=clause.duty_cycle,
                                        tx_power_dbm=clause.tx_power_dbm))
            self.interferers.append(interferer)
            interferer.start()
            obs = self._obs()
            if obs is not None:
                obs.registry.inc("fault.injected", kind="interference")
            self.trace.emit(self.sim.now, "fault.interference", node=None,
                            wifi_channel=clause.wifi_channel,
                            duty=clause.duty_cycle)
            self.sim.schedule(clause.duration_s, interferer.stop)

        self.sim.schedule_at(clause.at_s, start)
        self._window_events(index, clause, wifi_channel=clause.wifi_channel,
                            duty=clause.duty_cycle)

    def _install_random_crashes(self, index: int,
                                clause: RandomCrashesClause) -> None:
        process = FailureProcess(
            self.sim, self.system.nodes,
            config=FailureProcessConfig(mtbf_s=clause.mtbf_s,
                                        mttr_s=clause.mttr_s,
                                        spare_root=clause.spare_root),
            trace=self.trace)
        self.failure_processes.append(process)

        def mirror(record) -> None:
            # Stochastic crashes land as child events of the clause span.
            obs = self._obs()
            ctx = self._spans.get(index)
            if obs is not None and obs.spans is not None and ctx is not None:
                obs.spans.event(ctx, record.category, node=record.node,
                                t=record.time)

        self._unsubscribes.append(
            self.trace.subscribe("fault.random_crash", mirror))
        self._unsubscribes.append(
            self.trace.subscribe("fault.random_repair", mirror))

        self.sim.schedule_at(clause.at_s, process.start)
        # Bound the disturbance: drain repairs anything still down.
        self.sim.schedule_at(clause.at_s + clause.duration_s, process.drain)
        self._window_events(index, clause, mtbf_s=clause.mtbf_s,
                            mttr_s=clause.mttr_s)

    # -- bookkeeping ----------------------------------------------------
    @property
    def injected(self) -> List:
        """Scripted fault records (see :class:`FaultInjector`)."""
        return self.injector.injected

    def detach(self) -> None:
        """Drop trace subscriptions (after the run, before inspection)."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
