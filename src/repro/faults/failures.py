"""Stochastic failure/repair processes.

Each node fails with exponential inter-failure times (mean
``mtbf_s``) and repairs after exponential repair times (mean
``mttr_s``) — the textbook availability model, driving measured MTTF and
availability in experiments E7/E10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.devices.node import DeviceNode
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class FailureProcessConfig:
    """Failure/repair statistics."""

    mtbf_s: float = 4 * 3600.0
    mttr_s: float = 600.0
    #: Protect the border router from random failure (experiments that
    #: target it kill it explicitly instead).
    spare_root: bool = True

    def validate(self) -> None:
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")


class FailureProcess:
    """Runs crash/repair cycles over a node population."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Dict[int, DeviceNode],
        config: Optional[FailureProcessConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.nodes = nodes
        self.config = config if config is not None else FailureProcessConfig()
        self.config.validate()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.failures = 0
        self.repairs = 0
        #: (node, down_at, up_at) intervals for availability accounting.
        self.downtime: List[Tuple[int, float, float]] = []
        self._down_since: Dict[int, float] = {}
        self._rng = sim.substream("faults.process")
        self._running = False

    def start(self) -> None:
        """Arm a first failure for every eligible node."""
        if self._running:
            return
        self._running = True
        for node in self.nodes.values():
            if self.config.spare_root and node.is_root:
                continue
            self._arm_failure(node)

    def stop(self) -> None:
        self._running = False

    def drain(self) -> None:
        """Stop, then repair everything still down — closing the
        downtime accounting — so a bounded fault window (a
        :class:`~repro.faults.plan.RandomCrashesClause`) ends with a
        healthy fleet instead of nodes stranded mid-repair."""
        self.stop()
        for node_id in self.down_node_ids():
            node = self.nodes[node_id]
            node.recover()
            self.repairs += 1
            down_at = self._down_since.pop(node_id, self.sim.now)
            self.downtime.append((node_id, down_at, self.sim.now))
            self.trace.emit(self.sim.now, "fault.random_repair",
                            node=node_id)

    # ------------------------------------------------------------------
    def _arm_failure(self, node: DeviceNode) -> None:
        delay = self._rng.expovariate(1.0 / self.config.mtbf_s)
        self.sim.schedule(delay, lambda: self._fail(node))

    def _fail(self, node: DeviceNode) -> None:
        if not self._running or not node.alive:
            return
        node.fail()
        self.failures += 1
        self._down_since[node.node_id] = self.sim.now
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("fault.injected", kind="random_crash",
                             node=node.node_id)
        self.trace.emit(self.sim.now, "fault.random_crash", node=node.node_id)
        repair_delay = self._rng.expovariate(1.0 / self.config.mttr_s)
        self.sim.schedule(repair_delay, lambda: self._repair(node))

    def _repair(self, node: DeviceNode) -> None:
        if not self._running:
            return
        node.recover()
        self.repairs += 1
        down_at = self._down_since.pop(node.node_id, self.sim.now)
        self.downtime.append((node.node_id, down_at, self.sim.now))
        self.trace.emit(self.sim.now, "fault.random_repair", node=node.node_id)
        self._arm_failure(node)

    def down_node_ids(self) -> List[int]:
        """Nodes currently down because of this process."""
        return sorted(self._down_since)

    # ------------------------------------------------------------------
    def node_availability(self, node_id: int, window_s: float,
                          now: float) -> float:
        """Fraction of the window the node hardware was up."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        start = now - window_s
        down = 0.0
        for nid, down_at, up_at in self.downtime:
            if nid != node_id:
                continue
            down += max(0.0, min(up_at, now) - max(down_at, start))
        still_down = self._down_since.get(node_id)
        if still_down is not None:
            down += max(0.0, now - max(still_down, start))
        return 1.0 - down / window_s

    def fleet_availability(self, window_s: float, now: float) -> float:
        """Mean hardware availability across the population."""
        eligible = [
            node.node_id for node in self.nodes.values()
            if not (self.config.spare_root and node.is_root)
        ]
        if not eligible:
            return 1.0
        return sum(
            self.node_availability(nid, window_s, now) for nid in eligible
        ) / len(eligible)
