"""Deterministic multi-process trial execution.

Every quantitative claim in the reproduction is a sweep of independent
``(parameter, seed)`` trials, and each trial is a pure function of its
arguments — so trials can run on all cores *without* giving up
reproducibility, provided results are merged by trial index rather than
by arrival order.  :class:`TrialExecutor` is that contract as code: it
maps a callable over argument tuples on a process pool and yields
results in submission order, falling back to in-process serial execution
when parallelism cannot help (``jobs=1``, a single task) or cannot work
(the callable or its arguments are not picklable, or we are already
inside a worker process).
"""

from repro.parallel.executor import TrialExecutor, payload_picklable, resolve_jobs

__all__ = ["TrialExecutor", "payload_picklable", "resolve_jobs"]
