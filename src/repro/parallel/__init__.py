"""Deterministic multi-process trial execution.

Every quantitative claim in the reproduction is a sweep of independent
``(parameter, seed)`` trials, and each trial is a pure function of its
arguments — so trials can run on all cores *without* giving up
reproducibility, provided results are merged by trial index rather than
by arrival order.  :class:`TrialExecutor` is that contract as code: it
maps a callable over argument tuples and yields results in submission
order, falling back to in-process serial execution when parallelism
cannot help (``jobs=1``, a tiny payload, one usable core) or cannot
work (the callable or its arguments are not picklable, or we are
already inside a worker process).

Parallel dispatch lands on the process-wide warm :class:`WorkerPool`:
workers fork once and are reused across every ``Sweep.run``/
``SeedSweepRunner.run``/``run_trials`` call in the process, and tasks
travel in auto-sized chunks — so the spawn cost that once made small
sweeps *slower* in parallel is paid at most once per session.
"""

from repro.parallel.executor import (
    TrialExecutor,
    parallel_forced,
    payload_picklable,
    resolve_jobs,
    usable_cores,
)
from repro.parallel.pool import (
    WorkerPool,
    derive_chunksize,
    shared_pool,
    shutdown_shared_pools,
)

__all__ = [
    "TrialExecutor",
    "WorkerPool",
    "derive_chunksize",
    "parallel_forced",
    "payload_picklable",
    "resolve_jobs",
    "shared_pool",
    "shutdown_shared_pools",
    "usable_cores",
]
