"""The persistent warm worker pool.

``BENCH_core.json`` showed why a pool-per-call executor cannot win on
small sweeps: every ``Sweep.run``/``SeedSweepRunner.run`` spawned a
fresh ``ProcessPoolExecutor``, so each call paid worker start-up
(interpreter boot or fork, pipe setup) before the first trial ran —
enough to make ``jobs>1`` *slower* than serial for 20-trial sweeps.
:class:`WorkerPool` amortizes that cost the way the 6tisch simulator
amortizes connectivity-matrix construction: pay once, reuse across
runs.

Three properties carry over unchanged from the per-call design:

- **Order preservation.**  Results are merged by task index, never by
  arrival order, so parallel output is byte-identical to serial.
- **Exception-at-index.**  A task that raises re-raises at its own
  index during result iteration; earlier tasks still yield first,
  exactly like a serial loop.  This holds *within* chunks too — a
  chunk runs its tasks sequentially and stops at the first failure.
- **Determinism.**  Chunking changes how tasks are batched onto
  workers, never what any task computes or the order results merge.

Lifecycle: pools spawn lazily on first parallel dispatch, stay warm for
the life of the process, and are torn down by an ``atexit`` hook (or
explicitly via :func:`shutdown_shared_pools` — tests asserting "no
leaked processes" call it directly).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "WorkerPool",
    "derive_chunksize",
    "shared_pool",
    "shutdown_shared_pools",
]

#: Target chunks handed to each worker over one dispatch.  More than one
#: chunk per worker keeps the pool load-balanced when trial durations
#: vary; fewer, larger chunks cut per-task IPC.  Four is the classic
#: compromise (it is also what ``multiprocessing.Pool.map`` uses).
CHUNKS_PER_WORKER = 4


def derive_chunksize(tasks: int, workers: int) -> int:
    """Chunk size for ``tasks`` tasks over ``workers`` warm workers.

    Auto-derived so callers never tune it: enough chunks for load
    balance (:data:`CHUNKS_PER_WORKER` per worker), but never less than
    one task per chunk.
    """
    if tasks <= 0:
        return 1
    return max(1, -(-tasks // (max(1, workers) * CHUNKS_PER_WORKER)))


def _run_chunk(payload: Tuple[Callable[..., Any], Tuple[Tuple[Any, ...], ...]]
               ) -> List[Tuple[bool, Any]]:
    """Worker entry point: run one chunk of tasks sequentially.

    Returns ``(True, result)`` per completed task; a task that raises
    contributes ``(False, exception)`` and ends the chunk — the
    remaining tasks of *this* chunk never run, mirroring where a serial
    loop would have stopped.  (Tasks in later chunks may still have run
    on other workers; they are side-effect free by contract.)
    """
    fn, chunk = payload
    out: List[Tuple[bool, Any]] = []
    for args in chunk:
        try:
            out.append((True, fn(*args)))
        except BaseException as exc:  # re-raised at the failing index
            out.append((False, exc))
            break
    return out


def _pool_context():
    """The cheapest safe multiprocessing context for warm workers.

    ``fork`` (where the platform offers it) clones the already-imported
    parent, so a worker is ready in about a millisecond instead of a
    fresh-interpreter boot; that is most of what makes the *cold* leg of
    ``pool_reuse`` expensive on spawn-only platforms.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


class WorkerPool:
    """A lazily-spawned, reusable process pool with chunked dispatch.

    Parameters
    ----------
    workers:
        Worker process count.  Workers spawn on first dispatch, not at
        construction, so building a pool that never parallelizes costs
        nothing.

    Example
    -------
    >>> pool = WorkerPool(2)
    >>> pool.map(pow, [(2, 3), (3, 2)])
    [8, 9]
    >>> pool.shutdown()
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        #: Dispatches served since spawn — 0 means the next map is cold.
        self.dispatches = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """True while worker processes are (or are being kept) alive."""
        return self._executor is not None

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_pool_context())
                self.dispatches = 0
            return self._executor

    def shutdown(self) -> None:
        """Join the workers and release the pool (idempotent).

        The pool remains usable: the next dispatch simply pays the
        spawn cost again.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def imap(self, fn: Callable[..., Any],
             argses: Sequence[Tuple[Any, ...]],
             chunksize: Optional[int] = None) -> Iterator[Any]:
        """Yield ``fn(*args)`` per tuple, in submission order.

        Tasks are batched into chunks of ``chunksize`` (auto-derived
        from task count and worker count when None) and fanned out to
        the warm workers; results stream back merged by index.  A task
        that raised re-raises here at its own index, after every
        earlier task's result has been yielded.
        """
        tasks = [tuple(args) for args in argses]
        if not tasks:
            return
        size = chunksize if chunksize else derive_chunksize(
            len(tasks), self.workers)
        chunks = [tuple(tasks[i:i + size]) for i in range(0, len(tasks), size)]
        executor = self._ensure()
        self.dispatches += 1
        try:
            # Executor.map yields chunk results strictly in submission
            # order regardless of completion order: the merge-by-index
            # primitive, one level up.
            for chunk_result in executor.map(
                    _run_chunk, [(fn, chunk) for chunk in chunks]):
                for ok, value in chunk_result:
                    if not ok:
                        raise value
                    yield value
        except BrokenProcessPool:
            # A worker died mid-dispatch (OOM-killed, hard crash).  A
            # broken executor can never serve again — release it so the
            # *next* dispatch respawns instead of failing forever.
            self.shutdown()
            raise

    def map(self, fn: Callable[..., Any],
            argses: Sequence[Tuple[Any, ...]],
            chunksize: Optional[int] = None) -> List[Any]:
        """Like :meth:`imap`, but collects the full result list."""
        return list(self.imap(fn, argses, chunksize=chunksize))


# ----------------------------------------------------------------------
# the shared (process-wide) pools
# ----------------------------------------------------------------------
_SHARED: Dict[int, WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(workers: int) -> WorkerPool:
    """The process-wide warm pool for ``workers`` workers.

    Consecutive ``Sweep.run``/``SeedSweepRunner.run``/``run_trials``
    calls with the same jobs count land on the same already-spawned
    workers — the whole point of the warm-pool design.  Pools of
    different sizes coexist (a benchmark session mixing ``--jobs 2``
    and ``--jobs 4`` keeps both warm).
    """
    with _SHARED_LOCK:
        pool = _SHARED.get(workers)
        if pool is None:
            pool = _SHARED[workers] = WorkerPool(workers)
        return pool


def shutdown_shared_pools() -> None:
    """Shut down every shared pool (idempotent; also the atexit hook)."""
    with _SHARED_LOCK:
        pools = list(_SHARED.values())
        _SHARED.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_shared_pools)
