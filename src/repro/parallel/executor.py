"""The multi-process trial executor.

Design constraints, in order:

1. **Determinism.**  Results are merged in *submission* order no matter
   which worker finishes first, so a sweep built on the executor is
   byte-identical to its serial equivalent.  Exceptions propagate at
   the failing task's index, matching where a serial loop would have
   raised.
2. **Transparent fallback.**  Parallelism is an optimization, never a
   requirement: with ``jobs=1``, a tiny payload, an unpicklable
   payload, a single usable core, or when already inside a daemonic
   worker process, the executor runs the tasks in-process in the same
   order with the same semantics.
3. **Purity is the caller's promise.**  Workers share nothing; a task
   that mutates global state will not see that mutation merged back.
   Simulation trials are pure functions of ``(value, seed)``, which is
   exactly why they parallelize safely.

Dispatch goes through the process-wide warm :class:`~repro.parallel.pool.
WorkerPool` (fork-once workers reused across calls) with chunked task
batching — see :mod:`repro.parallel.pool` for the throughput story.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.parallel.pool import derive_chunksize, shared_pool

__all__ = [
    "TrialExecutor",
    "parallel_forced",
    "payload_picklable",
    "resolve_jobs",
    "usable_cores",
]

#: Payloads below this task count never pay dispatch overhead: even on
#: a warm pool, pickling and IPC cost more than running one or two
#: trials inline.
MIN_PARALLEL_TASKS = 2


def usable_cores() -> int:
    """Cores this process may actually run on.

    Respects CPU affinity where the platform exposes it — a container
    pinned to one core reports 1 here even when ``os.cpu_count()`` says
    otherwise, which is what lets :class:`TrialExecutor` auto-select
    the serial fast-path on single-core hosts.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Any) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    ``None`` or any value < 1 means "use every available core"
    (respecting CPU affinity where the platform exposes it); an ``int``
    >= 1 is taken literally.
    """
    if jobs is None or int(jobs) < 1:
        return usable_cores()
    return int(jobs)


def parallel_forced() -> bool:
    """True when ``REPRO_PARALLEL_FORCE`` disables the core fast-path.

    On a single-core host the executor runs everything serially — the
    right default, but it would let the multiprocess machinery rot
    untested on single-core CI.  Setting ``REPRO_PARALLEL_FORCE=1``
    (as ``make check-invariants`` does) makes ``jobs>1`` requests use
    the warm pool regardless of core count; outputs are identical
    either way, only wall-clock differs.
    """
    return os.environ.get("REPRO_PARALLEL_FORCE", "0") not in ("", "0")


def payload_picklable(fn: Callable[..., Any],
                      argses: Sequence[Tuple[Any, ...]]) -> bool:
    """True if ``fn`` and every argument tuple survive pickling.

    Process pools move work through pickle, so closures, lambdas, and
    locally-defined scenario functions cannot be dispatched to workers.
    The probe is cheap (trial arguments are parameter values and seeds)
    and lets callers fall back to serial execution instead of crashing.
    """
    try:
        pickle.dumps((fn, tuple(argses)))
    except Exception:
        return False
    return True


class TrialExecutor:
    """Order-preserving map of a trial function over argument tuples.

    Parameters
    ----------
    jobs:
        Worker processes to use.  ``1`` (the default) executes serially
        in-process; ``None`` or values < 1 mean "all available cores".
    chunksize:
        Tasks per dispatch chunk.  None (the default) auto-derives from
        task count and worker count; chunking never affects results,
        only IPC batching.

    Example
    -------
    >>> executor = TrialExecutor(jobs=1)
    >>> executor.map(pow, [(2, 3), (3, 2)])
    [8, 9]
    """

    def __init__(self, jobs: int = 1, chunksize: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.chunksize = chunksize

    # ------------------------------------------------------------------
    def _serial(self, fn: Callable[..., Any],
                argses: Sequence[Tuple[Any, ...]]) -> Iterator[Any]:
        for args in argses:
            yield fn(*args)

    def _use_serial(self, fn: Callable[..., Any],
                    argses: Sequence[Tuple[Any, ...]]) -> bool:
        if self.jobs == 1 or len(argses) < MIN_PARALLEL_TASKS:
            return True
        # The single-core fast-path: with one usable core, worker
        # processes only add dispatch cost (BENCH_core.json measured
        # 0.72x), so honor the *intent* of jobs>1 — "go faster" — by
        # not paying for parallelism that cannot exist.
        if usable_cores() == 1 and not parallel_forced():
            return True
        # A daemonic worker (e.g. a trial that itself sweeps) cannot
        # spawn children; run its inner sweep in-process.
        if multiprocessing.current_process().daemon:
            return True
        return not payload_picklable(fn, argses)

    # ------------------------------------------------------------------
    def imap(self, fn: Callable[..., Any],
             argses: Iterable[Tuple[Any, ...]]) -> Iterator[Any]:
        """Yield ``fn(*args)`` for each tuple, in submission order.

        Results stream as soon as the *next in-order* trial completes,
        so per-trial observers (progress, invariant hooks) fire in the
        same order serial execution would fire them.  A trial that
        raises re-raises here at its own index; later trials may still
        have executed (they are side-effect free by contract).
        """
        tasks: List[Tuple[Any, ...]] = [tuple(args) for args in argses]
        if self._use_serial(fn, tasks):
            yield from self._serial(fn, tasks)
            return
        workers = min(self.jobs, len(tasks))
        pool = shared_pool(workers)
        chunksize = self.chunksize or derive_chunksize(len(tasks), workers)
        yield from pool.imap(fn, tasks, chunksize=chunksize)

    def map(self, fn: Callable[..., Any],
            argses: Iterable[Tuple[Any, ...]]) -> List[Any]:
        """Like :meth:`imap`, but collects the full result list."""
        return list(self.imap(fn, argses))

    def map_merge(self, fn: Callable[..., Any],
                  argses: Iterable[Tuple[Any, ...]],
                  merge: Callable[[Iterable[Any]], Any]) -> Any:
        """Run trials and fold their results through ``merge``.

        ``merge`` receives the per-trial results *in submission order*
        (the in-order-given contract of
        :meth:`~repro.obs.registry.MetricsSnapshot.merge` and
        :meth:`~repro.obs.timeseries.TelemetrySnapshot.merge`), so the
        merged aggregate is byte-identical for every ``jobs`` count and
        chunksize.
        """
        return merge(self.imap(fn, argses))
