"""The multi-process trial executor.

Design constraints, in order:

1. **Determinism.**  ``imap``/``map`` yield results in *submission*
   order no matter which worker finishes first, so a sweep built on the
   executor is byte-identical to its serial equivalent.  Exceptions
   propagate at the failing task's index, matching where a serial loop
   would have raised.
2. **Transparent fallback.**  Parallelism is an optimization, never a
   requirement: with ``jobs=1``, a single task, an unpicklable payload,
   or when already inside a daemonic worker process, the executor runs
   the tasks in-process in the same order with the same semantics.
3. **Purity is the caller's promise.**  Workers share nothing; a task
   that mutates global state will not see that mutation merged back.
   Simulation trials are pure functions of ``(value, seed)``, which is
   exactly why they parallelize safely.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, List, Sequence, Tuple

__all__ = ["TrialExecutor", "payload_picklable", "resolve_jobs"]


def resolve_jobs(jobs: Any) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    ``None`` or any value < 1 means "use every available core"
    (respecting CPU affinity where the platform exposes it); an ``int``
    >= 1 is taken literally.
    """
    if jobs is None or int(jobs) < 1:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    return int(jobs)


def payload_picklable(fn: Callable[..., Any],
                      argses: Sequence[Tuple[Any, ...]]) -> bool:
    """True if ``fn`` and every argument tuple survive pickling.

    Process pools move work through pickle, so closures, lambdas, and
    locally-defined scenario functions cannot be dispatched to workers.
    The probe is cheap (trial arguments are parameter values and seeds)
    and lets callers fall back to serial execution instead of crashing.
    """
    try:
        pickle.dumps((fn, tuple(argses)))
    except Exception:
        return False
    return True


def _invoke(payload: Tuple[Callable[..., Any], Tuple[Any, ...]]) -> Any:
    """Worker entry point: unpack one ``(fn, args)`` task and run it."""
    fn, args = payload
    return fn(*args)


class TrialExecutor:
    """Order-preserving map of a trial function over argument tuples.

    Parameters
    ----------
    jobs:
        Worker processes to use.  ``1`` (the default) executes serially
        in-process; ``None`` or values < 1 mean "all available cores".

    Example
    -------
    >>> executor = TrialExecutor(jobs=1)
    >>> executor.map(pow, [(2, 3), (3, 2)])
    [8, 9]
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)

    # ------------------------------------------------------------------
    def _serial(self, fn: Callable[..., Any],
                argses: Sequence[Tuple[Any, ...]]) -> Iterator[Any]:
        for args in argses:
            yield fn(*args)

    def _use_serial(self, fn: Callable[..., Any],
                    argses: Sequence[Tuple[Any, ...]]) -> bool:
        if self.jobs == 1 or len(argses) <= 1:
            return True
        # A daemonic worker (e.g. a trial that itself sweeps) cannot
        # spawn children; run its inner sweep in-process.
        if multiprocessing.current_process().daemon:
            return True
        return not payload_picklable(fn, argses)

    # ------------------------------------------------------------------
    def imap(self, fn: Callable[..., Any],
             argses: Iterable[Tuple[Any, ...]]) -> Iterator[Any]:
        """Yield ``fn(*args)`` for each tuple, in submission order.

        Results stream as soon as the *next in-order* trial completes,
        so per-trial observers (progress, invariant hooks) fire in the
        same order serial execution would fire them.  A trial that
        raises re-raises here at its own index; later trials may still
        have executed (they are side-effect free by contract).
        """
        tasks: List[Tuple[Any, ...]] = [tuple(args) for args in argses]
        if self._use_serial(fn, tasks):
            yield from self._serial(fn, tasks)
            return
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # ProcessPoolExecutor.map is the merge-by-index primitive:
            # it yields strictly in submission order regardless of
            # completion order.
            yield from pool.map(_invoke, [(fn, args) for args in tasks])

    def map(self, fn: Callable[..., Any],
            argses: Iterable[Tuple[Any, ...]]) -> List[Any]:
        """Like :meth:`imap`, but collects the full result list."""
        return list(self.imap(fn, argses))
