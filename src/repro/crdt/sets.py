"""Set CRDTs: G-Set, 2P-Set, OR-Set."""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Set, Tuple

from repro.crdt.base import StateCrdt

_tag_counter = itertools.count(1)


class GSet(StateCrdt):
    """Grow-only set."""

    def __init__(self) -> None:
        self.items: Set[Any] = set()

    def add(self, item: Any) -> None:
        self.items.add(item)

    def merge(self, other: StateCrdt) -> bool:
        self._require_same_type(other)
        assert isinstance(other, GSet)
        before = len(self.items)
        self.items |= other.items
        return len(self.items) != before

    def value(self) -> FrozenSet[Any]:
        return frozenset(self.items)

    def copy(self) -> "GSet":
        clone = GSet()
        clone.items = set(self.items)
        return clone

    def size_bytes(self) -> int:
        return 4 + 8 * len(self.items)

    def __contains__(self, item: Any) -> bool:
        return item in self.items


class TwoPhaseSet(StateCrdt):
    """Add + remove set where removal is final (tombstones)."""

    def __init__(self) -> None:
        self.added = GSet()
        self.removed = GSet()

    def add(self, item: Any) -> None:
        if item in self.removed:
            raise ValueError(f"{item!r} was removed; 2P-Set removal is final")
        self.added.add(item)

    def remove(self, item: Any) -> None:
        if item not in self.added:
            raise KeyError(item)
        self.removed.add(item)

    def merge(self, other: StateCrdt) -> bool:
        self._require_same_type(other)
        assert isinstance(other, TwoPhaseSet)
        changed_a = self.added.merge(other.added)
        changed_r = self.removed.merge(other.removed)
        return changed_a or changed_r

    def value(self) -> FrozenSet[Any]:
        return frozenset(self.added.items - self.removed.items)

    def copy(self) -> "TwoPhaseSet":
        clone = TwoPhaseSet()
        clone.added = self.added.copy()
        clone.removed = self.removed.copy()
        return clone

    def size_bytes(self) -> int:
        return self.added.size_bytes() + self.removed.size_bytes()

    def __contains__(self, item: Any) -> bool:
        return item in self.added.items and item not in self.removed.items


class ORSet(StateCrdt):
    """Observed-remove set: concurrent add wins over remove.

    Every add carries a unique tag; a remove tombstones only the tags it
    has *observed*, so an add concurrent with the remove survives — the
    semantics the paper's "decentralized resolution of potentially
    conflicting updates" needs for things like active-alarm sets.
    """

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id
        #: item -> live tags.
        self.entries: Dict[Any, Set[Tuple[int, int]]] = {}
        #: tombstoned tags.
        self.tombstones: Set[Tuple[int, int]] = set()

    def add(self, item: Any) -> None:
        tag = (self.replica_id, next(_tag_counter))
        self.entries.setdefault(item, set()).add(tag)

    def remove(self, item: Any) -> None:
        tags = self.entries.pop(item, set())
        self.tombstones |= tags

    def merge(self, other: StateCrdt) -> bool:
        self._require_same_type(other)
        assert isinstance(other, ORSet)
        changed = False
        if not other.tombstones <= self.tombstones:
            self.tombstones |= other.tombstones
            changed = True
        for item, tags in other.entries.items():
            live = tags - self.tombstones
            mine = self.entries.get(item, set())
            merged = (mine | live) - self.tombstones
            if merged != mine:
                if merged:
                    self.entries[item] = merged
                else:
                    self.entries.pop(item, None)
                changed = True
        # Drop any of our tags newly tombstoned by the merge.
        for item in list(self.entries):
            live = self.entries[item] - self.tombstones
            if live != self.entries[item]:
                changed = True
                if live:
                    self.entries[item] = live
                else:
                    del self.entries[item]
        return changed

    def value(self) -> FrozenSet[Any]:
        return frozenset(self.entries)

    def copy(self) -> "ORSet":
        clone = ORSet(self.replica_id)
        clone.entries = {item: set(tags) for item, tags in self.entries.items()}
        clone.tombstones = set(self.tombstones)
        return clone

    def size_bytes(self) -> int:
        tags = sum(len(t) for t in self.entries.values())
        return 4 + 10 * tags + 6 * len(self.tombstones)

    def __contains__(self, item: Any) -> bool:
        return item in self.entries
