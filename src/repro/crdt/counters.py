"""Counter CRDTs: G-Counter and PN-Counter."""

from __future__ import annotations

from typing import Dict

from repro.crdt.base import StateCrdt


class GCounter(StateCrdt):
    """Grow-only counter: one monotone slot per replica."""

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id
        self.slots: Dict[int, int] = {}

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) at this replica."""
        if amount < 0:
            raise ValueError("GCounter cannot decrement")
        self.slots[self.replica_id] = self.slots.get(self.replica_id, 0) + amount

    def merge(self, other: StateCrdt) -> bool:
        self._require_same_type(other)
        assert isinstance(other, GCounter)
        changed = False
        for replica, count in other.slots.items():
            if count > self.slots.get(replica, 0):
                self.slots[replica] = count
                changed = True
        return changed

    def value(self) -> int:
        return sum(self.slots.values())

    def copy(self) -> "GCounter":
        clone = GCounter(self.replica_id)
        clone.slots = dict(self.slots)
        return clone

    def size_bytes(self) -> int:
        return 4 + 6 * len(self.slots)


class PNCounter(StateCrdt):
    """Increment/decrement counter as a pair of G-Counters."""

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id
        self.positive = GCounter(replica_id)
        self.negative = GCounter(replica_id)

    def increment(self, amount: int = 1) -> None:
        self.positive.increment(amount)

    def decrement(self, amount: int = 1) -> None:
        self.negative.increment(amount)

    def merge(self, other: StateCrdt) -> bool:
        self._require_same_type(other)
        assert isinstance(other, PNCounter)
        changed_p = self.positive.merge(other.positive)
        changed_n = self.negative.merge(other.negative)
        return changed_p or changed_n

    def value(self) -> int:
        return self.positive.value() - self.negative.value()

    def copy(self) -> "PNCounter":
        clone = PNCounter(self.replica_id)
        clone.positive = self.positive.copy()
        clone.negative = self.negative.copy()
        return clone

    def size_bytes(self) -> int:
        return self.positive.size_bytes() + self.negative.size_bytes()
