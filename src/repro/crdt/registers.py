"""Register CRDTs: last-writer-wins and multi-value."""

from __future__ import annotations

from typing import Any, FrozenSet, Optional, Tuple

from repro.crdt.base import StateCrdt


class LWWRegister(StateCrdt):
    """Last-writer-wins register.

    Ordered by (timestamp, replica id) so concurrent writes resolve
    deterministically.  Timestamps are *simulated* time supplied by the
    caller — the CRDT itself never reads a clock.
    """

    def __init__(self, replica_id: int, initial: Any = None) -> None:
        self.replica_id = replica_id
        self._value: Any = initial
        self._stamp: Tuple[float, int] = (float("-inf"), replica_id)

    def set(self, value: Any, timestamp: float) -> None:
        """Write at ``timestamp``; stale writes are ignored."""
        stamp = (timestamp, self.replica_id)
        if stamp > self._stamp:
            self._value = value
            self._stamp = stamp

    def merge(self, other: StateCrdt) -> bool:
        self._require_same_type(other)
        assert isinstance(other, LWWRegister)
        if other._stamp > self._stamp:
            self._value = other._value
            self._stamp = other._stamp
            return True
        return False

    def value(self) -> Any:
        return self._value

    @property
    def timestamp(self) -> float:
        return self._stamp[0]

    def copy(self) -> "LWWRegister":
        clone = LWWRegister(self.replica_id)
        clone._value = self._value
        clone._stamp = self._stamp
        return clone

    def size_bytes(self) -> int:
        return 16


class MVRegister(StateCrdt):
    """Multi-value register: concurrent writes are all kept.

    Uses version vectors; :meth:`value` returns the frozen set of
    concurrent candidates, surfacing the conflict to the application —
    the "decentralized conflict resolution" alternative to LWW's silent
    arbitration.
    """

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id
        #: Set of (value, version-vector-as-sorted-tuple) candidates.
        self.candidates: FrozenSet[Tuple[Any, Tuple[Tuple[int, int], ...]]] = frozenset()
        self._clock: dict = {}

    def set(self, value: Any) -> None:
        """Locally overwrite: supersedes everything seen so far."""
        self._clock[self.replica_id] = self._clock.get(self.replica_id, 0) + 1
        vector = tuple(sorted(self._clock.items()))
        self.candidates = frozenset({(value, vector)})

    @staticmethod
    def _dominates(a: Tuple[Tuple[int, int], ...],
                   b: Tuple[Tuple[int, int], ...]) -> bool:
        da, db = dict(a), dict(b)
        at_least_one = False
        for replica in set(da) | set(db):
            va, vb = da.get(replica, 0), db.get(replica, 0)
            if va < vb:
                return False
            if va > vb:
                at_least_one = True
        return at_least_one

    def merge(self, other: StateCrdt) -> bool:
        self._require_same_type(other)
        assert isinstance(other, MVRegister)
        union = self.candidates | other.candidates
        surviving = frozenset(
            (value, vector)
            for value, vector in union
            if not any(
                self._dominates(other_vector, vector)
                for _v, other_vector in union
                if other_vector != vector
            )
        )
        for replica, count in dict(x for _v, vec in other.candidates for x in vec).items():
            self._clock[replica] = max(self._clock.get(replica, 0), count)
        if surviving != self.candidates:
            self.candidates = surviving
            return True
        return False

    def value(self) -> FrozenSet[Any]:
        return frozenset(value for value, _vector in self.candidates)

    def copy(self) -> "MVRegister":
        clone = MVRegister(self.replica_id)
        clone.candidates = self.candidates
        clone._clock = dict(self._clock)
        return clone

    def size_bytes(self) -> int:
        vector_bytes = sum(8 + 6 * len(vec) for _v, vec in self.candidates)
        return 4 + vector_bytes
