"""Anti-entropy replication of CRDT state over the simulated network.

Each node holds a :class:`CrdtReplica`; a :class:`NetworkReplicator`
gossips the full state to MAC neighbors on a jittered period, plus a
fast "rumor" round shortly after anything changes.  Because merges are
lattice joins, the protocol needs no ordering, no ACKs, and no
membership — which is precisely why it keeps working across partitions
(experiment E9) where the coordinated baseline blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.crdt.base import StateCrdt
from repro.net.stack import NetworkStack
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceLog

#: Default gossip port.
GOSSIP_PORT = 9901


class CrdtReplica:
    """One node's replica of a shared CRDT."""

    def __init__(self, node_id: int, state: StateCrdt) -> None:
        self.node_id = node_id
        self.state = state
        self.local_updates = 0
        self.merges_in = 0
        self.merges_changed = 0

    def mutate(self, mutation: Callable[[StateCrdt], None]) -> None:
        """Apply a local mutation (e.g. ``lambda s: s.increment()``)."""
        mutation(self.state)
        self.local_updates += 1

    def absorb(self, remote_state: StateCrdt) -> bool:
        """Merge a received peer state; True when our state changed."""
        self.merges_in += 1
        changed = self.state.merge(remote_state)
        if changed:
            self.merges_changed += 1
        return changed


@dataclass(frozen=True)
class AntiEntropyConfig:
    """Gossip pacing."""

    period_s: float = 30.0
    jitter: float = 0.3
    #: Extra fast round this long after a change (rumor mongering).
    rumor_delay_s: float = 2.0
    port: int = GOSSIP_PORT


class NetworkReplicator:
    """Gossips one replica's state to MAC neighbors."""

    def __init__(
        self,
        stack: NetworkStack,
        replica: CrdtReplica,
        config: Optional[AntiEntropyConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.replica = replica
        self.config = config if config is not None else AntiEntropyConfig()
        self.trace = trace if trace is not None else stack.trace
        self.gossips_sent = 0
        self.bytes_sent = 0
        #: Sim time of the last local change (mutation or merge-in),
        #: driving the convergence-lag histogram and the replica
        #: staleness gauge of the NodeHealth table.
        self.last_change_s = 0.0
        self._rng = stack.sim.substream(f"crdt.gossip.{stack.node_id}")
        self._timer = PeriodicTimer(
            stack.sim, self.config.period_s, self._gossip,
            phase=self._rng.uniform(0.5, self.config.period_s),
        )
        self._rumor_timer = Timer(stack.sim, self._gossip)
        stack.bind(self.config.port, self._on_datagram)
        self._started = False

    def start(self) -> None:
        """Begin periodic anti-entropy."""
        if self._started:
            return
        self._started = True
        self._timer.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._timer.stop()
        self._rumor_timer.cancel()

    def notify_local_update(self) -> None:
        """Call after a local mutation to trigger a fast rumor round."""
        self.last_change_s = self.sim.now
        if self._started and not self._rumor_timer.armed:
            self._rumor_timer.start(
                self._rng.uniform(0.1, self.config.rumor_delay_s)
            )

    def staleness(self, now: float) -> float:
        """Seconds since this replica last changed (0 if never touched)."""
        return max(0.0, now - self.last_change_s)

    # ------------------------------------------------------------------
    def _gossip(self) -> None:
        if not self.stack.alive:
            return
        state = self.replica.state.copy()
        size = state.size_bytes()
        self.gossips_sent += 1
        self.bytes_sent += size
        node = self.stack.node_id
        ctx = None
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("crdt.gossip", node=node)
            obs.registry.inc("crdt.gossip_bytes", size, node=node)
            if obs.spans is not None:
                # One anti-entropy round = one trace: the broadcast's
                # fragments/MAC jobs and every receiver's merge outcome
                # hang beneath it (the context rides on the datagram).
                ctx = obs.spans.start(
                    None, "crdt.anti_entropy", node=node, t=self.sim.now,
                    round=self.gossips_sent, bytes=size,
                )
        self.stack.send_local_broadcast(self.config.port, state, size,
                                        trace_ctx=ctx)
        if ctx is not None:
            obs.spans.finish(ctx, self.sim.now)

    def _on_datagram(self, datagram: Any) -> None:
        state = datagram.payload
        if not isinstance(state, StateCrdt):
            return
        changed = self.replica.absorb(state)
        obs = self.trace.obs
        if obs is not None:
            node = self.stack.node_id
            obs.registry.inc("crdt.merge", node=node, changed=changed)
            if changed:
                # Convergence lag: how long this replica sat on an older
                # state before the merge that changed it arrived.
                obs.registry.observe(
                    "crdt.merge_lag_s", self.staleness(self.sim.now),
                    node=node,
                )
            if obs.spans is not None:
                sender_ctx = getattr(datagram, "trace_ctx", None)
                if sender_ctx is not None:
                    obs.spans.event(
                        sender_ctx, "crdt.merge", node=self.stack.node_id,
                        t=self.sim.now, changed=changed,
                    )
        if changed:
            self.last_change_s = self.sim.now
            self.trace.emit(self.sim.now, "crdt.merge_changed",
                            node=self.stack.node_id, src=datagram.src)
            # Something new: spread it onward quickly.
            self.notify_local_update()
