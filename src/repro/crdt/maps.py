"""Map CRDT: last-writer-wins map.

The workhorse for replicated device state: key → LWW-resolved value,
e.g. the setpoint table a partitioned HVAC zone keeps serving from.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

from repro.crdt.base import StateCrdt
from repro.crdt.registers import LWWRegister

#: Tombstone marker distinguishing "deleted" from "never set".
_TOMBSTONE = object()


class LWWMap(StateCrdt):
    """A dictionary whose entries resolve by last-writer-wins."""

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id
        self._registers: Dict[Any, LWWRegister] = {}

    def set(self, key: Any, value: Any, timestamp: float) -> None:
        """Write ``key`` at ``timestamp`` (simulated time)."""
        register = self._registers.get(key)
        if register is None:
            register = LWWRegister(self.replica_id)
            self._registers[key] = register
        register.set(value, timestamp)

    def delete(self, key: Any, timestamp: float) -> None:
        """Delete resolves like a write (of a tombstone)."""
        self.set(key, _TOMBSTONE, timestamp)

    def get(self, key: Any, default: Any = None) -> Any:
        register = self._registers.get(key)
        if register is None:
            return default
        value = register.value()
        return default if value is _TOMBSTONE else value

    def merge(self, other: StateCrdt) -> bool:
        self._require_same_type(other)
        assert isinstance(other, LWWMap)
        changed = False
        for key, register in other._registers.items():
            mine = self._registers.get(key)
            if mine is None:
                clone = register.copy()
                clone.replica_id = self.replica_id
                self._registers[key] = clone
                changed = True
            elif mine.merge(register):
                changed = True
        return changed

    def value(self) -> Dict[Any, Any]:
        return {
            key: register.value()
            for key, register in self._registers.items()
            if register.value() is not _TOMBSTONE
        }

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self.value().items())

    def copy(self) -> "LWWMap":
        clone = LWWMap(self.replica_id)
        clone._registers = {k: r.copy() for k, r in self._registers.items()}
        return clone

    def size_bytes(self) -> int:
        return 4 + sum(8 + r.size_bytes() for r in self._registers.values())

    def __len__(self) -> int:
        return len(self.value())

    def __contains__(self, key: Any) -> bool:
        register = self._registers.get(key)
        return register is not None and register.value() is not _TOMBSTONE
