"""Conflict-free replicated data types (paper §IV-B, ref [25]).

State-based CRDTs: each replica mutates locally and merges peer states
through a join-semilattice ``merge``, guaranteeing convergence without
coordination — the paper's recommended tool for geographic scalability
and for availability under partition (§V-C, CAP).  The property-based
test suite verifies the lattice laws (commutativity, associativity,
idempotence) for every type here.

:mod:`repro.crdt.replication` gossips replica states over the simulated
network; :mod:`repro.crdt.store` adds the CP (coordination-based)
baseline used by experiment E9.
"""

from repro.crdt.base import StateCrdt
from repro.crdt.counters import GCounter, PNCounter
from repro.crdt.registers import LWWRegister, MVRegister
from repro.crdt.sets import GSet, ORSet, TwoPhaseSet
from repro.crdt.maps import LWWMap
from repro.crdt.replication import AntiEntropyConfig, CrdtReplica, NetworkReplicator
from repro.crdt.store import CoordinatedStore, StoreClient

__all__ = [
    "AntiEntropyConfig",
    "CoordinatedStore",
    "CrdtReplica",
    "GCounter",
    "GSet",
    "LWWMap",
    "LWWRegister",
    "MVRegister",
    "NetworkReplicator",
    "ORSet",
    "PNCounter",
    "StateCrdt",
    "StoreClient",
    "TwoPhaseSet",
]
