"""The state-based CRDT contract."""

from __future__ import annotations

import abc
from typing import Any


class StateCrdt(abc.ABC):
    """A state-based (convergent) replicated data type.

    Implementations must make :meth:`merge` a join-semilattice join:
    commutative, associative, and idempotent, with local mutations
    inflationary (state only grows in the lattice order).  Under those
    laws, replicas that exchange states in any order, any number of
    times, converge — the property the E9 experiment relies on when the
    network partitions.
    """

    @abc.abstractmethod
    def merge(self, other: "StateCrdt") -> bool:
        """Join ``other``'s state into ours.

        Returns True when our state changed (lets the replication layer
        skip redundant re-gossip).
        """

    @abc.abstractmethod
    def value(self) -> Any:
        """The query result this type resolves to."""

    @abc.abstractmethod
    def copy(self) -> "StateCrdt":
        """An independent deep copy (what gets shipped to peers)."""

    def size_bytes(self) -> int:
        """Approximate serialized size, charged to the medium when the
        state is gossiped.  Subclasses refine; 32 is a safe floor."""
        return 32

    def _require_same_type(self, other: "StateCrdt") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
