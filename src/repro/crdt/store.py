"""The coordination-based (CP) baseline store for experiment E9.

A single authoritative copy lives at the border router; every read and
write is a round trip through the DODAG.  Strong consistency for free —
until the network partitions, at which point clients on the wrong side
time out: the CAP consequence §V-C spells out for always-on industrial
systems.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.net.stack import NetworkStack
from repro.sim.timers import Timer

#: Ports for the request/response pair.
STORE_PORT = 9902

_request_ids = itertools.count(1)


@dataclass(frozen=True)
class StoreRequest:
    """A client operation shipped to the coordinator."""

    request_id: int
    client: int
    op: str  # "get" | "put"
    key: Any
    value: Any = None

    SIZE_BYTES = 16

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


@dataclass(frozen=True)
class StoreResponse:
    """The coordinator's answer."""

    request_id: int
    ok: bool
    value: Any = None

    SIZE_BYTES = 12

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


class CoordinatedStore:
    """The authoritative copy, hosted on the root node."""

    def __init__(self, stack: NetworkStack, port: int = STORE_PORT) -> None:
        if not stack.is_root:
            raise ValueError("the coordinated store must run on the root")
        self.stack = stack
        self.port = port
        self.data: Dict[Any, Any] = {}
        self.operations_served = 0
        stack.bind(port, self._on_request)

    def _on_request(self, datagram: Any) -> None:
        request = datagram.payload
        if not isinstance(request, StoreRequest):
            return
        self.operations_served += 1
        if request.op == "put":
            self.data[request.key] = request.value
            response = StoreResponse(request.request_id, ok=True)
        elif request.op == "get":
            value = self.data.get(request.key)
            response = StoreResponse(request.request_id, ok=True, value=value)
        else:
            response = StoreResponse(request.request_id, ok=False)
        self.stack.send_datagram(
            request.client, self.port, response, response.size_bytes
        )


class StoreClient:
    """A node-side client of the coordinated store.

    Operations complete with ``callback(ok, value)``; a timeout counts
    as unavailability — the metric E9 reports.
    """

    def __init__(
        self,
        stack: NetworkStack,
        coordinator: int,
        port: int = STORE_PORT,
        timeout_s: float = 30.0,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.coordinator = coordinator
        self.port = port
        self.timeout_s = timeout_s
        self.operations = 0
        self.successes = 0
        self.failures = 0
        self._pending: Dict[int, tuple] = {}
        stack.bind(port, self._on_response)

    def put(self, key: Any, value: Any,
            callback: Optional[Callable[[bool, Any], None]] = None) -> None:
        """Write through the coordinator."""
        self._issue("put", key, value, callback)

    def get(self, key: Any,
            callback: Optional[Callable[[bool, Any], None]] = None) -> None:
        """Read through the coordinator."""
        self._issue("get", key, None, callback)

    def _issue(self, op: str, key: Any, value: Any,
               callback: Optional[Callable[[bool, Any], None]]) -> None:
        request = StoreRequest(
            request_id=next(_request_ids),
            client=self.stack.node_id,
            op=op, key=key, value=value,
        )
        self.operations += 1
        timer = Timer(self.sim, lambda: self._timeout(request.request_id))
        self._pending[request.request_id] = (callback, timer)
        timer.start(self.timeout_s)
        self.stack.send_datagram(
            self.coordinator, self.port, request, request.size_bytes
        )

    def _on_response(self, datagram: Any) -> None:
        response = datagram.payload
        if not isinstance(response, StoreResponse):
            return
        pending = self._pending.pop(response.request_id, None)
        if pending is None:
            return
        callback, timer = pending
        timer.cancel()
        self.successes += 1
        if callback is not None:
            callback(response.ok, response.value)

    def _timeout(self, request_id: int) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        callback, _timer = pending
        self.failures += 1
        if callback is not None:
            callback(False, None)

    @property
    def availability(self) -> float:
        """Fraction of completed operations that succeeded."""
        done = self.successes + self.failures
        return self.successes / done if done else 1.0
