"""RPL-like routing for low-power and lossy networks.

An event-level implementation of the routing machinery the paper leans
on (§IV-B, §V-D; refs [14], [32], [44], [45]):

- :mod:`repro.net.rpl.trickle` — the Trickle timer (RFC 6206) governing
  DIO beaconing;
- :mod:`repro.net.rpl.objective` — OF0 (hop count) and MRHOF (ETX)
  objective functions with parent-switch hysteresis;
- :mod:`repro.net.rpl.neighbors` — EWMA ETX link estimation;
- :mod:`repro.net.rpl.dodag` — DODAG formation, parent selection, DAO
  reporting, poisoning, local/global repair, floating DODAGs under
  partition;
- :mod:`repro.net.rpl.rnfd` — RNFD, the parallel root-failure detector
  of ref [32], reproduced for experiment E5.
"""

from repro.net.rpl.dodag import RplConfig, RplRouter, RplState
from repro.net.rpl.messages import DaoMessage, DioMessage, DisMessage
from repro.net.rpl.neighbors import LinkEstimator, NeighborTable
from repro.net.rpl.objective import (
    INFINITE_RANK,
    MIN_HOP_RANK_INCREASE,
    ROOT_RANK,
    Mrhof,
    ObjectiveFunction,
    Of0,
)
from repro.net.rpl.rnfd import Cfrc, RnfdAgent, RnfdConfig, RootState
from repro.net.rpl.trickle import TrickleTimer

__all__ = [
    "Cfrc",
    "DaoMessage",
    "DioMessage",
    "DisMessage",
    "INFINITE_RANK",
    "LinkEstimator",
    "MIN_HOP_RANK_INCREASE",
    "Mrhof",
    "NeighborTable",
    "ObjectiveFunction",
    "Of0",
    "ROOT_RANK",
    "RnfdAgent",
    "RnfdConfig",
    "RootState",
    "RplConfig",
    "RplRouter",
    "RplState",
    "TrickleTimer",
]
