"""DODAG formation and maintenance — the RPL router proper.

One :class:`RplRouter` runs on every node.  The root anchors a grounded
DODAG and beacons DIOs under Trickle; other nodes select parents through
an objective function with hysteresis, advertise their rank, report
their parent to the root in DAOs (non-storing mode, so the root can
source-route downward), and repair locally when the parent link dies.

Partition behaviour (paper §V-C, ref [44]): with
``partition_tolerance`` enabled, a node that stays detached forms or
joins a *floating* (non-grounded) DODAG, so devices cut off from the
border router keep a routing structure — and the application keeps a
degraded-but-safe service — until the partition heals, at which point
grounded DIOs win and the float dissolves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from repro.net.rpl.messages import DaoMessage, DioMessage, DisMessage
from repro.net.rpl.neighbors import NeighborEntry, NeighborTable
from repro.net.rpl.objective import (
    INFINITE_RANK,
    ObjectiveFunction,
    Mrhof,
    ROOT_RANK,
)
from repro.net.rpl.trickle import TrickleTimer, make_trickle_variant
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceLog


class RplState(enum.Enum):
    """Routing state of a node."""

    DETACHED = "detached"
    JOINED = "joined"
    FLOATING_ROOT = "floating_root"
    ROOT = "root"


class RplTransport(Protocol):
    """What the router needs from the surrounding stack."""

    def broadcast_control(
        self, message: Any, size_bytes: int, trace_ctx: Any = None
    ) -> None:
        """Link-local broadcast of a control message."""
        ...

    def unicast_control(
        self, dest: int, message: Any, size_bytes: int,
        done: Optional[Callable[[bool], None]] = None,
        trace_ctx: Any = None,
    ) -> None:
        """Link-local unicast (probes, DAO hop) with MAC feedback."""
        ...

    def link_prr(self, neighbor: int) -> float:
        """Ground-truth PRR used to seed link estimates (oracle)."""
        ...


@dataclass(frozen=True)
class RplConfig:
    """Tunables of the routing layer.

    The Trickle parameters are the ablation knobs of experiment E10;
    ``staleness_timeout_s`` is the *baseline* root-death detector that
    RNFD (E5) is compared against.
    """

    trickle_imin_s: float = 2.0
    trickle_doublings: int = 8
    trickle_k: int = 5
    #: DIO pacing policy, one of
    #: :data:`repro.net.rpl.trickle.TRICKLE_VARIANTS` ("classic",
    #: "adaptive-imin", "adaptive-k").  Classic is byte-identical to
    #: the pre-variant implementation.
    trickle_variant: str = "classic"
    dao_period_s: float = 120.0
    dis_period_s: float = 15.0
    parent_fail_threshold: int = 3
    blacklist_s: float = 60.0
    #: Parent considered dead when silent this long (None = only MAC
    #: feedback detects death).  Defaults to ~3 * Imax.
    staleness_timeout_s: Optional[float] = 1500.0
    staleness_check_period_s: float = 30.0
    #: Form floating DODAGs when detached this long; None disables.
    float_delay_s: Optional[float] = None
    #: Seed ETX estimates from ground truth PRR.
    oracle_seed: bool = True
    neighbor_capacity: int = 32
    #: DAGMaxRankIncrease (RFC 6550 §8.2.2.4): a node may not advertise
    #: a rank above its floor (lowest rank held in this DODAG version)
    #: plus this bound; exceeding it forces a detach, which caps
    #: count-to-infinity loops at a few Trickle exchanges.
    max_rank_increase: int = 4 * 256


class RplRouter:
    """The per-node RPL routing agent."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        transport: RplTransport,
        config: Optional[RplConfig] = None,
        objective: Optional[ObjectiveFunction] = None,
        is_root: bool = False,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.transport = transport
        self.config = config if config is not None else RplConfig()
        self.objective = objective if objective is not None else Mrhof()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.is_root = is_root
        self._rng = sim.substream(f"rpl.{node_id}")

        self.state = RplState.DETACHED
        self.rank = INFINITE_RANK
        self.dodag_id: Optional[int] = None
        self.version = 0
        self.grounded = False
        self.preferred_parent: Optional[int] = None
        self.neighbors = NeighborTable(self.config.neighbor_capacity)
        self._parent_failures = 0
        self._path_seq = 0
        self._rank_floor = INFINITE_RANK
        self._detached_since: Optional[float] = 0.0
        self.parent_changes = 0
        self.dio_sent = 0
        self.dao_sent = 0

        #: Root-only: child -> (parent, path_seq) learned from DAOs.
        self.dao_table: Dict[int, Tuple[int, int]] = {}

        self.on_joined: Optional[Callable[[], None]] = None
        self.on_detached: Optional[Callable[[], None]] = None
        self.on_parent_change: Optional[Callable[[Optional[int]], None]] = None
        #: Set by the stack: send a DAO through the data plane.  The
        #: third argument is an optional ``trace_ctx`` parenting the
        #: DAO's datagram span (a parent switch threads its span through
        #: the repair DAO it triggers).
        self.send_dao_upward: Optional[Callable[..., None]] = None
        #: Consulted by RNFD to piggyback state onto DIOs.
        self.dio_option_providers: List[Callable[[], Dict[str, Any]]] = []
        #: Open ``rpl.parent_switch`` span awaiting its repair DAO.
        self._switch_ctx: Any = None

        self.trickle = TrickleTimer(
            sim,
            self.config.trickle_imin_s,
            self.config.trickle_doublings,
            self.config.trickle_k,
            self._send_dio,
            rng=self._rng,
            trace=self.trace,
            node=node_id,
            variant=make_trickle_variant(self.config.trickle_variant),
        )
        self._dao_timer = PeriodicTimer(
            sim, self.config.dao_period_s, self._send_dao,
            phase=self._rng.uniform(1.0, self.config.dao_period_s),
        )
        self._dis_timer = Timer(sim, self._dis_tick)
        self._stale_timer = PeriodicTimer(
            sim, self.config.staleness_check_period_s, self._check_staleness,
        )
        self._float_timer = Timer(sim, self._become_floating_root)
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the routing agent."""
        if self._started:
            return
        self._started = True
        if self.is_root:
            self._become_root()
        else:
            self.state = RplState.DETACHED
            self._detached_since = self.sim.now
            self._dis_timer.start(self._rng.uniform(0.5, self.config.dis_period_s))
            self._stale_timer.start()
            self._arm_float_timer()

    def stop(self) -> None:
        """Shut the agent down (node failure)."""
        if not self._started:
            return
        self._started = False
        self.trickle.stop()
        self._dao_timer.stop()
        self._dis_timer.cancel()
        self._stale_timer.stop()
        self._float_timer.cancel()

    def _become_root(self) -> None:
        self.state = RplState.ROOT
        self.rank = ROOT_RANK
        self.dodag_id = self.node_id
        self.grounded = True
        self.preferred_parent = None
        self.trickle.start()
        self.trace.emit(self.sim.now, "rpl.root_up", node=self.node_id)

    # ------------------------------------------------------------------
    # DIO emission
    # ------------------------------------------------------------------
    def _current_dio(self) -> DioMessage:
        options: Dict[str, Any] = {}
        for provider in self.dio_option_providers:
            options.update(provider())
        return DioMessage(
            dodag_id=self.dodag_id if self.dodag_id is not None else self.node_id,
            version=self.version,
            rank=self.rank,
            grounded=self.grounded,
            options=options,
        )

    def _send_dio(self) -> None:
        if not self._started:
            return
        dio = self._current_dio()
        self.dio_sent += 1
        ctx = None
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("rpl.dio", node=self.node_id)
            if obs.spans is not None:
                ctx = obs.spans.start(
                    None, "rpl.dio", node=self.node_id, t=self.sim.now,
                    rank=self.rank,
                )
        self.transport.broadcast_control(dio, dio.size_bytes, trace_ctx=ctx)
        if ctx is not None:
            obs.spans.finish(ctx, self.sim.now)

    def _poison(self) -> None:
        """Advertise INFINITE_RANK so descendants stop routing through us.

        The poison carries the usual DIO options: a node detaching
        because of an RNFD verdict disseminates the verdict with its
        last grounded breath.
        """
        options: Dict[str, Any] = {}
        for provider in self.dio_option_providers:
            options.update(provider())
        poison = DioMessage(
            dodag_id=self.dodag_id if self.dodag_id is not None else self.node_id,
            version=self.version,
            rank=INFINITE_RANK,
            grounded=self.grounded,
            options=options,
        )
        self.transport.broadcast_control(poison, poison.size_bytes)
        self.trace.emit(self.sim.now, "rpl.poison", node=self.node_id)
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("rpl.poison", node=self.node_id)

    # ------------------------------------------------------------------
    # message handling (wired by the stack)
    # ------------------------------------------------------------------
    def handle_dio(self, src: int, dio: DioMessage) -> None:
        """Process a received DIO from neighbor ``src``."""
        if not self._started:
            return
        entry = self.neighbors.get_or_create(src)
        first_sighting = entry.dio_count == 0
        entry.observe_dio(dio, self.sim.now)
        if first_sighting and self.config.oracle_seed:
            prr = self.transport.link_prr(src)
            entry.estimator.probability = max(prr, 1.0 / 16.0)
        else:
            # A received beacon is positive link evidence; without this,
            # an ETX ruined by unicast failures during an outage never
            # recovers and the neighbor stays ineligible forever.
            entry.estimator.update(True)

        if self.is_root:
            return

        if dio.version > self.version and dio.grounded:
            # Global repair: adopt the new version and rejoin.
            self.version = dio.version
            self._detach(reason="global_repair")

        consistent = (
            self.state is RplState.JOINED
            and dio.dodag_id == self.dodag_id
            and dio.version == self.version
            and dio.rank != INFINITE_RANK
        )
        self._evaluate_parents()
        if consistent and self.trickle.running:
            self.trickle.hear_consistent()

    def handle_dis(self, src: int) -> None:
        """A DIS solicits a DIO: answer by resetting Trickle."""
        if not self._started:
            return
        if self.state in (RplState.ROOT, RplState.JOINED, RplState.FLOATING_ROOT):
            self.trickle.reset()

    def handle_dao(self, dao: DaoMessage) -> None:
        """Root only: record a child's parent advertisement."""
        if not self.is_root and self.state is not RplState.FLOATING_ROOT:
            return
        known = self.dao_table.get(dao.node)
        if known is None or dao.path_seq >= known[1]:
            self.dao_table[dao.node] = (dao.parent, dao.path_seq)
            self.trace.emit(self.sim.now, "rpl.dao_registered", node=self.node_id,
                            child=dao.node, parent=dao.parent)

    def link_feedback(self, neighbor: int, success: bool) -> None:
        """MAC unicast outcome for a neighbor; drives ETX and repair."""
        entry = self.neighbors.get(neighbor)
        if entry is not None:
            entry.estimator.update(success)
        if neighbor != self.preferred_parent:
            return
        if success:
            self._parent_failures = 0
            return
        self._parent_failures += 1
        if self._parent_failures >= self.config.parent_fail_threshold:
            self._parent_failures = 0
            self.neighbors.blacklist(
                neighbor, self.sim.now + self.config.blacklist_s
            )
            self.trace.emit(self.sim.now, "rpl.parent_lost", node=self.node_id,
                            parent=neighbor)
            self._evaluate_parents(forced=True)

    # ------------------------------------------------------------------
    # parent selection
    # ------------------------------------------------------------------
    def _candidate_rank(self, entry: NeighborEntry) -> int:
        return self.objective.rank_through(entry.rank, entry.etx)

    def _eligible(self, entry: NeighborEntry) -> bool:
        if entry.rank >= INFINITE_RANK:
            return False
        if not self.objective.acceptable(entry.rank, entry.etx):
            return False
        # Loop avoidance: never pick a parent whose advertised rank is
        # not strictly better than the rank we would get through it.
        return entry.rank < self._candidate_rank(entry)

    def _evaluate_parents(self, forced: bool = False) -> None:
        if self.is_root or not self._started:
            return
        now = self.sim.now
        candidates = [e for e in self.neighbors.candidates(now) if self._eligible(e)]
        grounded = [e for e in candidates if e.grounded]
        pool = grounded if grounded else candidates
        if self.state is RplState.FLOATING_ROOT and not grounded:
            # Abdicate only to a floating DODAG with a smaller id, which
            # makes float merging converge instead of oscillating.
            pool = [
                e for e in pool
                if e.dodag_id is not None and e.dodag_id < self.node_id
            ]
        if not pool:
            if forced or self.state is RplState.JOINED:
                self._detach(reason="no_parent")
            return

        best = min(pool, key=self._candidate_rank)
        best_rank = self._candidate_rank(best)
        if self._exceeds_rank_cap(best_rank):
            self._detach(reason="max_rank_increase")
            return
        if self.preferred_parent is None or self.state is not RplState.JOINED:
            self._adopt(best, best_rank)
            return
        current = self.neighbors.get(self.preferred_parent)
        if (
            current is None
            or current.blacklisted_until > now
            or not self._eligible(current)
        ):
            self._adopt(best, best_rank)
            return
        current_rank = self._candidate_rank(current)
        if grounded and not current.grounded:
            # A grounded DODAG always beats a floating one (RFC 6550):
            # no rank hysteresis applies across the grounded boundary.
            self._adopt(best, best_rank)
            return
        if best.node_id != self.preferred_parent and self.objective.should_switch(
            current_rank, best_rank
        ):
            self._adopt(best, best_rank)
            return
        if (
            current.dodag_id != self.dodag_id
            or current.grounded != self.grounded
            or current.version > self.version
        ):
            # The parent migrated to another DODAG (e.g. its float
            # dissolved into the grounded DODAG): follow it.
            self._adopt(current, current_rank)
            return
        # Keep the parent; refresh our own rank from its latest DIO.
        if current_rank != self.rank:
            if self._exceeds_rank_cap(current_rank):
                self._detach(reason="max_rank_increase")
                return
            significant = abs(current_rank - self.rank) >= 256
            self.rank = current_rank
            self._rank_floor = min(self._rank_floor, self.rank)
            obs = self.trace.obs
            if obs is not None:
                obs.registry.inc("rpl.rank_change", node=self.node_id)
                obs.registry.set("rpl.rank", self.rank, node=self.node_id)
            if significant:
                self.trickle.reset()

    def _exceeds_rank_cap(self, new_rank: int) -> bool:
        if self._rank_floor >= INFINITE_RANK:
            return False
        return new_rank > self._rank_floor + self.config.max_rank_increase

    def _adopt(self, entry: NeighborEntry, new_rank: int) -> None:
        was_joined = self.state is RplState.JOINED
        old_parent = self.preferred_parent
        self.preferred_parent = entry.node_id
        self.rank = new_rank
        self._rank_floor = min(self._rank_floor, new_rank)
        self.dodag_id = entry.dodag_id
        self.version = max(self.version, entry.version)
        self.grounded = entry.grounded
        self.state = RplState.JOINED
        self._parent_failures = 0
        self._detached_since = None
        self._float_timer.cancel()
        self._dis_timer.cancel()
        if not self.trickle.running:
            self.trickle.start()
        self.trickle.reset()
        if not self._dao_timer.running:
            self._dao_timer.start()
        obs = self.trace.obs
        if obs is not None:
            obs.registry.set("rpl.rank", self.rank, node=self.node_id)
            obs.registry.set("rpl.parent", entry.node_id, node=self.node_id)
        if old_parent != entry.node_id:
            self.parent_changes += 1
            self.trace.emit(self.sim.now, "rpl.parent_change", node=self.node_id,
                            parent=entry.node_id, rank=self.rank)
            if obs is not None:
                obs.registry.inc("rpl.parent_change", node=self.node_id)
                if obs.spans is not None:
                    # One span per parent switch; it stays open until
                    # the repair DAO is dispatched (or the switch is
                    # superseded/aborted), so the DAO's datagram journey
                    # nests beneath the routing decision that caused it.
                    if self._switch_ctx is not None:
                        obs.spans.finish(self._switch_ctx, self.sim.now,
                                         superseded=True)
                    self._switch_ctx = obs.spans.start(
                        None, "rpl.parent_switch", node=self.node_id,
                        t=self.sim.now, old=old_parent, new=entry.node_id,
                        rank=self.rank,
                    )
            self._schedule_dao_soon()
            if self.on_parent_change is not None:
                self.on_parent_change(entry.node_id)
        if not was_joined:
            self.trace.emit(self.sim.now, "rpl.joined", node=self.node_id,
                            rank=self.rank, grounded=self.grounded)
            if obs is not None:
                obs.registry.inc("rpl.joined", node=self.node_id)
            if self.on_joined is not None:
                self.on_joined()

    def _detach(self, reason: str) -> None:
        if self.is_root:
            return
        was_attached = self.state in (RplState.JOINED, RplState.FLOATING_ROOT)
        self.state = RplState.DETACHED
        self.preferred_parent = None
        self.rank = INFINITE_RANK
        self._rank_floor = INFINITE_RANK
        self.grounded = False
        self._detached_since = self.sim.now
        self.trickle.stop()
        self._dao_timer.stop()
        self._poison()
        # Stale routing state caused this detach; demand fresh DIOs
        # before trusting any neighbor as a parent again.  Without this,
        # two detached neighbors re-adopt each other's stale ranks in a
        # count-to-infinity livelock.
        for entry in self.neighbors.values():
            entry.rank = INFINITE_RANK
        self._dis_timer.start(self._rng.uniform(0.5, self.config.dis_period_s))
        self._arm_float_timer()
        obs = self.trace.obs
        if obs is not None:
            obs.registry.set("rpl.rank", self.rank, node=self.node_id)
            obs.registry.set("rpl.parent", -1, node=self.node_id)
            if obs.spans is not None and self._switch_ctx is not None:
                obs.spans.finish(self._switch_ctx, self.sim.now, aborted=reason)
                self._switch_ctx = None
        if was_attached:
            self.trace.emit(self.sim.now, "rpl.detached", node=self.node_id,
                            reason=reason)
            if obs is not None:
                obs.registry.inc("rpl.detach", node=self.node_id, reason=reason)
            if self.on_detached is not None:
                self.on_detached()
        # A fresh look at the table: maybe another parent is available.
        self._evaluate_parents()

    def datapath_inconsistency(self) -> None:
        """An upward packet arrived from an equal-or-lower rank: a loop.
        Per RFC 6550 this resets Trickle so ranks re-converge quickly."""
        self.trace.emit(self.sim.now, "rpl.datapath_loop", node=self.node_id)
        self.trickle.reset()
        self._evaluate_parents()

    def declare_root_dead(self) -> None:
        """RNFD verdict: the grounded root is gone; detach immediately
        instead of waiting for staleness timeouts."""
        if self.is_root or self.state is RplState.FLOATING_ROOT:
            return
        for entry in self.neighbors.values():
            if entry.grounded:
                entry.rank = INFINITE_RANK
        self._detach(reason="rnfd_global_down")

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def _dis_tick(self) -> None:
        if self.state is not RplState.DETACHED:
            return
        dis = DisMessage()
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("rpl.dis", node=self.node_id)
        self.transport.broadcast_control(dis, dis.size_bytes)
        self._dis_timer.start(
            self._rng.uniform(
                self.config.dis_period_s * 0.5, self.config.dis_period_s * 1.5
            )
        )

    def _check_staleness(self) -> None:
        timeout = self.config.staleness_timeout_s
        if timeout is None or self.state is not RplState.JOINED:
            return
        parent = self.neighbors.get(self.preferred_parent) if (
            self.preferred_parent is not None
        ) else None
        if parent is None:
            return
        if self.sim.now - parent.last_dio_time > timeout:
            self.trace.emit(self.sim.now, "rpl.parent_stale", node=self.node_id,
                            parent=parent.node_id)
            self.neighbors.blacklist(
                parent.node_id, self.sim.now + self.config.blacklist_s
            )
            self._evaluate_parents(forced=True)

    def _arm_float_timer(self) -> None:
        delay = self.config.float_delay_s
        if delay is not None:
            self._float_timer.start(self._rng.uniform(delay, delay * 1.5))

    def _become_floating_root(self) -> None:
        if self.state is not RplState.DETACHED:
            return
        self.state = RplState.FLOATING_ROOT
        self.rank = ROOT_RANK
        self.dodag_id = self.node_id
        self.grounded = False
        self.preferred_parent = None
        self.dao_table = {}
        self._dis_timer.cancel()
        if not self.trickle.running:
            self.trickle.start()
        self.trickle.reset()
        self.trace.emit(self.sim.now, "rpl.floating_root", node=self.node_id)

    # ------------------------------------------------------------------
    # DAO / downward routes
    # ------------------------------------------------------------------
    def _schedule_dao_soon(self) -> None:
        self.sim.schedule(self._rng.uniform(0.5, 3.0), self._send_dao)

    def _send_dao(self) -> None:
        if self.state is not RplState.JOINED or self.preferred_parent is None:
            return
        self._path_seq += 1
        dao = DaoMessage(
            node=self.node_id, parent=self.preferred_parent,
            path_seq=self._path_seq,
        )
        self.dao_sent += 1
        obs = self.trace.obs
        ctx = self._switch_ctx
        if obs is not None:
            obs.registry.inc("rpl.dao", node=self.node_id)
        if self.send_dao_upward is not None:
            self.send_dao_upward(dao, dao.SIZE_BYTES, ctx)
        if ctx is not None:
            obs.spans.finish(ctx, self.sim.now, dao_seq=self._path_seq)
            self._switch_ctx = None

    def route_to(self, dst: int, max_hops: int = 32) -> Optional[List[int]]:
        """Root only: source route to ``dst`` from the DAO table.

        Returns the hop list *excluding* the root itself, ending at
        ``dst``, or None when unknown/looping.
        """
        if dst == self.node_id:
            return []
        path: List[int] = []
        cursor = dst
        root_id = self.node_id
        for _ in range(max_hops):
            entry = self.dao_table.get(cursor)
            if entry is None:
                return None
            parent = entry[0]
            path.append(cursor)
            if parent == root_id:
                path.reverse()
                return path
            cursor = parent
        return None

    def trigger_global_repair(self) -> None:
        """Root only: bump the DODAG version (RFC 6550 global repair)."""
        if not self.is_root:
            raise RuntimeError("only the root can trigger global repair")
        self.version += 1
        self.dao_table.clear()
        self.trickle.reset()
        self.trace.emit(self.sim.now, "rpl.global_repair", node=self.node_id,
                        version=self.version)
