"""RNFD: routing-layer detection of DODAG root failures (ref [32]).

The paper's §IV-B cites RNFD as the example of *exploiting parallelism*
to improve border-router failure detection *by orders of magnitude*.
The reproduction follows the published algorithm's structure:

- Nodes adjacent to the root act as **sentinels**: each independently
  probes the root over its link (here: a small unicast whose link-layer
  ACK is the liveness answer).
- A sentinel that sees ``fail_threshold`` consecutive probe failures
  casts a *locally down* verdict; a later success revokes it.
- Verdicts live in a **CFRC** (conflict-free replicated counter — a
  per-sentinel epoch/flag map with a join-semilattice merge), gossiped
  network-wide piggybacked on DIOs plus dedicated gossip rounds.
- Every node evaluates the same predicate: when at least ``quorum`` of
  the known sentinels say *down*, the root is **globally down** and the
  router detaches at once — no per-node timeout chains.

The baseline it beats (experiment E5) is standard RPL repair, where
knowledge of the root's death spreads only through per-node DIO
staleness timeouts and parent-failure cascades.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.net.rpl.dodag import RplRouter, RplState
from repro.net.rpl.messages import RnfdProbe
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLog


class RootState(enum.Enum):
    """A node's belief about the DODAG root."""

    ALIVE = "alive"
    SUSPECTED = "suspected"
    GLOBALLY_DOWN = "globally_down"


@dataclass
class Cfrc:
    """Conflict-free replicated verdict counter.

    Maps sentinel id -> (epoch, down).  Merging keeps, per sentinel, the
    entry with the larger epoch; a sentinel only ever increments its own
    epoch, so merge is idempotent, commutative, and associative — the
    lattice-join property that lets verdicts spread through unordered,
    repeated gossip without coordination (the CRDT insight of §IV-B
    applied inside the routing layer).
    """

    entries: Dict[int, Tuple[int, bool]] = field(default_factory=dict)

    def record(self, sentinel: int, down: bool) -> bool:
        """A sentinel casts/updates its own verdict.  Returns True when
        the state changed."""
        epoch, current = self.entries.get(sentinel, (0, False))
        if current == down and epoch > 0:
            return False
        self.entries[sentinel] = (epoch + 1, down)
        return True

    def merge(self, other: "Cfrc") -> bool:
        """Join with another replica.  Returns True when anything changed."""
        changed = False
        for sentinel, (epoch, down) in other.entries.items():
            mine = self.entries.get(sentinel)
            if mine is None or epoch > mine[0]:
                self.entries[sentinel] = (epoch, down)
                changed = True
        return changed

    def copy(self) -> "Cfrc":
        return Cfrc(entries=dict(self.entries))

    @property
    def sentinel_count(self) -> int:
        return len(self.entries)

    @property
    def down_count(self) -> int:
        return sum(1 for (_e, down) in self.entries.values() if down)

    def down_fraction(self) -> float:
        if not self.entries:
            return 0.0
        return self.down_count / len(self.entries)


@dataclass(frozen=True)
class RnfdConfig:
    """RNFD tunables (the quorum is experiment E5's ablation knob)."""

    probe_period_s: float = 10.0
    fail_threshold: int = 3
    #: Fraction of known sentinels that must say down.
    quorum: float = 0.51
    #: Require at least this many sentinel entries before a verdict.
    min_sentinels: int = 1
    #: Dedicated gossip broadcasts when the CFRC changed recently.
    gossip_period_s: float = 15.0
    probe_size_bytes: int = RnfdProbe.SIZE_BYTES


class RnfdAgent:
    """The per-node RNFD protocol agent, attached to an
    :class:`~repro.net.rpl.dodag.RplRouter`."""

    def __init__(
        self,
        sim: Simulator,
        router: RplRouter,
        config: Optional[RnfdConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.router = router
        self.config = config if config is not None else RnfdConfig()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.cfrc = Cfrc()
        self.root_state = RootState.ALIVE
        self.detection_time: Optional[float] = None
        self.dead_root: Optional[int] = None
        self.on_global_down: Optional[Callable[[], None]] = None
        self._consecutive_failures = 0
        self._probe_seq = 0
        self._gossip_budget = 0
        #: Open ``rnfd.verdict`` span: suspicion -> verdict/absolution.
        #: Kept after finish() so late gossip rounds still parent to it.
        self._verdict_ctx = None
        self._rng = sim.substream(f"rnfd.{router.node_id}")
        self._probe_timer = PeriodicTimer(
            sim, self.config.probe_period_s, self._probe_root,
            phase=self._rng.uniform(0.5, self.config.probe_period_s),
        )
        self._gossip_timer = PeriodicTimer(
            sim, self.config.gossip_period_s, self._gossip,
            phase=self._rng.uniform(0.5, self.config.gossip_period_s),
        )
        router.dio_option_providers.append(self._dio_options)
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin probing (if a sentinel) and gossiping."""
        if self._started:
            return
        self._started = True
        self._probe_timer.start()
        self._gossip_timer.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._probe_timer.stop()
        self._gossip_timer.stop()

    # ------------------------------------------------------------------
    # sentinel role
    # ------------------------------------------------------------------
    @property
    def is_sentinel(self) -> bool:
        """Sentinels are nodes with the grounded root as a link neighbor."""
        if self.router.is_root:
            return False
        root_id = self.router.dodag_id
        if root_id is None or not self.router.grounded:
            # A detached node that used to neighbor the root keeps its
            # sentinel duty until a verdict is reached.
            root_id = self._last_known_root()
            if root_id is None:
                return False
        entry = self.router.neighbors.get(root_id)
        return entry is not None and entry.dio_count > 0

    def _last_known_root(self) -> Optional[int]:
        for entry in self.router.neighbors.values():
            if entry.rank == 256 and entry.grounded:
                return entry.node_id
        return None

    def _root_id(self) -> Optional[int]:
        if self.router.grounded and self.router.dodag_id is not None:
            return self.router.dodag_id
        return self._last_known_root()

    def _probe_root(self) -> None:
        # Keep probing even after a global-down verdict: a resurrected
        # root is detected here, which starts the absolution wave.
        if not self.is_sentinel:
            return
        root_id = self._root_id()
        if root_id is None:
            return
        self._probe_seq += 1
        probe = RnfdProbe(seq=self._probe_seq)
        self.router.transport.unicast_control(
            root_id, probe, self.config.probe_size_bytes, done=self._probe_done
        )

    def _probe_done(self, success: bool) -> None:
        me = self.router.node_id
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("rnfd.probe", node=me, ok=success)
        if success:
            self._consecutive_failures = 0
            # Register as a live sentinel (on first success) or absolve
            # the root (after a down verdict).  Registration matters for
            # quorum semantics: the CFRC's denominator must count every
            # active sentinel, or a single sentinel convicts alone.
            if me not in self.cfrc.entries or self.cfrc.entries[me][1]:
                if self.cfrc.record(me, down=False):
                    self._mark_dirty()
                    self._reevaluate()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.config.fail_threshold:
            if self.cfrc.record(me, down=True):
                self.trace.emit(self.sim.now, "rnfd.locally_down", node=me)
                if obs is not None:
                    obs.registry.inc("rnfd.locally_down", node=me)
                self._ensure_verdict_span(role="sentinel")
                self._mark_dirty()
                self._reevaluate()

    # ------------------------------------------------------------------
    # dissemination
    # ------------------------------------------------------------------
    def _dio_options(self) -> Dict[str, object]:
        if not self.cfrc.entries:
            return {}
        return {"cfrc": self.cfrc.copy()}

    def handle_options(self, options: Dict[str, object]) -> None:
        """Merge CFRC state piggybacked on a received DIO/gossip."""
        incoming = options.get("cfrc")
        if not isinstance(incoming, Cfrc):
            return
        if self.cfrc.merge(incoming):
            obs = self.trace.obs
            if obs is not None:
                obs.registry.inc("rnfd.merge", node=self.router.node_id)
            self._mark_dirty()
            self.router.trickle.reset()  # spread news fast
            self._reevaluate()
        elif self.root_state is RootState.GLOBALLY_DOWN:
            # Even without new CFRC facts: a node that slipped back into
            # the dead root's DODAG must be torn off it.
            self._enforce_verdict()

    def _mark_dirty(self) -> None:
        """Budget a few dedicated gossip rounds for the changed state —
        one broadcast can be lost to a collision, and a detached router
        has no Trickle-paced DIOs left to piggyback on."""
        self._gossip_budget = 3

    def _gossip(self) -> None:
        if self._gossip_budget <= 0 or not self.cfrc.entries:
            return
        self._gossip_budget -= 1
        from repro.net.rpl.messages import RnfdGossip

        gossip = RnfdGossip(entries=dict(self.cfrc.entries))
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("rnfd.gossip", node=self.router.node_id)
        self.router.transport.broadcast_control(
            gossip, gossip.size_bytes, trace_ctx=self._verdict_ctx
        )

    # ------------------------------------------------------------------
    # verdict
    # ------------------------------------------------------------------
    _STATE_LEVEL = {
        RootState.ALIVE: 0,
        RootState.SUSPECTED: 1,
        RootState.GLOBALLY_DOWN: 2,
    }

    def _set_state(self, new_state: RootState) -> None:
        if new_state is self.root_state:
            return
        self.root_state = new_state
        obs = self.trace.obs
        if obs is not None:
            me = self.router.node_id
            obs.registry.set("rnfd.state", self._STATE_LEVEL[new_state], node=me)
            obs.registry.inc("rnfd.transition", node=me, to=new_state.value)

    def _ensure_verdict_span(self, role: str) -> None:
        """Open the per-node ``rnfd.verdict`` span at first suspicion.

        Its duration is the node's detection latency (suspicion to
        verdict); gossip broadcasts it triggers become its children, so
        the dissemination wave reconstructs as one tree per node.
        """
        obs = self.trace.obs
        if obs is None or obs.spans is None or self._verdict_ctx is not None:
            return
        self._verdict_ctx = obs.spans.start(
            None, "rnfd.verdict", node=self.router.node_id, t=self.sim.now,
            role=role,
        )

    def _reevaluate(self) -> None:
        if self.cfrc.sentinel_count < self.config.min_sentinels:
            return
        obs = self.trace.obs
        fraction = self.cfrc.down_fraction()
        if fraction >= self.config.quorum:
            if self.root_state is not RootState.GLOBALLY_DOWN:
                self._set_state(RootState.GLOBALLY_DOWN)
                self.detection_time = self.sim.now
                self.dead_root = self._root_id()
                self.trace.emit(self.sim.now, "rnfd.globally_down",
                                node=self.router.node_id, fraction=fraction)
                if obs is not None:
                    obs.registry.inc("rnfd.globally_down",
                                     node=self.router.node_id)
                    if obs.spans is not None:
                        self._ensure_verdict_span(role="observer")
                        obs.spans.event(
                            self._verdict_ctx, "rnfd.globally_down",
                            node=self.router.node_id, t=self.sim.now,
                            fraction=fraction,
                        )
                        obs.spans.finish(self._verdict_ctx, self.sim.now,
                                         verdict="globally_down")
                self._mark_dirty()
                self._gossip()
                if self.on_global_down is not None:
                    self.on_global_down()
            self._enforce_verdict()
        elif self.root_state is RootState.GLOBALLY_DOWN:
            # Sentinel absolutions pulled the count below quorum: the
            # root provably returned.
            self._set_state(
                RootState.SUSPECTED if self.cfrc.down_count else RootState.ALIVE
            )
            self.dead_root = None
            self.detection_time = None
            self.trace.emit(self.sim.now, "rnfd.absolved",
                            node=self.router.node_id)
            if obs is not None:
                obs.registry.inc("rnfd.absolved", node=self.router.node_id)
                if obs.spans is not None and self._verdict_ctx is not None:
                    obs.spans.event(self._verdict_ctx, "rnfd.absolved",
                                    node=self.router.node_id, t=self.sim.now)
                    self._verdict_ctx = None
        elif self.cfrc.down_count > 0:
            self._set_state(RootState.SUSPECTED)
            self._ensure_verdict_span(
                role="sentinel" if self.is_sentinel else "observer"
            )
        else:
            self._set_state(RootState.ALIVE)
            if self._verdict_ctx is not None and obs is not None and (
                obs.spans is not None
            ):
                obs.spans.finish(self._verdict_ctx, self.sim.now,
                                 verdict="revoked")
                self._verdict_ctx = None

    def _enforce_verdict(self) -> None:
        """Tear the router off a DODAG anchored at the convicted root."""
        router = self.router
        if router.state is not RplState.JOINED or not router.grounded:
            return
        if self.dead_root is not None and router.dodag_id != self.dead_root:
            return
        router.declare_root_dead()

    def reset(self) -> None:
        """Forget verdicts (after the root provably returned)."""
        self.cfrc = Cfrc()
        self._set_state(RootState.ALIVE)
        self.detection_time = None
        self.dead_root = None
        self._consecutive_failures = 0
        self._gossip_budget = 0
        obs = self.trace.obs
        if obs is not None and obs.spans is not None and (
            self._verdict_ctx is not None
        ):
            obs.spans.finish(self._verdict_ctx, self.sim.now, verdict="reset")
        self._verdict_ctx = None
