"""Neighbor tables and EWMA ETX link estimation.

ETX (expected transmission count) is estimated from MAC-layer unicast
feedback: each transmission outcome updates an exponentially weighted
delivery-probability estimate, ETX = 1/p.  Before any unicast feedback
exists, the estimate is seeded from DIO receptions (a weak prior), or —
when ``oracle_seed`` is enabled, the default for experiments that are
not about link estimation itself — from the medium's ground-truth PRR,
which removes estimator warm-up as a confound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net.rpl.messages import DioMessage


@dataclass
class LinkEstimator:
    """EWMA delivery-probability estimator for one directed link."""

    alpha: float = 0.2
    probability: float = 0.75
    samples: int = 0

    def update(self, success: bool) -> None:
        """Fold one unicast outcome into the estimate."""
        outcome = 1.0 if success else 0.0
        self.probability = (1 - self.alpha) * self.probability + self.alpha * outcome
        self.samples += 1

    @property
    def etx(self) -> float:
        """Expected transmissions for one success (clamped at 16)."""
        if self.probability <= 1.0 / 16.0:
            return 16.0
        return 1.0 / self.probability


@dataclass
class NeighborEntry:
    """Everything we know about one routing neighbor."""

    node_id: int
    estimator: LinkEstimator = field(default_factory=LinkEstimator)
    rank: int = 0xFFFF
    version: int = -1
    grounded: bool = True
    dodag_id: Optional[int] = None
    last_dio_time: float = float("-inf")
    dio_count: int = 0
    blacklisted_until: float = float("-inf")

    def observe_dio(self, dio: DioMessage, now: float) -> None:
        self.rank = dio.rank
        self.version = dio.version
        self.grounded = dio.grounded
        self.dodag_id = dio.dodag_id
        self.last_dio_time = now
        self.dio_count += 1

    @property
    def etx(self) -> float:
        return self.estimator.etx


class NeighborTable:
    """Bounded neighbor table with eviction of the stalest entry."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[int, NeighborEntry] = {}

    def get(self, node_id: int) -> Optional[NeighborEntry]:
        return self._entries.get(node_id)

    def get_or_create(self, node_id: int) -> NeighborEntry:
        entry = self._entries.get(node_id)
        if entry is None:
            if len(self._entries) >= self.capacity:
                self._evict_stalest()
            entry = NeighborEntry(node_id=node_id)
            self._entries[node_id] = entry
        return entry

    def _evict_stalest(self) -> None:
        stalest = min(self._entries.values(), key=lambda e: e.last_dio_time)
        del self._entries[stalest.node_id]

    def remove(self, node_id: int) -> None:
        self._entries.pop(node_id, None)

    def blacklist(self, node_id: int, until: float) -> None:
        """Temporarily exclude a neighbor from parent selection (after
        repeated unicast failures — local repair's first move)."""
        entry = self._entries.get(node_id)
        if entry is not None:
            entry.blacklisted_until = until

    def candidates(self, now: float):
        """Neighbors eligible for parent selection right now."""
        return [
            entry for entry in self._entries.values()
            if entry.blacklisted_until <= now
        ]

    def values(self):
        return self._entries.values()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries
