"""RPL objective functions: OF0 and MRHOF.

The objective function turns link metrics into ranks and decides when a
better parent is worth switching to.  MRHOF (ETX-based, RFC 6719) is the
deployed default; OF0 (hop count, RFC 6552) is kept as the ablation
baseline because its indifference to link quality shows why *configuring
networking protocols for individual deployments requires expertise*
(§V-D, ref [45]).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

#: Rank of a DODAG root.
ROOT_RANK = 256
#: Minimum rank increase per hop (RFC 6550 default).
MIN_HOP_RANK_INCREASE = 256
#: Rank advertised by detached/poisoning nodes.
INFINITE_RANK = 0xFFFF
#: Maximum usable rank.
MAX_RANK = INFINITE_RANK - 1


class ObjectiveFunction(abc.ABC):
    """Strategy deciding ranks and parent switches."""

    #: How much better (in rank units) a candidate must be before we
    #: abandon the current parent (RFC 6719 PARENT_SWITCH_RANK_THRESHOLD).
    parent_switch_threshold: int = 192

    @abc.abstractmethod
    def rank_through(self, parent_rank: int, etx: float) -> int:
        """Rank this node would advertise with that parent."""

    def acceptable(self, parent_rank: int, etx: float) -> bool:
        """Whether a neighbor is usable as a parent at all."""
        return parent_rank < INFINITE_RANK and self.rank_through(parent_rank, etx) <= MAX_RANK

    def should_switch(self, current_rank: int, candidate_rank: int) -> bool:
        """Hysteresis: switch only for a clear improvement."""
        return candidate_rank + self.parent_switch_threshold < current_rank


@dataclass
class Mrhof(ObjectiveFunction):
    """Minimum Rank with Hysteresis OF over the ETX metric (RFC 6719)."""

    max_link_etx: float = 8.0

    def rank_through(self, parent_rank: int, etx: float) -> int:
        if etx > self.max_link_etx:
            return INFINITE_RANK
        increase = max(1.0, etx) * MIN_HOP_RANK_INCREASE
        return min(int(parent_rank + increase), INFINITE_RANK)


@dataclass
class Of0(ObjectiveFunction):
    """Objective Function Zero: pure hop count (RFC 6552).

    Ignores link quality — every audible neighbor costs one hop — which
    makes it pick long, lossy links.  Kept as the ablation baseline.
    """

    #: OF0 tolerates any link the MAC will attempt.
    max_link_etx: float = float("inf")

    def rank_through(self, parent_rank: int, etx: float) -> int:
        return min(parent_rank + MIN_HOP_RANK_INCREASE, INFINITE_RANK)
