"""RPL control messages (compressed sizes).

Sizes follow typical 6LoWPAN-compressed ICMPv6 RPL messages; exact
values matter only in that control overhead is charged to the medium
like any other traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class DioMessage:
    """DODAG Information Object — the routing beacon.

    ``options`` carries piggybacked extensions (RNFD's CFRC rides here,
    exactly as the RNFD paper piggybacks on routing beacons).
    """

    dodag_id: int
    version: int
    rank: int
    grounded: bool = True
    options: Dict[str, Any] = field(default_factory=dict)

    SIZE_BYTES = 24

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES + (8 if self.options else 0)


@dataclass(frozen=True)
class DisMessage:
    """DODAG Information Solicitation — "send me a DIO"."""

    SIZE_BYTES = 6

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


@dataclass(frozen=True)
class DaoMessage:
    """Destination Advertisement Object (non-storing): advertises the
    sender's parent to the root so it can assemble source routes."""

    node: int
    parent: int
    path_seq: int

    SIZE_BYTES = 20

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


@dataclass(frozen=True)
class RnfdProbe:
    """RNFD sentinel probe to the root (link-layer ACK is the answer)."""

    seq: int

    SIZE_BYTES = 8

    @property
    def size_bytes(self) -> int:
        return self.SIZE_BYTES


@dataclass(frozen=True)
class RnfdGossip:
    """Standalone CFRC gossip (used between DIOs when state changes)."""

    entries: Dict[int, tuple]

    @property
    def size_bytes(self) -> int:
        return 6 + 4 * len(self.entries)
