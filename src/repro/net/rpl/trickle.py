"""The Trickle timer (RFC 6206) with pluggable adaptation variants.

Trickle is the pacing heart of RPL's DIO beaconing: transmissions slow
down exponentially while the network is consistent and snap back to the
minimum interval on inconsistency, giving both low steady-state overhead
and fast repair — the self-organizing behaviour §V-D credits to sensing
and actuation layer protocols.

The timer itself is a fixed state machine; the *policy* decisions — the
redundancy constant, the reset target, the interval growth — are
delegated to a :class:`TrickleVariant`.  The base variant is classic
RFC 6206 and reproduces the pre-refactor behaviour exactly (same RNG
draws, same event schedule), so runs that never select a variant stay
byte-identical.  The adaptive variants follow the qTrickle/ACPB line of
work: :class:`AdaptiveIminVariant` adapts the effective I_min to the
observed inconsistency load, :class:`AdaptiveKVariant` adapts the
suppression threshold to the observed per-interval redundancy.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Type

from repro.sim.kernel import Simulator
from repro.sim.timers import Timer
from repro.sim.trace import TraceLog


class TrickleVariant:
    """Adaptation policy consulted by :class:`TrickleTimer`.

    The base class *is* classic RFC 6206: fixed redundancy constant
    ``k``, reset to the configured I_min, doubling up to I_max.
    Adaptive variants override the decision hooks; the two ``observe_*``
    callbacks feed load signals back into the policy.  Instances are
    stateful and bind to exactly one timer.
    """

    name = "classic"

    def __init__(self) -> None:
        self.timer: Optional["TrickleTimer"] = None

    def bind(self, timer: "TrickleTimer") -> "TrickleVariant":
        """Attach to one timer; returns self for chaining."""
        if self.timer is not None and self.timer is not timer:
            raise ValueError(
                "a TrickleVariant instance binds to exactly one timer; "
                "build a fresh one per timer (see make_trickle_variant)")
        self.timer = timer
        return self

    # -- decision hooks ------------------------------------------------
    def suppression_threshold(self) -> int:
        """Redundancy constant consulted when the fire point arrives."""
        return self.timer.k

    def reset_interval(self) -> float:
        """Target interval for an inconsistency reset."""
        return self.timer.imin

    def next_interval(self, interval: float) -> float:
        """Interval following a completed interval."""
        return min(interval * 2.0, self.timer.imax)

    # -- load feedback -------------------------------------------------
    def observe_reset(self) -> None:
        """An inconsistency was signalled (called before the restart)."""

    def observe_interval_end(self, heard: int) -> None:
        """An interval completed having heard ``heard`` consistent msgs."""


class AdaptiveIminVariant(TrickleVariant):
    """Load-aware I_min adaptation (in the spirit of qTrickle).

    Bursts of inconsistency shrink the *effective* I_min — each reset
    multiplies it by ``shrink``, floored at ``floor_factor * imin`` —
    so repair traffic reacts faster while the topology is churning.
    ``relax_after`` consecutive quiet intervals double it back toward
    the configured I_min, restoring the classic steady-state overhead
    once the network settles.
    """

    name = "adaptive-imin"

    def __init__(self, shrink: float = 0.5, floor_factor: float = 0.25,
                 relax_after: int = 2) -> None:
        super().__init__()
        if not 0.0 < shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        if not 0.0 < floor_factor <= 1.0:
            raise ValueError("floor_factor must be in (0, 1]")
        if relax_after < 1:
            raise ValueError("relax_after must be >= 1")
        self.shrink = shrink
        self.floor_factor = floor_factor
        self.relax_after = relax_after
        self.imin_eff = 0.0
        self._quiet = 0

    def bind(self, timer: "TrickleTimer") -> "AdaptiveIminVariant":
        super().bind(timer)
        self.imin_eff = timer.imin
        return self

    def reset_interval(self) -> float:
        return self.imin_eff

    def observe_reset(self) -> None:
        self._quiet = 0
        self.imin_eff = max(self.timer.imin * self.floor_factor,
                            self.imin_eff * self.shrink)
        self.timer.record_gauge("rpl.trickle.imin_eff_s", self.imin_eff)

    def observe_interval_end(self, heard: int) -> None:
        self._quiet += 1
        if self._quiet >= self.relax_after and self.imin_eff < self.timer.imin:
            self._quiet = 0
            self.imin_eff = min(self.timer.imin, self.imin_eff * 2.0)
            self.timer.record_gauge("rpl.trickle.imin_eff_s", self.imin_eff)


class AdaptiveKVariant(TrickleVariant):
    """Suppression-threshold adaptation (in the spirit of ACPB).

    The effective ``k`` tracks observed per-interval redundancy: an
    interval that heard more than ``k_eff`` consistent messages lowers
    it toward ``k_min`` (dense neighborhood — suppress more), one that
    heard fewer than half raises it toward ``k_max`` (sparse — beacon
    more so coverage doesn't starve).
    """

    name = "adaptive-k"

    def __init__(self, k_min: int = 1, k_max: Optional[int] = None) -> None:
        super().__init__()
        if k_min < 1:
            raise ValueError("k_min must be >= 1")
        if k_max is not None and k_max < k_min:
            raise ValueError("k_max must be >= k_min")
        self.k_min = k_min
        self._k_max_config = k_max
        self.k_eff = 0
        self.k_max = 0

    def bind(self, timer: "TrickleTimer") -> "AdaptiveKVariant":
        super().bind(timer)
        self.k_eff = max(self.k_min, timer.k)
        self.k_max = (self._k_max_config if self._k_max_config is not None
                      else max(2 * timer.k, timer.k + 1))
        return self

    def suppression_threshold(self) -> int:
        return self.k_eff

    def observe_interval_end(self, heard: int) -> None:
        if heard > self.k_eff and self.k_eff > self.k_min:
            self.k_eff -= 1
            self.timer.record_gauge("rpl.trickle.k_eff", self.k_eff)
        elif heard < max(1, self.k_eff // 2) and self.k_eff < self.k_max:
            self.k_eff += 1
            self.timer.record_gauge("rpl.trickle.k_eff", self.k_eff)


#: name -> variant class, for config-driven selection
#: (``RplConfig(trickle_variant=)`` / ``SystemConfig(trickle_variant=)``).
TRICKLE_VARIANTS: Dict[str, Type[TrickleVariant]] = {
    TrickleVariant.name: TrickleVariant,
    AdaptiveIminVariant.name: AdaptiveIminVariant,
    AdaptiveKVariant.name: AdaptiveKVariant,
}


def make_trickle_variant(name: str) -> TrickleVariant:
    """Instantiate a registered variant by name (fresh per timer)."""
    try:
        cls = TRICKLE_VARIANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown Trickle variant {name!r}; "
            f"choose from {sorted(TRICKLE_VARIANTS)}") from None
    return cls()


class TrickleTimer:
    """RFC 6206 Trickle.

    Parameters
    ----------
    imin_s:
        Minimum interval length I_min, seconds.
    doublings:
        I_max = I_min * 2**doublings.
    k:
        Redundancy constant; the timer suppresses its transmission when
        it heard >= k consistent messages in the current interval.
    on_transmit:
        Called at the chosen instant t when not suppressed.
    trace / node:
        Optional observability wiring: when the shared trace log carries
        an ``repro.obs`` bundle, the timer records per-node
        ``rpl.trickle.*`` counters and the current interval gauge.
    variant:
        Adaptation policy (default: classic RFC 6206 behaviour).
    """

    def __init__(
        self,
        sim: Simulator,
        imin_s: float,
        doublings: int,
        k: int,
        on_transmit: Callable[[], None],
        rng: Optional[random.Random] = None,
        trace: Optional[TraceLog] = None,
        node: Optional[int] = None,
        variant: Optional[TrickleVariant] = None,
    ) -> None:
        if imin_s <= 0:
            raise ValueError("imin_s must be positive")
        if doublings < 0:
            raise ValueError("doublings must be >= 0")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.sim = sim
        self.imin = imin_s
        self.imax = imin_s * (2**doublings)
        self.k = k
        self.on_transmit = on_transmit
        self._rng = rng if rng is not None else sim.substream("trickle")
        self._trace = trace
        self._node = node
        self.variant = (variant if variant is not None
                        else TrickleVariant()).bind(self)
        self.interval = imin_s
        self.counter = 0
        self._fire_timer = Timer(sim, self._fire)
        self._interval_timer = Timer(sim, self._interval_end)
        self._running = False
        self.transmissions = 0
        self.suppressions = 0
        self.resets = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start at I = I_min (per RFC 6206 §4.2 step 1)."""
        if self._running:
            return
        self._running = True
        self.interval = self.imin
        self._begin_interval()

    def stop(self) -> None:
        """Halt; no transmissions until :meth:`start` again."""
        self._running = False
        self._fire_timer.cancel()
        self._interval_timer.cancel()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    def hear_consistent(self) -> None:
        """Register a consistent received message (increments c)."""
        self.counter += 1

    def hear_inconsistent(self) -> None:
        """Register an inconsistent message: reset to I_min."""
        self.reset()

    def reset(self) -> None:
        """External event: restart at the variant's reset interval."""
        if not self._running:
            return
        self.resets += 1
        obs = self._trace.obs if self._trace is not None else None
        if obs is not None:
            obs.registry.inc("rpl.trickle.reset", node=self._node)
        self.variant.observe_reset()
        target = self.variant.reset_interval()
        if self.interval > target:
            self.interval = target
            self._begin_interval()
        # RFC 6206: if I is already at the target, do nothing.

    def record_gauge(self, name: str, value: float) -> None:
        """Record a variant-owned gauge (no-op when uninstrumented)."""
        obs = self._trace.obs if self._trace is not None else None
        if obs is not None:
            obs.registry.set(name, value, node=self._node)

    # ------------------------------------------------------------------
    def _begin_interval(self) -> None:
        self.counter = 0
        t = self._rng.uniform(self.interval / 2.0, self.interval)
        self._fire_timer.start(t)
        self._interval_timer.start(self.interval)

    def _fire(self) -> None:
        obs = self._trace.obs if self._trace is not None else None
        if self.counter < self.variant.suppression_threshold():
            self.transmissions += 1
            if obs is not None:
                obs.registry.inc("rpl.trickle.tx", node=self._node)
            self.on_transmit()
        else:
            self.suppressions += 1
            if obs is not None:
                obs.registry.inc("rpl.trickle.suppressed", node=self._node)

    def _interval_end(self) -> None:
        self.variant.observe_interval_end(self.counter)
        self.interval = self.variant.next_interval(self.interval)
        obs = self._trace.obs if self._trace is not None else None
        if obs is not None:
            obs.registry.set("rpl.trickle.interval_s", self.interval,
                             node=self._node)
        self._begin_interval()
