"""The Trickle timer (RFC 6206).

Trickle is the pacing heart of RPL's DIO beaconing: transmissions slow
down exponentially while the network is consistent and snap back to the
minimum interval on inconsistency, giving both low steady-state overhead
and fast repair — the self-organizing behaviour §V-D credits to sensing
and actuation layer protocols.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.kernel import Simulator
from repro.sim.timers import Timer
from repro.sim.trace import TraceLog


class TrickleTimer:
    """RFC 6206 Trickle.

    Parameters
    ----------
    imin_s:
        Minimum interval length I_min, seconds.
    doublings:
        I_max = I_min * 2**doublings.
    k:
        Redundancy constant; the timer suppresses its transmission when
        it heard >= k consistent messages in the current interval.
    on_transmit:
        Called at the chosen instant t when not suppressed.
    trace / node:
        Optional observability wiring: when the shared trace log carries
        an ``repro.obs`` bundle, the timer records per-node
        ``rpl.trickle.*`` counters and the current interval gauge.
    """

    def __init__(
        self,
        sim: Simulator,
        imin_s: float,
        doublings: int,
        k: int,
        on_transmit: Callable[[], None],
        rng: Optional[random.Random] = None,
        trace: Optional[TraceLog] = None,
        node: Optional[int] = None,
    ) -> None:
        if imin_s <= 0:
            raise ValueError("imin_s must be positive")
        if doublings < 0:
            raise ValueError("doublings must be >= 0")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.sim = sim
        self.imin = imin_s
        self.imax = imin_s * (2**doublings)
        self.k = k
        self.on_transmit = on_transmit
        self._rng = rng if rng is not None else sim.substream("trickle")
        self._trace = trace
        self._node = node
        self.interval = imin_s
        self.counter = 0
        self._fire_timer = Timer(sim, self._fire)
        self._interval_timer = Timer(sim, self._interval_end)
        self._running = False
        self.transmissions = 0
        self.suppressions = 0
        self.resets = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start at I = I_min (per RFC 6206 §4.2 step 1)."""
        if self._running:
            return
        self._running = True
        self.interval = self.imin
        self._begin_interval()

    def stop(self) -> None:
        """Halt; no transmissions until :meth:`start` again."""
        self._running = False
        self._fire_timer.cancel()
        self._interval_timer.cancel()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    def hear_consistent(self) -> None:
        """Register a consistent received message (increments c)."""
        self.counter += 1

    def hear_inconsistent(self) -> None:
        """Register an inconsistent message: reset to I_min."""
        self.reset()

    def reset(self) -> None:
        """External event: restart at I_min unless already there."""
        if not self._running:
            return
        self.resets += 1
        obs = self._trace.obs if self._trace is not None else None
        if obs is not None:
            obs.registry.inc("rpl.trickle.reset", node=self._node)
        if self.interval > self.imin:
            self.interval = self.imin
            self._begin_interval()
        # RFC 6206: if I == Imin already, do nothing.

    # ------------------------------------------------------------------
    def _begin_interval(self) -> None:
        self.counter = 0
        t = self._rng.uniform(self.interval / 2.0, self.interval)
        self._fire_timer.start(t)
        self._interval_timer.start(self.interval)

    def _fire(self) -> None:
        obs = self._trace.obs if self._trace is not None else None
        if self.counter < self.k:
            self.transmissions += 1
            if obs is not None:
                obs.registry.inc("rpl.trickle.tx", node=self._node)
            self.on_transmit()
        else:
            self.suppressions += 1
            if obs is not None:
                obs.registry.inc("rpl.trickle.suppressed", node=self._node)

    def _interval_end(self) -> None:
        self.interval = min(self.interval * 2.0, self.imax)
        obs = self._trace.obs if self._trace is not None else None
        if obs is not None:
            obs.registry.set("rpl.trickle.interval_s", self.interval,
                             node=self._node)
        self._begin_interval()
