"""The per-node network stack.

Binds one radio, one MAC, one RPL router and (optionally) an RNFD agent
into the thing applications program against: a UDP-like socket API with
``bind(port, handler)`` and ``send_datagram(...)``.

Routing follows RPL's non-storing pattern: everything flows up the
DODAG to the root over preferred parents; the root source-routes
downward traffic from its DAO table; point-to-point traffic transits the
root.  The stack also owns fault hooks (:meth:`NetworkStack.fail` /
:meth:`NetworkStack.recover`) used by the dependability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.fragmentation import FragmentationAdapter
from repro.net.mac.base import MacLayer
from repro.net.mac.csma import CsmaConfig, CsmaMac
from repro.net.mac.lpl import LplConfig, LplMac
from repro.net.mac.rimac import RiMac, RiMacConfig
from repro.net.mac.tsch import TschConfig, TschMac
from repro.net.packet import BROADCAST, Datagram, MacFrame, NetPacket
from repro.net.rpl.dodag import RplConfig, RplRouter, RplState
from repro.net.rpl.messages import (
    DaoMessage,
    DioMessage,
    DisMessage,
    RnfdGossip,
    RnfdProbe,
)
from repro.net.rpl.objective import Mrhof, ObjectiveFunction, Of0
from repro.net.rpl.rnfd import Cfrc, RnfdAgent, RnfdConfig
from repro.radio.medium import Medium, Radio, RadioState
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog

#: Reserved UDP-like port carrying DAO messages to the root.
RPL_DAO_PORT = 0

_MAC_REGISTRY = {
    "csma": (CsmaMac, CsmaConfig),
    "lpl": (LplMac, LplConfig),
    "rimac": (RiMac, RiMacConfig),
    "tsch": (TschMac, TschConfig),
}

_OBJECTIVE_REGISTRY = {"mrhof": Mrhof, "of0": Of0}


@dataclass
class StackConfig:
    """Configuration shared by every node of one network."""

    mac: str = "csma"
    mac_config: Optional[object] = None
    rpl: RplConfig = field(default_factory=RplConfig)
    objective: str = "mrhof"
    rnfd_enabled: bool = False
    rnfd: RnfdConfig = field(default_factory=RnfdConfig)
    default_ttl: int = 16
    channel: int = 26
    tx_power_dbm: float = 0.0
    #: One blind retry through a (possibly new) parent on upward failure.
    upward_retries: int = 1

    def make_mac(self, sim: Simulator, radio: Radio, trace: TraceLog) -> MacLayer:
        try:
            mac_cls, config_cls = _MAC_REGISTRY[self.mac]
        except KeyError:
            raise ValueError(
                f"unknown MAC {self.mac!r}; choose from {sorted(_MAC_REGISTRY)}"
            ) from None
        mac_config = self.mac_config if self.mac_config is not None else config_cls()
        return mac_cls(sim, radio, config=mac_config, trace=trace)

    def make_objective(self) -> ObjectiveFunction:
        try:
            return _OBJECTIVE_REGISTRY[self.objective]()
        except KeyError:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"choose from {sorted(_OBJECTIVE_REGISTRY)}"
            ) from None


@dataclass
class StackStats:
    """End-to-end datagram accounting for one node."""

    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_forwarded: int = 0
    datagrams_dropped_no_route: int = 0
    datagrams_dropped_ttl: int = 0
    datagrams_dropped_link: int = 0


class NetworkStack:
    """One node's complete stack: radio + MAC + RPL (+ RNFD) + sockets."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: Tuple[float, float],
        config: Optional[StackConfig] = None,
        is_root: bool = False,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.config = config if config is not None else StackConfig()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.is_root = is_root
        self.stats = StackStats()
        self.radio = Radio(
            medium, node_id, position,
            tx_power_dbm=self.config.tx_power_dbm,
            channel=self.config.channel,
        )
        self.mac = self.config.make_mac(sim, self.radio, self.trace)
        self.mac.on_receive = self._on_mac_frame
        self.frag = FragmentationAdapter(
            sim, self.mac, deliver=self._on_reassembled, trace=self.trace,
        )
        self.rpl = RplRouter(
            sim, node_id, transport=self,
            config=self.config.rpl,
            objective=self.config.make_objective(),
            is_root=is_root, trace=self.trace,
        )
        self.rpl.send_dao_upward = self._send_dao
        self.rnfd: Optional[RnfdAgent] = None
        if self.config.rnfd_enabled:
            self.rnfd = RnfdAgent(sim, self.rpl, self.config.rnfd, self.trace)
        self._sockets: Dict[int, Callable[[Datagram], None]] = {}
        self.alive = True
        #: ``[registry, sent, delivered, forwarded, dropped(no_route),
        #: dropped(link), dropped(ttl), {port: latency histogram}]`` —
        #: per-datagram instruments resolved once instead of through
        #: the registry's label-tuple lookup on every packet (the MAC
        #: ``_finish_job`` cache pattern).  Keyed by registry identity
        #: so a fresh Observability never inherits another run's
        #: instruments; each slot fills on first occurrence only, so no
        #: zero-valued series appear in exported snapshots.
        self._obs_cache: Optional[list] = None

    # ------------------------------------------------------------------
    # lifecycle & faults
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring the whole stack up."""
        self.mac.start()
        self.rpl.start()
        if self.rnfd is not None:
            self.rnfd.start()

    def stop(self) -> None:
        if self.rnfd is not None:
            self.rnfd.stop()
        self.rpl.stop()
        self.mac.stop()

    def fail(self) -> None:
        """Crash-stop the node (dependability experiments)."""
        if not self.alive:
            return
        self.alive = False
        self.stop()
        self.radio.enabled = False
        self._force_radio_sleep()
        self.trace.emit(self.sim.now, "node.failed", node=self.node_id)

    def recover(self) -> None:
        """Restart after a crash; routing state is rebuilt from scratch."""
        if self.alive:
            return
        self.alive = True
        self.radio.enabled = True
        self.mac.start()
        self.rpl.start()
        if self.rnfd is not None:
            self.rnfd.reset()
            self.rnfd.start()
        self.trace.emit(self.sim.now, "node.recovered", node=self.node_id)

    def _force_radio_sleep(self) -> None:
        if self.radio.state is RadioState.TX:
            self.sim.schedule(0.05, self._force_radio_sleep)
        else:
            self.radio.sleep()

    # ------------------------------------------------------------------
    # RplTransport protocol
    # ------------------------------------------------------------------
    def broadcast_control(
        self, message: Any, size_bytes: int, trace_ctx: Any = None
    ) -> None:
        self.mac.send(BROADCAST, message, size_bytes, trace_ctx=trace_ctx)

    def unicast_control(
        self,
        dest: int,
        message: Any,
        size_bytes: int,
        done: Optional[Callable[[bool], None]] = None,
        trace_ctx: Any = None,
    ) -> None:
        self.mac.send(dest, message, size_bytes, done=done, trace_ctx=trace_ctx)

    def link_prr(self, neighbor: int) -> float:
        return self.medium.link_prr(self.node_id, neighbor)

    # ------------------------------------------------------------------
    # hot-path observability instruments
    # ------------------------------------------------------------------
    _SENT, _DELIVERED, _FORWARDED = 1, 2, 3
    _DROP_SLOT = {"no_route": 4, "link": 5, "ttl": 6}
    _LATENCY = 7

    def _obs_slots(self, obs: Any) -> list:
        cache = self._obs_cache
        if cache is None or cache[0] is not obs.registry:
            cache = self._obs_cache = [obs.registry, None, None, None,
                                       None, None, None, {}]
        return cache

    def _count_datagram(self, obs: Any, slot: int, name: str, **labels: Any) -> None:
        cache = self._obs_slots(obs)
        instrument = cache[slot]
        if instrument is None:
            instrument = cache[slot] = obs.registry.counter(
                name, node=self.node_id, **labels)
        instrument.value += 1.0

    def _observe_latency(self, obs: Any, port: int, latency: float,
                         trace_id: Optional[int] = None) -> None:
        recorders = self._obs_slots(obs)[self._LATENCY]
        slot = recorders.get(port)
        if slot is None:
            # `record` is the bound fast-path writer: values.append for
            # exact histograms, SketchHistogram.observe in sketch mode.
            # The instrument rides along for exemplar recording, which
            # only runs on sampled (trace-carrying) deliveries.
            instrument = obs.registry.histogram("net.latency_s", port=port)
            slot = recorders[port] = (instrument.record, instrument)
        slot[0](latency)
        if trace_id is not None:
            slot[1].add_exemplar(latency, trace_id)

    # ------------------------------------------------------------------
    # socket API
    # ------------------------------------------------------------------
    def bind(self, port: int, handler: Callable[[Datagram], None]) -> None:
        """Register ``handler`` for datagrams arriving on ``port``."""
        if port in self._sockets:
            raise ValueError(f"port {port} already bound on node {self.node_id}")
        self._sockets[port] = handler

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def send_datagram(
        self,
        dst: int,
        dst_port: int,
        payload: Any,
        payload_bytes: int,
        src_port: int = 1,
        done: Optional[Callable[[bool], None]] = None,
        trace_ctx: Any = None,
    ) -> None:
        """Send a datagram to node ``dst``.

        ``done(ok)`` reports only the *local* outcome (first hop handed
        to the MAC); end-to-end delivery is observed at the receiver.
        ``trace_ctx`` (repro.obs) makes the datagram's lifecycle span a
        child of the caller's span; under an observability run a root
        span is opened when the caller has none.
        """
        datagram = Datagram(
            src=self.node_id, src_port=src_port,
            dst=dst, dst_port=dst_port,
            payload=payload, payload_bytes=payload_bytes,
        )
        packet = NetPacket(
            src=self.node_id, dst=dst,
            payload=datagram, payload_bytes=datagram.size_bytes,
            ttl=self.config.default_ttl, created_at=self.sim.now,
        )
        obs = self.trace.obs
        if obs is not None:
            ctx = trace_ctx
            if obs.spans is not None:
                ctx = obs.spans.start(
                    trace_ctx, "net.datagram", node=self.node_id,
                    t=self.sim.now, dst=dst, port=dst_port,
                )
            packet.trace_ctx = ctx
            datagram.trace_ctx = ctx
            self._count_datagram(obs, self._SENT, "net.sent")
        self.stats.datagrams_sent += 1
        self._route(packet, done)

    def send_local_broadcast(
        self, port: int, payload: Any, payload_bytes: int, src_port: int = 1,
        trace_ctx: Any = None,
    ) -> None:
        """One-hop broadcast datagram to all MAC neighbors.

        Used by gossip protocols (CRDT anti-entropy, aggregation query
        dissemination) that deliberately work link-locally instead of
        routing through the DODAG.  ``trace_ctx`` parents the MAC job
        and per-fragment spans, and rides on the datagram so receivers
        can attach their handling to the sender's span.
        """
        datagram = Datagram(
            src=self.node_id, src_port=src_port,
            dst=BROADCAST, dst_port=port,
            payload=payload, payload_bytes=payload_bytes,
        )
        if trace_ctx is not None:
            datagram.trace_ctx = trace_ctx
        self.frag.send(BROADCAST, datagram, datagram.size_bytes,
                       trace_ctx=trace_ctx)

    @property
    def connected(self) -> bool:
        """True when the node has an upward route to a grounded root."""
        if self.is_root:
            return True
        return self.rpl.state is RplState.JOINED and self.rpl.grounded

    # ------------------------------------------------------------------
    # routing / forwarding
    # ------------------------------------------------------------------
    def _send_dao(
        self, dao: DaoMessage, size_bytes: int, trace_ctx: Any = None
    ) -> None:
        root = self.rpl.dodag_id
        if root is None:
            return
        self.send_datagram(root, RPL_DAO_PORT, dao, size_bytes,
                           trace_ctx=trace_ctx)

    def _route(
        self,
        packet: NetPacket,
        done: Optional[Callable[[bool], None]] = None,
        retries_left: Optional[int] = None,
    ) -> None:
        if retries_left is None:
            retries_left = self.config.upward_retries
        if packet.dst == self.node_id:
            self._deliver(packet)
            if done is not None:
                done(True)
            return
        obs = self.trace.obs
        next_hop = self._next_hop(packet)
        if next_hop is None:
            self.stats.datagrams_dropped_no_route += 1
            self.trace.emit(self.sim.now, "net.no_route", node=self.node_id,
                            dst=packet.dst)
            if obs is not None:
                self._count_datagram(obs, self._DROP_SLOT["no_route"],
                                     "net.dropped", reason="no_route")
                if obs.spans is not None and packet.trace_ctx is not None:
                    obs.spans.finish(packet.trace_ctx, self.sim.now,
                                     dropped="no_route")
            if done is not None:
                done(False)
            return

        # One forwarding-hop span per transmission attempt: the RPL
        # next-hop decision, the MAC job beneath it, and the outcome.
        hop_ctx = packet.trace_ctx
        if (obs is not None and obs.spans is not None
                and packet.trace_ctx is not None):
            hop_ctx = obs.spans.start(
                packet.trace_ctx, "net.hop", node=self.node_id,
                t=self.sim.now, next_hop=next_hop, ttl=packet.ttl,
            )

        def feedback(ok: bool) -> None:
            if hop_ctx is not packet.trace_ctx and hop_ctx is not None:
                obs.spans.finish(hop_ctx, self.sim.now, ok=ok)
            self.rpl.link_feedback(next_hop, ok)
            if ok:
                if done is not None:
                    done(True)
                return
            if retries_left > 0:
                # Parent re-selection may have found a different hop.
                self._route(packet, done, retries_left - 1)
                return
            self.stats.datagrams_dropped_link += 1
            self.trace.emit(self.sim.now, "net.link_drop", node=self.node_id,
                            dst=packet.dst, hop=next_hop)
            if obs is not None:
                self._count_datagram(obs, self._DROP_SLOT["link"],
                                     "net.dropped", reason="link")
                if obs.spans is not None and packet.trace_ctx is not None:
                    obs.spans.finish(packet.trace_ctx, self.sim.now,
                                     dropped="link")
            if done is not None:
                done(False)

        packet.sender_rank = self.rpl.rank
        self.frag.send(next_hop, packet, packet.size_bytes, done=feedback,
                       trace_ctx=hop_ctx)

    def _next_hop(self, packet: NetPacket) -> Optional[int]:
        # Downward source routing.
        if packet.source_route:
            try:
                index = packet.source_route.index(self.node_id)
            except ValueError:
                return packet.source_route[0]
            if index + 1 < len(packet.source_route):
                return packet.source_route[index + 1]
            return None
        # At the root: attach a source route from the DAO table.
        if self.rpl.state in (RplState.ROOT, RplState.FLOATING_ROOT) and (
            self.rpl.node_id == (self.rpl.dodag_id or self.rpl.node_id)
        ):
            route = self.rpl.route_to(packet.dst)
            if not route:
                return None
            packet.source_route = tuple(route)
            return route[0]
        # Upward default route.
        return self.rpl.preferred_parent

    def _deliver(self, packet: NetPacket) -> None:
        datagram = packet.payload
        if not isinstance(datagram, Datagram):
            return
        latency = self.sim.now - packet.created_at
        self.stats.datagrams_delivered += 1
        self.trace.emit(self.sim.now, "net.delivered", node=self.node_id,
                        src=packet.src, port=datagram.dst_port,
                        latency=latency, hops=packet.hops,
                        path=packet.source_route)
        obs = self.trace.obs
        if obs is not None:
            self._count_datagram(obs, self._DELIVERED, "net.delivered")
            ctx = packet.trace_ctx
            self._observe_latency(obs, datagram.dst_port, latency,
                                  ctx.trace_id if ctx is not None else None)
            if obs.spans is not None and packet.trace_ctx is not None:
                obs.spans.finish(packet.trace_ctx, self.sim.now,
                                 delivered=True, latency=latency,
                                 hops=packet.hops)
        if datagram.dst_port == RPL_DAO_PORT:
            if isinstance(datagram.payload, DaoMessage):
                self.rpl.handle_dao(datagram.payload)
            return
        handler = self._sockets.get(datagram.dst_port)
        if handler is not None:
            handler(datagram)

    # ------------------------------------------------------------------
    # MAC upcall dispatch
    # ------------------------------------------------------------------
    def _on_reassembled(self, src: int, payload: Any, total_bytes: int) -> None:
        """A fragmented payload completed reassembly: dispatch it as if
        it had arrived in one frame."""
        if isinstance(payload, NetPacket):
            self._handle_packet(payload)
        elif isinstance(payload, Datagram):
            handler = self._sockets.get(payload.dst_port)
            if handler is not None:
                handler(payload)

    def _on_mac_frame(self, frame: MacFrame) -> None:
        payload = frame.payload
        if self.frag.on_frame(frame.src, payload, frame.payload_bytes):
            return
        if isinstance(payload, DioMessage):
            self.rpl.handle_dio(frame.src, payload)
            if self.rnfd is not None and payload.options:
                self.rnfd.handle_options(payload.options)
            return
        if isinstance(payload, DisMessage):
            self.rpl.handle_dis(frame.src)
            return
        if isinstance(payload, RnfdProbe):
            return  # liveness answered by the link-layer ACK
        if isinstance(payload, RnfdGossip):
            if self.rnfd is not None:
                self.rnfd.handle_options({"cfrc": Cfrc(entries=dict(payload.entries))})
            return
        if isinstance(payload, NetPacket):
            self._handle_packet(payload)
            return
        if isinstance(payload, Datagram):
            # Link-local broadcast datagram (no network header).
            handler = self._sockets.get(payload.dst_port)
            if handler is not None:
                handler(payload)

    def _handle_packet(self, packet: NetPacket) -> None:
        packet.hops += 1  # one link traversed, delivery or forward alike
        if packet.dst == self.node_id:
            self._deliver(packet)
            return
        if not packet.source_route and packet.sender_rank <= self.rpl.rank:
            # Upward traffic must strictly decrease in rank.
            self.rpl.datapath_inconsistency()
        packet.ttl -= 1
        obs = self.trace.obs
        if packet.ttl <= 0:
            self.stats.datagrams_dropped_ttl += 1
            self.trace.emit(self.sim.now, "net.ttl_drop", node=self.node_id,
                            dst=packet.dst)
            if obs is not None:
                self._count_datagram(obs, self._DROP_SLOT["ttl"],
                                     "net.dropped", reason="ttl")
                if obs.spans is not None and packet.trace_ctx is not None:
                    obs.spans.finish(packet.trace_ctx, self.sim.now,
                                     dropped="ttl")
            return
        self.stats.datagrams_forwarded += 1
        if obs is not None:
            self._count_datagram(obs, self._FORWARDED, "net.forwarded")
        self._route(packet)
