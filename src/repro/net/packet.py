"""Packet formats with explicit byte accounting.

Constrained networks live and die by header bytes (the paper's §II-B:
bandwidth and energy are scarce), so every layer here charges a header
size and the medium charges airtime per byte.  Payloads themselves are
Python objects — we account their *declared* size rather than
serializing, which keeps the simulator fast while preserving the cost
model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

#: Link-layer broadcast address.
BROADCAST = 0xFFFF

#: 802.15.4-style MAC header+footer charged per frame.
MAC_HEADER_BYTES = 9
#: Link-layer acknowledgment frame size.
ACK_SIZE_BYTES = 5
#: Compressed (6LoWPAN-style) network header charged per packet.
NET_HEADER_BYTES = 7
#: Compressed UDP header.
UDP_HEADER_BYTES = 4

_seq_counter = itertools.count(1)


class FrameKind(enum.Enum):
    """Link-layer frame types."""

    DATA = "data"
    ACK = "ack"
    BEACON = "beacon"


@dataclass
class MacFrame:
    """A link-layer frame as seen by MAC state machines."""

    kind: FrameKind
    src: int
    dst: int
    seq: int
    payload: Any = None
    payload_bytes: int = 0
    #: Authentication tag bytes added by the security layer (0 = none).
    auth_bytes: int = 0
    #: Span context of the MAC job carrying this frame (repro.obs);
    #: None outside observability runs and for control/ACK frames.
    trace_ctx: Any = None

    @property
    def size_bytes(self) -> int:
        if self.kind is FrameKind.ACK:
            return ACK_SIZE_BYTES
        if self.kind is FrameKind.BEACON:
            return MAC_HEADER_BYTES
        return MAC_HEADER_BYTES + self.payload_bytes + self.auth_bytes


@dataclass
class NetPacket:
    """A network-layer packet routed hop by hop.

    ``source_route`` carries the remaining downward route in non-storing
    RPL; empty for upward (default-route) traffic.
    """

    src: int
    dst: int
    payload: Any
    payload_bytes: int
    ttl: int = 16
    hops: int = 0
    source_route: Tuple[int, ...] = ()
    #: RPL datapath validation (RFC 6550 §11.2): rank of the last
    #: forwarder; an upward packet arriving from an equal-or-lower rank
    #: signals a loop.
    sender_rank: int = 0
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_seq_counter))
    #: Root span of this packet's lifecycle trace (repro.obs); stays on
    #: the packet across hops so every layer attaches child spans to it.
    trace_ctx: Any = None

    @property
    def size_bytes(self) -> int:
        route_bytes = 2 * len(self.source_route)
        return NET_HEADER_BYTES + route_bytes + self.payload_bytes


@dataclass
class Datagram:
    """A UDP-like datagram delivered to a port on the destination node."""

    src: int
    src_port: int
    dst: int
    dst_port: int
    payload: Any
    payload_bytes: int
    #: Lifecycle span context (repro.obs), visible to the receiving
    #: application so request/response handlers can correlate.
    trace_ctx: Any = None

    @property
    def size_bytes(self) -> int:
        return UDP_HEADER_BYTES + self.payload_bytes


def next_seq() -> int:
    """Globally unique sequence number source for frames and packets."""
    return next(_seq_counter)
