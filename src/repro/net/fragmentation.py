"""6LoWPAN-style fragmentation (RFC 4944 §5.3).

IEEE 802.15.4 frames carry at most 127 bytes; anything bigger — a CoAP
payload, a CRDT state, a pull batch — must be fragmented at the
adaptation layer and reassembled hop by hop.  This module provides the
mesh-under variant: each hop reassembles the full packet before routing
it onward (how 6LoWPAN border implementations commonly behave), charging
the per-fragment header overhead and losing the whole packet if any
fragment dies.

The module is deliberately self-contained: :class:`FragmentationAdapter`
wraps a MAC's unicast path, so the stack stays oblivious except for two
calls.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.mac.base import MacLayer
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer
from repro.sim.trace import TraceLog

#: Maximum MAC payload a single 802.15.4 frame can carry after headers.
FRAME_MTU_BYTES = 102
#: FRAG1 header: dispatch + datagram size + tag (RFC 4944).
FRAG1_HEADER_BYTES = 4
#: FRAGN header: adds the offset byte.
FRAGN_HEADER_BYTES = 5
#: Reassembly buffers are discarded after this long (RFC 4944: 15 s).
REASSEMBLY_TIMEOUT_S = 15.0

_tag_counter = itertools.count(1)


@dataclass
class Fragment:
    """One link-layer fragment of a larger payload."""

    tag: int
    index: int
    count: int
    total_bytes: int
    chunk_bytes: int
    #: The original payload rides on the *first* fragment only (the
    #: simulator does not byte-slice objects); the rest carry padding.
    payload: Any = None

    @property
    def size_bytes(self) -> int:
        header = FRAG1_HEADER_BYTES if self.index == 0 else FRAGN_HEADER_BYTES
        return header + self.chunk_bytes


class _ReassemblyBuffer:
    __slots__ = ("fragments", "count", "payload", "timer")

    def __init__(self, count: int, timer: Timer) -> None:
        self.fragments: set = set()
        self.count = count
        self.payload: Any = None
        self.timer = timer


class FragmentationAdapter:
    """Fragments oversized unicasts and reassembles inbound fragments."""

    def __init__(
        self,
        sim: Simulator,
        mac: MacLayer,
        deliver: Callable[[int, Any, int], None],
        mtu_bytes: int = FRAME_MTU_BYTES,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.mac = mac
        self.deliver = deliver
        self.mtu_bytes = mtu_bytes
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._buffers: Dict[Tuple[int, int], _ReassemblyBuffer] = {}
        #: Recently completed (src, tag) pairs: a straggler duplicate of
        #: an already-delivered packet must not seed a fresh buffer (and
        #: eventually deliver twice).  Entries age out with the same
        #: timeout as reassembly itself.
        self._completed: Dict[Tuple[int, int], Timer] = {}
        self.packets_fragmented = 0
        self.fragments_sent = 0
        self.reassemblies = 0
        self.reassembly_failures = 0
        self.duplicate_fragments = 0

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def needs_fragmentation(self, size_bytes: int) -> bool:
        return size_bytes > self.mtu_bytes

    def plan(self, total_bytes: int) -> List[int]:
        """Chunk sizes for a payload of ``total_bytes``."""
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        chunk = self.mtu_bytes - FRAGN_HEADER_BYTES
        sizes = []
        remaining = total_bytes
        while remaining > 0:
            sizes.append(min(chunk, remaining))
            remaining -= chunk
        return sizes

    def send(
        self,
        dest: int,
        payload: Any,
        size_bytes: int,
        done: Optional[Callable[[bool], None]] = None,
        trace_ctx: Any = None,
    ) -> None:
        """Send, fragmenting when the payload exceeds the frame MTU.

        ``done(ok)`` fires once: True only if *every* fragment was
        acknowledged — losing one fragment loses the packet.
        ``trace_ctx`` propagates the lifecycle span to the MAC jobs;
        a fragmented send opens one ``net.fragment`` child span per
        fragment beneath it, so the MAC/radio work of each fragment
        reconstructs separately instead of collapsing into one hop.
        """
        if not self.needs_fragmentation(size_bytes):
            self.mac.send(dest, payload, size_bytes, done=done,
                          trace_ctx=trace_ctx)
            return
        sizes = self.plan(size_bytes)
        tag = next(_tag_counter)
        self.packets_fragmented += 1
        outcome = {"pending": len(sizes), "failed": False}

        def all_done(ok: bool) -> None:
            outcome["pending"] -= 1
            if not ok:
                outcome["failed"] = True
            if outcome["pending"] == 0 and done is not None:
                done(not outcome["failed"])

        obs = self.trace.obs
        spans = obs.spans if obs is not None else None
        node_id = self.mac.radio.node_id
        if obs is not None:
            obs.registry.inc("frag.fragments", len(sizes), node=node_id)
        for index, chunk_bytes in enumerate(sizes):
            fragment = Fragment(
                tag=tag, index=index, count=len(sizes),
                total_bytes=size_bytes, chunk_bytes=chunk_bytes,
                payload=payload if index == 0 else None,
            )
            self.fragments_sent += 1
            frag_ctx = trace_ctx
            frag_done: Callable[[bool], None] = all_done
            if spans is not None and trace_ctx is not None:
                frag_ctx = spans.start(
                    trace_ctx, "net.fragment", node=node_id, t=self.sim.now,
                    tag=tag, index=index, of=len(sizes),
                    bytes=fragment.size_bytes,
                )

                def frag_done(ok: bool, _ctx=frag_ctx) -> None:
                    spans.finish(_ctx, self.sim.now, ok=ok)
                    all_done(ok)

            self.mac.send(dest, fragment, fragment.size_bytes,
                          done=frag_done, trace_ctx=frag_ctx)
        self.trace.emit(self.sim.now, "frag.sent", node=node_id,
                        tag=tag, fragments=len(sizes), bytes=size_bytes)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_frame(self, src: int, payload: Any, payload_bytes: int) -> bool:
        """Feed a received MAC payload; returns True when consumed.

        Non-fragment payloads return False so the stack dispatches them
        normally.
        """
        if not isinstance(payload, Fragment):
            return False
        key = (src, payload.tag)
        if key in self._completed:
            self.duplicate_fragments += 1
            return True
        buffer = self._buffers.get(key)
        if buffer is None:
            timer = Timer(self.sim, lambda: self._expire(key))
            buffer = _ReassemblyBuffer(payload.count, timer)
            self._buffers[key] = buffer
            timer.start(REASSEMBLY_TIMEOUT_S)
        buffer.fragments.add(payload.index)
        if payload.index == 0:
            buffer.payload = payload.payload
        if len(buffer.fragments) == buffer.count:
            buffer.timer.cancel()
            del self._buffers[key]
            done_timer = Timer(self.sim, lambda: self._completed.pop(key, None))
            self._completed[key] = done_timer
            done_timer.start(REASSEMBLY_TIMEOUT_S)
            self.reassemblies += 1
            self.trace.emit(self.sim.now, "frag.reassembled",
                            node=self.mac.radio.node_id, src=src,
                            tag=payload.tag)
            self.deliver(src, buffer.payload, payload.total_bytes)
        return True

    def _expire(self, key: Tuple[int, int]) -> None:
        if key in self._buffers:
            del self._buffers[key]
            self.reassembly_failures += 1
            self.trace.emit(self.sim.now, "frag.timeout",
                            node=self.mac.radio.node_id, tag=key[1])

    @property
    def pending_reassemblies(self) -> int:
        return len(self._buffers)
