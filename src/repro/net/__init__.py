"""Constrained-device network stack.

The stack mirrors what runs on real sensing-and-actuation-layer devices:

- :mod:`repro.net.packet` — frame/datagram formats with byte accounting;
- :mod:`repro.net.mac` — medium-access protocols: always-on CSMA, BoX-MAC
  style low-power listening, RI-MAC style receiver-initiated, and a
  Glossy-style synchronous-flooding primitive;
- :mod:`repro.net.rpl` — an RPL-like routing layer (Trickle, DODAG
  formation, MRHOF/OF0, repair), RNFD root-failure detection, and
  partition handling;
- :mod:`repro.net.stack` — the per-node stack binding radio, MAC,
  routing, and a UDP-like socket API together.
"""

from repro.net.packet import BROADCAST, Datagram, MacFrame, NetPacket
from repro.net.stack import NetworkStack, StackConfig

__all__ = [
    "BROADCAST",
    "Datagram",
    "MacFrame",
    "NetPacket",
    "NetworkStack",
    "StackConfig",
]
