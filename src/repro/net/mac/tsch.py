"""TSCH-style scheduled MAC: slotframe, cells, and 6P cell negotiation.

Time-Slotted Channel Hopping (IEEE 802.15.4-2015 TSCH, the 6TiSCH
industrial baseline) divides time into a repeating *slotframe* of fixed
slots.  A node is awake only in slots where its schedule holds a
*cell*; everything else is radio-off.  This implementation models the
6TiSCH-minimal shape:

- one **shared minimal cell** (slot 0, channel offset 0) on every node
  carries broadcasts (DIO/DIS advertisement and join traffic) and any
  unicast that has no dedicated cell yet, with slotted CSMA-CA access
  (CCA plus a per-node jitter inside the slot, exponential backoff in
  shared-cell occurrences after a failed unicast);
- **dedicated TX cells** toward individual neighbors are negotiated on
  demand by a minimal MSF-like scheduling function: unicast demand
  observed on the shared cell triggers a first ADD, and the per-neighbor
  cell utilization (used/elapsed, MSF's ``NumCellsUsed/NumCellsElapsed``)
  adds cells above :attr:`TschConfig.msf_high` and deletes them below
  :attr:`TschConfig.msf_low`;
- cell negotiation is a **6P-style two-step transaction**
  (:class:`SixpPeer`): the initiator reserves candidate slots and sends
  an ADD request, the responder installs the first workable candidate as
  an RX cell and confirms it, and only the confirmed cell is committed
  as a TX cell — so a dedicated TX cell always has a matching RX cell at
  the peer, and a timeout releases every reservation (no orphans);
- **channel hopping**: the frequency of a cell is
  ``hopping[(ASN + channelOffset) % len(hopping)]``, so cells on
  different channel offsets never interfere and narrow-band interferers
  are averaged over the hop sequence.

Slot alignment is global: ASN is derived from simulation time against a
shared epoch at t=0 (the network is assumed time-synchronized, the
coordination cost §IV-B attributes to scheduled MACs), which also makes
schedules seed-deterministic — every random choice (candidate slots,
channel offsets, shared-cell jitter/backoff) draws from the node's
``mac.<id>`` substream.

The class plugs into the :class:`~repro.net.mac.base.MacLayer` contract
unchanged: same ``mac.job`` spans split at ``service_start`` (here the
split point is dequeue, so ``mac.access`` covers the wait for a usable
cell — exactly the scheduled-MAC latency story), same ``mac.tx``
instruments, same queue/dedup/ACK machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.mac.base import MacConfigError, MacLayer, _TxJob
from repro.net.packet import BROADCAST, MacFrame
from repro.sim.timers import Timer

#: The default 6TiSCH hopping sequence over the 16 IEEE 802.15.4
#: channels (11..26).  All nodes share it; a cell's frequency is
#: ``hopping[(ASN + channel_offset) % 16]``.
DEFAULT_HOPPING: Tuple[int, ...] = (
    16, 17, 23, 18, 26, 15, 25, 22, 19, 11, 12, 13, 24, 14, 20, 21,
)

#: Slot of the shared minimal cell (6TiSCH-minimal: slot 0, offset 0).
MINIMAL_SLOT = 0

#: Wire size charged for a 6P negotiation payload.
SIXP_MESSAGE_BYTES = 14


class SlotConflictError(ValueError):
    """Raised when a cell would double-book a slot (or reservation)."""


@dataclass(frozen=True)
class Cell:
    """One schedule entry: a (slot, channel offset) rendezvous.

    ``neighbor`` is the peer the cell is dedicated to, or
    :data:`~repro.net.packet.BROADCAST` for the shared minimal cell.
    """

    slot: int
    channel_offset: int
    neighbor: int
    tx: bool = False
    rx: bool = False
    shared: bool = False


@dataclass(frozen=True)
class SixpMessage:
    """A 6P-style negotiation payload, carried inside a DATA frame.

    ``cells`` holds ``(slot, channel_offset)`` pairs: the candidate
    list on a request, the confirmed (or removed) cells on a response.
    ADD requests also carry ``active`` — the initiator's authoritative
    list of TX cells it currently holds toward the responder — so the
    responder can garbage-collect RX cells orphaned by lost or late
    responses before judging its capacity.
    """

    op: str                                # "add" | "delete"
    step: str                              # "request" | "response"
    txn: int
    cells: Tuple[Tuple[int, int], ...]
    ok: bool = True
    active: Tuple[Tuple[int, int], ...] = ()


class TschSchedule:
    """One node's slotframe: at most one cell per slot, plus the
    transaction reservations 6P holds while an ADD is in flight."""

    def __init__(self, slots: int) -> None:
        if slots < 2:
            raise MacConfigError("slotframe needs at least 2 slots")
        self.slots = slots
        self._cells: Dict[int, Cell] = {}
        self._reserved: Dict[int, int] = {}    # slot -> holding txn

    # -- queries -------------------------------------------------------
    def get(self, slot: int) -> Optional[Cell]:
        return self._cells.get(slot)

    def cells(self) -> List[Cell]:
        return [self._cells[s] for s in sorted(self._cells)]

    def dedicated_cells(self) -> List[Cell]:
        return [c for c in self.cells() if not c.shared]

    def tx_cells_to(self, neighbor: int) -> List[Cell]:
        return [c for c in self.cells() if c.tx and not c.shared
                and c.neighbor == neighbor]

    def rx_cells_from(self, neighbor: int) -> List[Cell]:
        return [c for c in self.cells() if c.rx and not c.shared
                and c.neighbor == neighbor]

    def neighbors(self) -> List[int]:
        return sorted({c.neighbor for c in self._cells.values()
                       if not c.shared})

    def free_slots(self) -> List[int]:
        """Slots neither scheduled nor reserved, in slot order."""
        return [s for s in range(self.slots)
                if s not in self._cells and s not in self._reserved]

    def reserved_slots(self, txn: Optional[int] = None) -> List[int]:
        return sorted(s for s, t in self._reserved.items()
                      if txn is None or t == txn)

    # -- mutation ------------------------------------------------------
    def add(self, cell: Cell) -> None:
        if not 0 <= cell.slot < self.slots:
            raise SlotConflictError(
                f"slot {cell.slot} outside slotframe of {self.slots}")
        if cell.slot in self._cells:
            raise SlotConflictError(f"slot {cell.slot} already scheduled")
        if cell.slot in self._reserved:
            raise SlotConflictError(
                f"slot {cell.slot} reserved by txn {self._reserved[cell.slot]}")
        self._cells[cell.slot] = cell

    def remove(self, slot: int) -> Cell:
        if slot not in self._cells:
            raise SlotConflictError(f"slot {slot} not scheduled")
        return self._cells.pop(slot)

    def reserve(self, slot: int, txn: int) -> None:
        if slot in self._cells:
            raise SlotConflictError(f"slot {slot} already scheduled")
        if slot in self._reserved:
            raise SlotConflictError(
                f"slot {slot} reserved by txn {self._reserved[slot]}")
        self._reserved[slot] = txn

    def release(self, slot: int, txn: int) -> None:
        if self._reserved.get(slot) == txn:
            del self._reserved[slot]

    def install_reserved(self, slot: int, txn: int, cell: Cell) -> None:
        """Commit a reservation into a real cell (the 6P confirm step)."""
        if self._reserved.get(slot) != txn:
            raise SlotConflictError(
                f"slot {slot} not reserved by txn {txn}")
        del self._reserved[slot]
        self.add(cell)


@dataclass
class _Transaction:
    txn: int
    peer: int
    op: str
    cells: Tuple[Tuple[int, int], ...]
    deadline: float


@dataclass
class TschStats:
    """Scheduled-MAC counters beyond the common :class:`MacStats`."""

    dedicated_tx: int = 0
    shared_tx: int = 0
    #: Shared-cell TX opportunities given up to CCA or backoff.
    shared_deferrals: int = 0
    #: Unicast attempts in the shared cell that drew no ACK.
    shared_failures: int = 0
    sixp_sent: int = 0
    sixp_received: int = 0
    cells_added: int = 0
    cells_deleted: int = 0
    sixp_timeouts: int = 0
    #: Lifetime dedicated-cell accounting (MSF's used/elapsed signal).
    cells_elapsed: int = 0
    cells_used: int = 0


class SixpPeer:
    """The 6P-style two-step transaction layer over one schedule.

    Pure state machine — no timers, no radio: callers feed it
    :meth:`initiate_add` / :meth:`initiate_delete` / :meth:`handle` /
    :meth:`expire` and transport whatever messages it returns.  Under
    any interleaving of message loss and timeouts it maintains:

    - at most one in-flight transaction per peer;
    - candidate slots stay reserved only while their transaction is in
      flight — a response, a timeout, or a failure releases every one
      (*no orphaned reservations*);
    - a TX cell is committed only for the cell the peer confirmed, and
      responders install their RX cell *before* the confirmation
      travels back — so a lost response can leave a superfluous RX
      cell (idle listening, reclaimed by a later delete) but never a
      TX cell nobody listens to;
    - deletes drop the initiator's TX cells at request time, keeping
      the same "RX is a superset of peer TX" invariant for removal.
    """

    def __init__(self, node_id: int, schedule: TschSchedule, rng,
                 config: "TschConfig", stats: Optional[TschStats] = None) -> None:
        self.node_id = node_id
        self.schedule = schedule
        self._rng = rng
        self.config = config
        self.stats = stats if stats is not None else TschStats()
        self._txn_seq = 0
        self._inflight: Dict[int, _Transaction] = {}

    def busy(self, peer: int) -> bool:
        return peer in self._inflight

    def inflight_count(self) -> int:
        return len(self._inflight)

    def _next_txn(self) -> int:
        self._txn_seq += 1
        # Node-scoped ids: (initiator, txn) is unique network-wide.
        return self._txn_seq

    # -- initiator side ------------------------------------------------
    def initiate_add(self, peer: int, now: float) -> Optional[SixpMessage]:
        """Reserve candidates and build an ADD request (None = can't)."""
        if peer in self._inflight:
            return None
        free = self.schedule.free_slots()
        if not free:
            return None
        count = min(self.config.sixp_candidates, len(free))
        slots = sorted(self._rng.sample(free, count))
        txn = self._next_txn()
        cells = tuple(
            (slot, self._rng.randrange(self.config.channel_offsets))
            for slot in slots)
        for slot, _ in cells:
            self.schedule.reserve(slot, txn)
        self._inflight[peer] = _Transaction(
            txn, peer, "add", cells, now + self.config.sixp_timeout_s)
        active = tuple((c.slot, c.channel_offset)
                       for c in self.schedule.tx_cells_to(peer))
        return SixpMessage("add", "request", txn, cells, active=active)

    def initiate_delete(self, peer: int, victims: List[Cell],
                        now: float) -> Optional[SixpMessage]:
        """Drop TX cells toward ``peer`` and build the DELETE request.

        The cells are removed immediately (optimistic delete): the
        request only tells the peer to stop listening, so losing it can
        strand RX cells but never a transmitting side.
        """
        if peer in self._inflight or not victims:
            return None
        cells = tuple((c.slot, c.channel_offset) for c in victims)
        for cell in victims:
            self.schedule.remove(cell.slot)
        self.stats.cells_deleted += len(victims)
        txn = self._next_txn()
        self._inflight[peer] = _Transaction(
            txn, peer, "delete", cells, now + self.config.sixp_timeout_s)
        return SixpMessage("delete", "request", txn, cells)

    # -- responder side ------------------------------------------------
    def handle(self, src: int, msg: SixpMessage,
               now: float) -> Optional[SixpMessage]:
        """Process one received 6P message; returns the reply to send."""
        if msg.step == "request":
            return self._handle_request(src, msg)
        self._handle_response(src, msg)
        return None

    def _handle_request(self, src: int, msg: SixpMessage) -> SixpMessage:
        if msg.op == "add":
            # Reconcile against the initiator's declared TX set: an RX
            # cell the initiator does not transmit into is an orphan
            # from a lost/late response — reclaim it, or the neighbor
            # cap would wedge all future ADDs from this peer.
            active = set(msg.active)
            for cell in self.schedule.rx_cells_from(src):
                if (cell.slot, cell.channel_offset) not in active:
                    self.schedule.remove(cell.slot)
                    self.stats.cells_deleted += 1
            if (len(self.schedule.rx_cells_from(src))
                    >= self.config.max_cells_per_neighbor):
                return SixpMessage("add", "response", msg.txn, (), ok=False)
            for slot, choff in msg.cells:
                cell = Cell(slot, choff, neighbor=src, rx=True)
                try:
                    self.schedule.add(cell)
                except SlotConflictError:
                    continue
                self.stats.cells_added += 1
                return SixpMessage("add", "response", msg.txn,
                                   ((slot, choff),), ok=True)
            return SixpMessage("add", "response", msg.txn, (), ok=False)
        removed = []
        for slot, choff in msg.cells:
            cell = self.schedule.get(slot)
            if cell is not None and cell.rx and cell.neighbor == src:
                self.schedule.remove(slot)
                removed.append((slot, choff))
        self.stats.cells_deleted += len(removed)
        return SixpMessage("delete", "response", msg.txn,
                           tuple(removed), ok=True)

    def _handle_response(self, src: int, msg: SixpMessage) -> None:
        txn = self._inflight.get(src)
        if txn is None or txn.txn != msg.txn or txn.op != msg.op:
            return      # stale or duplicate response
        del self._inflight[src]
        if txn.op != "add":
            return      # delete already applied at request time
        chosen = msg.cells[0] if (msg.ok and msg.cells) else None
        if chosen is not None and chosen not in txn.cells:
            chosen = None       # peer confirmed a cell we never offered
        for slot, choff in txn.cells:
            if chosen is not None and (slot, choff) == chosen:
                self.schedule.install_reserved(
                    slot, txn.txn,
                    Cell(slot, choff, neighbor=src, tx=True))
                self.stats.cells_added += 1
            else:
                self.schedule.release(slot, txn.txn)

    # -- timeouts ------------------------------------------------------
    def expire(self, now: float) -> int:
        """Abort transactions past their deadline, releasing holds."""
        expired = [p for p, t in self._inflight.items() if t.deadline <= now]
        for peer in expired:
            txn = self._inflight.pop(peer)
            if txn.op == "add":
                for slot, _ in txn.cells:
                    self.schedule.release(slot, txn.txn)
            self.stats.sixp_timeouts += 1
        return len(expired)


@dataclass(frozen=True)
class TschConfig:
    """TSCH parameters (defaults follow the 6TiSCH-minimal shape)."""

    #: Slot length (10 ms, the 802.15.4 TSCH default template).
    slot_duration_s: float = 0.010
    #: Slots per slotframe (101, prime, so dedicated cells precess
    #: against periodic traffic instead of phase-locking to it).
    slotframe_slots: int = 101
    #: Channel-offset space for dedicated cells (the minimal cell is
    #: pinned at offset 0).
    channel_offsets: int = 4
    #: Network-wide hop sequence; frequency = hopping[(ASN+off) % len].
    hopping: Tuple[int, ...] = DEFAULT_HOPPING
    #: In-slot delay before the data frame starts (TsTxOffset).
    tx_offset_s: float = 0.0021
    #: Shared-cell CSMA-CA: transmission jitter window before which CCA
    #: runs, so contending nodes serialize instead of colliding head-on.
    shared_jitter_s: float = 0.0012
    #: How long past the frame end the sender waits for the ACK.
    ack_wait_s: float = 0.003
    #: Radio-off guard before the slot boundary (avoids a sleep/wake
    #: tie with the next slot's tick).
    slot_guard_s: float = 0.0005
    #: Link-layer retransmissions of one frame (across later cells).
    max_retries: int = 7
    #: Shared-cell backoff exponent bounds: after a failed shared-cell
    #: unicast the node skips ``U{0 .. 2^BE-1}`` shared occurrences.
    shared_be_min: int = 1
    shared_be_max: int = 5
    #: MSF evaluation window (dedicated TX cell occurrences per
    #: neighbor) and the add/delete utilization thresholds.
    msf_eval_cells: int = 8
    msf_high: float = 0.75
    msf_low: float = 0.15
    max_cells_per_neighbor: int = 3
    #: ADD candidates offered per 6P request.
    sixp_candidates: int = 3
    #: 6P transaction lifetime before the initiator gives up.
    sixp_timeout_s: float = 6.0

    def validate(self) -> None:
        if self.slot_duration_s <= 0:
            raise MacConfigError("slot_duration_s must be positive")
        if self.slotframe_slots < 2:
            raise MacConfigError("slotframe_slots must be >= 2")
        if self.channel_offsets < 1:
            raise MacConfigError("channel_offsets must be >= 1")
        if not self.hopping:
            raise MacConfigError("hopping sequence must be non-empty")
        if self.tx_offset_s <= 0:
            raise MacConfigError("tx_offset_s must be positive")
        in_slot = (self.tx_offset_s + self.shared_jitter_s
                   + self.slot_guard_s)
        if in_slot >= self.slot_duration_s:
            raise MacConfigError(
                "tx_offset_s + shared_jitter_s + slot_guard_s must fit "
                "inside one slot")
        if not self.shared_be_min <= self.shared_be_max:
            raise MacConfigError("shared_be_min must not exceed shared_be_max")
        if self.max_retries < 0:
            raise MacConfigError("max_retries must be >= 0")
        if self.msf_eval_cells < 1:
            raise MacConfigError("msf_eval_cells must be >= 1")
        if not 0.0 <= self.msf_low < self.msf_high <= 1.0:
            raise MacConfigError("need 0 <= msf_low < msf_high <= 1")
        if self.max_cells_per_neighbor < 1:
            raise MacConfigError("max_cells_per_neighbor must be >= 1")
        if self.sixp_candidates < 1:
            raise MacConfigError("sixp_candidates must be >= 1")
        if self.sixp_timeout_s <= 0:
            raise MacConfigError("sixp_timeout_s must be positive")


class TschMac(MacLayer):
    """Slotted, scheduled channel access over a shared slotframe."""

    def __init__(self, sim, radio, config: Optional[TschConfig] = None,
                 **kwargs) -> None:
        super().__init__(sim, radio, **kwargs)
        self.config = config if config is not None else TschConfig()
        self.config.validate()
        self.tsch_stats = TschStats()
        self.schedule = TschSchedule(self.config.slotframe_slots)
        self.schedule.add(Cell(MINIMAL_SLOT, 0, BROADCAST,
                               tx=True, rx=True, shared=True))
        self.sixp = SixpPeer(radio.node_id, self.schedule, self._rng,
                             self.config, stats=self.tsch_stats)
        self._job: Optional[_TxJob] = None
        self._attempts = 0
        self._awaiting: Optional[_TxJob] = None
        self._await_shared = False
        self._be = self.config.shared_be_min
        self._backoff = 0
        self._next_asn = 0
        self._slot_timer = Timer(sim, self._slot_tick)
        self._slot_end_timer = Timer(sim, self._slot_end)
        self._ack_timer = Timer(sim, self._ack_timeout)
        #: Unicast demand seen on the shared cell since the last
        #: slotframe boundary, per neighbor (MSF's trigger signal).
        self._demand: Dict[int, int] = {}
        #: MSF windowed used/elapsed per neighbor.
        self._elapsed: Dict[int, int] = {}
        self._used: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _on_start(self) -> None:
        self._schedule_next_slot()

    def _on_stop(self) -> None:
        self._slot_timer.cancel()
        self._slot_end_timer.cancel()
        self._ack_timer.cancel()
        self._awaiting = None
        job, self._job = self._job, None
        if job is not None:
            self._finish_job(job, False)
        from repro.radio.medium import RadioState

        if self.radio.state is not RadioState.TX:
            self.radio.sleep()

    # ------------------------------------------------------------------
    # slot engine
    # ------------------------------------------------------------------
    def _current_asn(self) -> int:
        # The slack absorbs float error in slot-boundary event times; it
        # is ~1e-8 s against a 10 ms slot, far below any event spacing.
        return int(self.sim.now / self.config.slot_duration_s + 1e-6)

    def _channel_for(self, cell: Cell, asn: int) -> int:
        seq = self.config.hopping
        return seq[(asn + cell.channel_offset) % len(seq)]

    def _cell_actionable(self, cell: Cell) -> bool:
        """Worth waking for?  RX and shared cells always; dedicated TX
        cells only while a matching frame is in flight."""
        if cell.rx or cell.shared:
            return True
        return (self._job is not None and cell.tx
                and cell.neighbor == self._job.dest)

    def _schedule_next_slot(self) -> None:
        if not self._started:
            return
        asn_now = self._current_asn()
        nslots = self.config.slotframe_slots
        for step in range(1, nslots + 1):
            asn = asn_now + step
            cell = self.schedule.get(asn % nslots)
            if cell is not None and self._cell_actionable(cell):
                self._next_asn = asn
                self._slot_timer.start(
                    asn * self.config.slot_duration_s - self.sim.now)
                return
        # Unreachable in practice: the minimal cell is always present.

    def _slot_tick(self) -> None:
        if not self._started:
            return
        asn = self._next_asn
        slot = asn % self.config.slotframe_slots
        if slot == MINIMAL_SLOT:
            self._frame_boundary()
        cell = self.schedule.get(slot)
        if cell is not None:
            self._serve_cell(cell, asn)
        self._schedule_next_slot()

    def _serve_cell(self, cell: Cell, asn: int) -> None:
        self.radio.channel = self._channel_for(cell, asn)
        job = self._job
        if job is not None:
            if cell.shared:
                if self._backoff > 0:
                    self._backoff -= 1
                    self.tsch_stats.shared_deferrals += 1
                    job = None
                elif not self._job_matches_shared(job):
                    job = None
            elif not (cell.tx and cell.neighbor == job.dest):
                job = None
        if cell.rx or cell.shared:
            self.radio.set_listening()
        if job is not None and cell.tx:
            self._arm_tx(job, cell)
        self._slot_end_timer.start(
            self.config.slot_duration_s - self.config.slot_guard_s)

    def _job_matches_shared(self, job: _TxJob) -> bool:
        """The shared cell carries broadcasts and any unicast that has
        no dedicated cell toward its destination yet."""
        if job.dest == BROADCAST:
            return True
        return not self.schedule.tx_cells_to(job.dest)

    def _arm_tx(self, job: _TxJob, cell: Cell) -> None:
        if cell.shared:
            delay = (self.config.tx_offset_s
                     + self._rng.uniform(0.0, self.config.shared_jitter_s))
        else:
            delay = self.config.tx_offset_s
            self._used[cell.neighbor] = self._used.get(cell.neighbor, 0) + 1
            self.tsch_stats.cells_used += 1

        def fire() -> None:
            if not self._started or self._job is not job:
                return
            if cell.shared and self.radio.carrier_busy():
                # Lost the CCA race; stay in RX for the winner's frame.
                self.tsch_stats.shared_deferrals += 1
                return
            self._transmit_data(job, cell)

        self.sim.schedule(delay, fire)

    def _slot_end(self) -> None:
        if not self._started:
            return
        from repro.radio.medium import RadioState

        if (self.radio.state is RadioState.TX or self._awaiting is not None
                or self.radio.carrier_busy()):
            # Mid-exchange (long frame, pending ACK, or an incoming
            # frame still in the air): hold the radio and re-check.
            self._slot_end_timer.start(self.config.ack_wait_s)
            return
        self.radio.sleep()

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _start_job(self, job: _TxJob) -> None:
        self._job = job
        self._attempts = 0
        # A new head-of-line frame can make an earlier (dedicated TX)
        # slot actionable; recompute the wake plan.
        self._schedule_next_slot()

    def _transmit_data(self, job: _TxJob, cell: Cell) -> None:
        frame = self.data_frame(job)
        if cell.shared:
            self.tsch_stats.shared_tx += 1
            if job.dest != BROADCAST:
                self._demand[job.dest] = self._demand.get(job.dest, 0) + 1
        else:
            self.tsch_stats.dedicated_tx += 1
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("mac.tsch.tx", node=self.radio.node_id,
                             cell="shared" if cell.shared else "dedicated")

        def tx_done() -> None:
            if job.dest == BROADCAST:
                self._complete(job, True)
                return
            self._awaiting = job
            self._await_shared = cell.shared
            self._ack_timer.start(self.config.ack_wait_s)

        self._transmit_frame(frame, tx_done)

    def _ack_timeout(self) -> None:
        job = self._awaiting
        self._awaiting = None
        if job is None:
            return
        self._attempts += 1
        if self._await_shared:
            self.tsch_stats.shared_failures += 1
            self._be = min(self._be + 1, self.config.shared_be_max)
            self._backoff = self._rng.randrange(2 ** self._be)
        if self._attempts > self.config.max_retries:
            self._complete(job, False)
        # Otherwise the job stays in flight; the next matching cell
        # retries it (TSCH retransmits across cells, not within one).

    def _handle_ack(self, frame: MacFrame) -> None:
        job = self._awaiting
        if job is None or frame.src != job.dest or frame.seq != job.seq:
            return
        self._ack_timer.cancel()
        self._awaiting = None
        if self._await_shared:
            self._be = self.config.shared_be_min
            self._backoff = 0
        self._complete(job, True)

    def _complete(self, job: _TxJob, ok: bool) -> None:
        self._job = None
        self._attempts = 0
        self._finish_job(job, ok)

    def _handle_data(self, frame: MacFrame) -> None:
        if frame.dst == self.radio.node_id:
            self._send_ack(frame.src, frame.seq)
        if isinstance(frame.payload, SixpMessage):
            # 6P terminates at the MAC; mirror the base dedup/filter
            # order so secured networks authenticate 6P frames too.
            if self._dedup.get(frame.src) == frame.seq:
                self.stats.rx_duplicates += 1
                return
            if self.frame_filter is not None:
                filtered = self.frame_filter(frame)
                if filtered is None:
                    return
                frame = filtered
            self._dedup[frame.src] = frame.seq
            self._on_sixp(frame.src, frame.payload)
            return
        super()._handle_data(frame)

    # ------------------------------------------------------------------
    # scheduling function (minimal MSF) + 6P transport
    # ------------------------------------------------------------------
    def _frame_boundary(self) -> None:
        """Once per slotframe (at the minimal cell): expire stale 6P
        transactions and run the MSF add/delete evaluation."""
        self.sixp.expire(self.sim.now)
        # Demand-triggered bootstrap: unicast that had to ride the
        # shared cell asks for a first dedicated cell to its next hop.
        for peer in sorted(self._demand):
            if self._demand.pop(peer) <= 0:
                continue
            if (not self.schedule.tx_cells_to(peer)
                    and not self.sixp.busy(peer)):
                self._initiate_add(peer)
        # Utilization pass over established dedicated TX cells.
        for peer in self.schedule.neighbors():
            cells = self.schedule.tx_cells_to(peer)
            if not cells:
                continue
            self._elapsed[peer] = self._elapsed.get(peer, 0) + len(cells)
            self.tsch_stats.cells_elapsed += len(cells)
            if self._elapsed[peer] < self.config.msf_eval_cells:
                continue
            used = self._used.get(peer, 0)
            utilization = used / self._elapsed[peer]
            self._elapsed[peer] = 0
            self._used[peer] = 0
            if self.sixp.busy(peer):
                continue
            if (utilization > self.config.msf_high
                    and len(cells) < self.config.max_cells_per_neighbor):
                self._initiate_add(peer)
            elif utilization < self.config.msf_low and len(cells) > 1:
                self._initiate_delete(peer, cells[-1:])
        self._update_cell_gauge()

    def _initiate_add(self, peer: int) -> None:
        msg = self.sixp.initiate_add(peer, self.sim.now)
        self._send_sixp(peer, msg)

    def _initiate_delete(self, peer: int, victims: List[Cell]) -> None:
        msg = self.sixp.initiate_delete(peer, victims, self.sim.now)
        self._send_sixp(peer, msg)

    def _send_sixp(self, peer: int, msg: Optional[SixpMessage]) -> None:
        if msg is None:
            return
        self.tsch_stats.sixp_sent += 1
        obs = self.trace.obs
        if obs is not None:
            obs.registry.inc("mac.tsch.sixp", node=self.radio.node_id,
                             op=msg.op, step=msg.step)
        # 6P rides the normal transmit queue: it pays queue capacity,
        # airtime, and loss like any other frame, and a drop simply
        # times the transaction out.
        self.send(peer, msg, SIXP_MESSAGE_BYTES)

    def _on_sixp(self, src: int, msg: SixpMessage) -> None:
        self.tsch_stats.sixp_received += 1
        reply = self.sixp.handle(src, msg, self.sim.now)
        if reply is not None:
            self._send_sixp(src, reply)
        self._update_cell_gauge()
        # New cells change the wake plan immediately.
        self._schedule_next_slot()

    def _update_cell_gauge(self) -> None:
        obs = self.trace.obs
        if obs is not None:
            obs.registry.set("mac.tsch.cells",
                             float(len(self.schedule.dedicated_cells())),
                             node=self.radio.node_id)

    # ------------------------------------------------------------------
    # introspection (analysis + report dashboard)
    # ------------------------------------------------------------------
    def cell_utilization(self) -> float:
        """Lifetime used/elapsed over dedicated TX cells (MSF signal)."""
        if self.tsch_stats.cells_elapsed == 0:
            return 0.0
        return self.tsch_stats.cells_used / self.tsch_stats.cells_elapsed

    def shared_contention(self) -> float:
        """Fraction of shared-cell opportunities lost to contention
        (CCA/backoff deferrals and unacknowledged unicasts)."""
        lost = (self.tsch_stats.shared_deferrals
                + self.tsch_stats.shared_failures)
        total = self.tsch_stats.shared_tx + self.tsch_stats.shared_deferrals
        if total == 0:
            return 0.0
        return lost / total
