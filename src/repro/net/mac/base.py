"""Common MAC-layer machinery: transmit queue, dedup, statistics.

Concrete MACs implement :meth:`MacLayer._start_job`; the base class owns
the FIFO transmit queue (one in-flight job at a time, as on real
single-radio devices), duplicate suppression, and delivery upcalls, so
protocol differences stay confined to the channel-access logic.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.net.packet import BROADCAST, FrameKind, MacFrame, next_seq
from repro.radio.medium import Frame, Radio
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


class MacConfigError(ValueError):
    """Raised for invalid MAC configuration values."""


@dataclass
class MacStats:
    """Counters every MAC maintains; experiments read these."""

    enqueued: int = 0
    queue_drops: int = 0
    tx_success: int = 0
    tx_failed: int = 0
    tx_attempts: int = 0
    rx_delivered: int = 0
    rx_duplicates: int = 0
    acks_sent: int = 0


@dataclass
class _TxJob:
    dest: int
    payload: Any
    payload_bytes: int
    done: Optional[Callable[[bool], None]]
    seq: int
    auth_bytes: int = 0
    #: ``mac.job`` span context (repro.obs); None when untraced.
    ctx: Any = None


class MacLayer(abc.ABC):
    """Abstract single-radio MAC with a bounded FIFO transmit queue.

    Subclasses implement channel access in :meth:`_start_job` and call
    :meth:`_finish_job` exactly once per job.  Frames received from the
    radio flow through :meth:`_on_phy_receive`, which dispatches ACKs to
    :meth:`_handle_ack` and hands deduplicated DATA frames to the
    ``on_receive`` upcall.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        trace: Optional[TraceLog] = None,
        max_queue: int = 16,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.max_queue = max_queue
        self.stats = MacStats()
        self.on_receive: Optional[Callable[[MacFrame], None]] = None
        #: Optional verifier installed by the security layer: returns the
        #: (possibly rewritten) frame to deliver, or None to drop it.
        self.frame_filter: Optional[Callable[[MacFrame], Optional[MacFrame]]] = None
        #: Authentication tag bytes appended to outgoing DATA frames.
        self.auth_overhead_bytes = 0
        self._queue: Deque[_TxJob] = deque()
        self._busy = False
        self._started = False
        self._dedup: Dict[int, int] = {}
        radio.on_receive = self._on_phy_receive
        self._rng = sim.substream(f"mac.{radio.node_id}")
        #: Cached ``mac.tx`` instruments ``[registry, ok_counter,
        #: failed_counter]`` — _finish_job runs once per frame, making
        #: it the single hottest registry callsite of an instrumented
        #: run; holding the instruments skips the per-call label
        #: packing.  Keyed on the registry so a re-attached
        #: observability bundle refreshes the cache; each counter is
        #: created lazily on its outcome's first occurrence.
        self._tx_counters: Optional[list] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring the MAC up (radio duty cycle begins)."""
        if self._started:
            return
        self._started = True
        self._on_start()

    def stop(self) -> None:
        """Shut the MAC down; queued jobs fail."""
        if not self._started:
            return
        self._started = False
        self._on_stop()
        while self._queue:
            job = self._queue.popleft()
            if job.done is not None:
                job.done(False)

    @property
    def running(self) -> bool:
        return self._started

    @abc.abstractmethod
    def _on_start(self) -> None:
        """Subclass hook: begin the duty cycle."""

    @abc.abstractmethod
    def _on_stop(self) -> None:
        """Subclass hook: cancel timers, idle the radio."""

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        dest: int,
        payload: Any,
        payload_bytes: int,
        done: Optional[Callable[[bool], None]] = None,
        trace_ctx: Any = None,
    ) -> bool:
        """Enqueue a frame for ``dest`` (or :data:`BROADCAST`).

        Returns False (and calls ``done(False)``) when the queue is full
        or the MAC is stopped — queue overflow is a first-class failure
        mode on constrained devices, not an exception.  ``trace_ctx``
        parents a ``mac.job`` span covering queueing and channel access.
        """
        obs = self.trace.obs
        node = self.radio.node_id
        if not self._started or len(self._queue) >= self.max_queue:
            self.stats.queue_drops += 1
            if obs is not None:
                obs.registry.inc("mac.queue_drop", node=node)
                if obs.spans is not None and trace_ctx is not None:
                    obs.spans.event(trace_ctx, "mac.queue_drop", node=node,
                                    t=self.sim.now, dest=dest)
            if done is not None:
                done(False)
            return False
        ctx = None
        if obs is not None and obs.spans is not None and trace_ctx is not None:
            ctx = obs.spans.start(trace_ctx, "mac.job", node=node,
                                  t=self.sim.now, dest=dest)
        job = _TxJob(
            dest=dest,
            payload=payload,
            payload_bytes=payload_bytes,
            done=done,
            seq=next_seq(),
            auth_bytes=self.auth_overhead_bytes,
            ctx=ctx,
        )
        self._queue.append(job)
        self.stats.enqueued += 1
        self._kick()
        return True

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _kick(self) -> None:
        if self._busy or not self._queue or not self._started:
            return
        self._busy = True
        job = self._queue.popleft()
        if job.ctx is not None:
            obs = self.trace.obs
            if obs is not None and obs.spans is not None:
                # Waypoint for latency attribution: time before this is
                # queue wait, after it channel access (backoff/CCA).
                obs.spans.annotate(job.ctx, service_start=self.sim.now)
        self._start_job(job)

    @abc.abstractmethod
    def _start_job(self, job: _TxJob) -> None:
        """Run channel access for one job; must end in :meth:`_finish_job`."""

    def _finish_job(self, job: _TxJob, success: bool) -> None:
        if success:
            self.stats.tx_success += 1
        else:
            self.stats.tx_failed += 1
        obs = self.trace.obs
        if obs is not None:
            counters = self._tx_counters
            if counters is None or counters[0] is not obs.registry:
                counters = self._tx_counters = [obs.registry, None, None]
            index = 1 if success else 2
            instrument = counters[index]
            if instrument is None:
                # Each outcome's series registers on first occurrence
                # only — eagerly creating both would add zero-valued
                # ok=False series to nodes that never fail, shifting
                # every exported snapshot against its baseline.
                instrument = counters[index] = obs.registry.counter(
                    "mac.tx", node=self.radio.node_id, ok=success)
            instrument.value += 1.0
            if obs.spans is not None and job.ctx is not None:
                obs.spans.finish(job.ctx, self.sim.now, ok=success)
        self._busy = False
        if job.done is not None:
            job.done(success)
        self.sim.call_soon(self._kick)

    def _transmit_frame(
        self, frame: MacFrame, done: Optional[Callable[[], None]] = None
    ) -> float:
        if not self.radio.enabled:
            # Node crashed mid-exchange; swallow the frame, let the
            # caller's completion logic run so jobs still terminate.
            if done is not None:
                self.sim.call_soon(done)
            return 0.0
        self.stats.tx_attempts += 1
        phy = Frame(
            payload=frame,
            size_bytes=frame.size_bytes,
            channel=self.radio.channel,
            sender=self.radio.node_id,
        )
        return self.radio.medium.transmit(self.radio, phy, done)

    def data_frame(self, job: _TxJob) -> MacFrame:
        """Build the DATA frame for a job (one seq for all its copies)."""
        return MacFrame(
            kind=FrameKind.DATA,
            src=self.radio.node_id,
            dst=job.dest,
            seq=job.seq,
            payload=job.payload,
            payload_bytes=job.payload_bytes,
            auth_bytes=job.auth_bytes,
            trace_ctx=job.ctx,
        )

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_phy_receive(self, phy: Frame, rssi_dbm: float) -> None:
        if not self._started:
            return
        frame = phy.payload
        if not isinstance(frame, MacFrame):
            return
        if frame.kind is FrameKind.ACK:
            if frame.dst == self.radio.node_id:
                self._handle_ack(frame)
            return
        if frame.kind is FrameKind.BEACON:
            self._handle_beacon(frame)
            return
        if frame.dst not in (self.radio.node_id, BROADCAST):
            self._overheard(frame)
            return
        self._handle_data(frame)

    def _handle_data(self, frame: MacFrame) -> None:
        """Default DATA handling: dedup then deliver.  Subclasses that
        acknowledge call this after sending their ACK."""
        if self._dedup.get(frame.src) == frame.seq:
            self.stats.rx_duplicates += 1
            return
        if self.frame_filter is not None:
            filtered = self.frame_filter(frame)
            if filtered is None:
                return
            frame = filtered
        self._dedup[frame.src] = frame.seq
        self.stats.rx_delivered += 1
        if self.on_receive is not None:
            self.on_receive(frame)

    def _handle_ack(self, frame: MacFrame) -> None:
        """Subclasses awaiting ACKs override this."""

    def _handle_beacon(self, frame: MacFrame) -> None:
        """Receiver-initiated MACs override this."""

    def _overheard(self, frame: MacFrame) -> None:
        """Frame addressed elsewhere; hooks for snooping MACs."""

    def _send_ack(self, to: int, seq: int, turnaround: float = 0.000192) -> None:
        """Transmit a link-layer ACK after the radio turnaround time."""

        def fire() -> None:
            from repro.radio.medium import RadioState

            if not self._started or self.radio.state is RadioState.TX:
                return
            ack = MacFrame(
                kind=FrameKind.ACK,
                src=self.radio.node_id,
                dst=to,
                seq=seq,
            )
            self.stats.acks_sent += 1
            self._transmit_frame(ack)

        self.sim.schedule(turnaround, fire)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def duty_cycle(self) -> float:
        """Fraction of time the radio has been awake (LISTEN or TX)."""
        from repro.radio.medium import RadioState

        times = self.radio.flush_state_time()
        total = sum(times.values())
        if total == 0:
            return 0.0
        awake = times[RadioState.LISTEN] + times[RadioState.TX]
        return awake / total
