"""Low-power listening (BoX-MAC-2 style sender strobe).

Receivers sleep almost always, briefly probing the channel every
``wake_interval``.  A sender retransmits the data frame back to back for
up to a full wake interval, so every neighbour's probe falls inside the
strobe.  Unicast strobes stop early on the receiver's ACK.

This is the canonical duty-cycled MAC of the paper's §IV-B (refs [26],
[27]): per-hop latency averages ``wake_interval / 2``, which is why "a
packet may take seconds to be transmitted over few wireless hops".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.mac.base import MacConfigError, MacLayer, _TxJob
from repro.net.packet import BROADCAST, MacFrame
from repro.sim.timers import Timer


@dataclass(frozen=True)
class LplConfig:
    """Low-power-listening parameters."""

    #: Receiver probe period — the latency/energy knob (E3 sweeps it).
    wake_interval_s: float = 0.5
    #: How long a probe listens before declaring the channel idle.
    probe_duration_s: float = 0.006
    #: Idle gap between strobe copies, during which the sender listens
    #: for an ACK.
    copy_gap_s: float = 0.0025
    #: Extra strobe time beyond one wake interval (clock tolerance).
    strobe_margin_s: float = 0.02
    #: Whole-strobe retries for unacknowledged unicast.
    max_retries: int = 1
    #: How long a receiver holds the radio on after hearing activity.
    hold_duration_s: float = 0.03
    #: ContikiMAC-style phase lock: once a neighbor's wake phase is
    #: learned (from its ACK timing), unicast strobes start just before
    #: the predicted wakeup instead of spanning a full wake interval.
    phase_lock: bool = False
    #: How early before the predicted wakeup the short strobe starts,
    #: and how far past it the strobe persists before falling back.
    phase_guard_s: float = 0.025

    def validate(self) -> None:
        if self.wake_interval_s <= 0:
            raise MacConfigError("wake_interval_s must be positive")
        if self.probe_duration_s >= self.wake_interval_s:
            raise MacConfigError("probe must be shorter than wake interval")


class LplMac(MacLayer):
    """BoX-MAC-2 style low-power listening MAC."""

    def __init__(self, sim, radio, config: Optional[LplConfig] = None, **kwargs) -> None:
        super().__init__(sim, radio, **kwargs)
        self.config = config if config is not None else LplConfig()
        self.config.validate()
        self._probe_timer = Timer(sim, self._probe)
        self._hold_timer = Timer(sim, self._hold_expired)
        self._ack_timer = Timer(sim, self._copy_gap_elapsed)
        self._job: Optional[_TxJob] = None
        self._strobe_deadline = 0.0
        self._retries = 0
        self._awake_hold = False
        self._got_ack = False
        self._copies_sent = 0
        #: Learned neighbor wake phases (node -> an instant it was awake).
        self._neighbor_phase: Dict[int, float] = {}
        self.phase_lock_hits = 0
        self.phase_lock_misses = 0

    # ------------------------------------------------------------------
    # duty cycle (receiver side)
    # ------------------------------------------------------------------
    def _on_start(self) -> None:
        # Random phase avoids network-wide synchronized probes.
        self._probe_timer.start(self._rng.uniform(0, self.config.wake_interval_s))

    def _on_stop(self) -> None:
        for timer in (self._probe_timer, self._hold_timer, self._ack_timer):
            timer.cancel()
        from repro.radio.medium import RadioState

        if self.radio.state is not RadioState.TX:
            self.radio.sleep()

    def _probe(self) -> None:
        self._probe_timer.start(self.config.wake_interval_s)
        if self._job is not None:
            return  # already awake, strobing
        from repro.radio.medium import RadioState

        if self.radio.state is RadioState.TX:
            return
        self.radio.set_listening()
        self._awake_hold = False
        self._hold_timer.start(self.config.probe_duration_s)

    def _hold_expired(self) -> None:
        if self._job is not None:
            return
        from repro.radio.medium import RadioState

        if self.radio.state is RadioState.TX:
            self._hold_timer.start(self.config.hold_duration_s)
            return
        if self.radio.carrier_busy():
            # Someone is strobing: hold until we catch a full copy.
            self._awake_hold = True
            self._hold_timer.start(self.config.hold_duration_s)
            return
        self.radio.sleep()

    def _handle_data(self, frame: MacFrame) -> None:
        if frame.dst == self.radio.node_id:
            self._send_ack(frame.src, frame.seq)
        super()._handle_data(frame)
        # Done with this wakeup unless we are mid-strobe ourselves.
        if self._job is None and frame.dst == self.radio.node_id:
            self._hold_timer.start(self.config.hold_duration_s)

    # ------------------------------------------------------------------
    # strobe (sender side)
    # ------------------------------------------------------------------
    def _start_job(self, job: _TxJob) -> None:
        self._retries = 0
        if (
            self.config.phase_lock
            and job.dest != BROADCAST
            and job.dest in self._neighbor_phase
        ):
            self._begin_phase_locked_strobe(job)
        else:
            self._begin_strobe(job)

    def _begin_phase_locked_strobe(self, job: _TxJob) -> None:
        """Short strobe aimed at the neighbor's predicted wakeup.

        If the prediction misses (the phase table was stale), the retry
        path falls back to a full-interval strobe, which also refreshes
        the learned phase.
        """
        interval = self.config.wake_interval_s
        guard = self.config.phase_guard_s
        anchor = self._neighbor_phase[job.dest]
        now = self.sim.now
        periods = max(0, int((now + guard - anchor) / interval)) + 1
        predicted = anchor + periods * interval
        start_delay = max(0.0, predicted - guard - now)
        self._job = job
        self._got_ack = False
        self._copies_sent = 0
        # Strobe only around the predicted wakeup (plus the receiver's
        # probe length), not a full interval.
        self._strobe_deadline = (
            predicted + guard + self.config.probe_duration_s
            + self.config.hold_duration_s
        )
        self.sim.schedule(start_delay, self._phase_strobe_start)

    def _phase_strobe_start(self) -> None:
        if self._job is None or not self._started:
            return
        self.radio.set_listening()
        self._send_copy()

    def _begin_strobe(self, job: _TxJob) -> None:
        self._job = job
        self._got_ack = False
        self._copies_sent = 0
        self._strobe_deadline = (
            self.sim.now + self.config.wake_interval_s + self.config.strobe_margin_s
        )
        self.radio.set_listening()
        # Dither strobe starts so two nodes triggered by the same event
        # (e.g. a Trickle reset) do not collide for a full wake interval.
        self.sim.schedule(self._rng.uniform(0, 0.008), self._send_copy)

    def _send_copy(self) -> None:
        job = self._job
        if job is None or not self._started:
            return
        if self._got_ack:
            self._strobe_done(True)
            return
        if self.sim.now >= self._strobe_deadline:
            self._strobe_done(job.dest == BROADCAST and self._copies_sent > 0)
            return
        from repro.radio.medium import RadioState

        if self.radio.state is RadioState.TX or self.radio.carrier_busy():
            # Channel occupied (often a neighbour's strobe): defer the
            # copy rather than collide with it for its whole length.
            self._ack_timer.start(self.config.copy_gap_s)
            return
        frame = self.data_frame(job)
        self._copies_sent += 1
        self._transmit_frame(
            frame, lambda: self._ack_timer.start(self.config.copy_gap_s)
        )

    def _copy_gap_elapsed(self) -> None:
        # The gap doubles as the ACK listen window.
        self._send_copy()

    def _handle_ack(self, frame: MacFrame) -> None:
        job = self._job
        if job is None or frame.src != job.dest or frame.seq != job.seq:
            return
        self._got_ack = True
        # The ACK instant is (approximately) a moment the neighbor was
        # awake: the phase anchor ContikiMAC-style senders lock onto.
        self._neighbor_phase[frame.src] = self.sim.now

    def _strobe_done(self, success: bool) -> None:
        job = self._job
        self._job = None
        self._ack_timer.cancel()
        assert job is not None
        if self.config.phase_lock and job.dest != BROADCAST:
            if success:
                self.phase_lock_hits += 1
            else:
                # Stale phase: drop it so the retry relearns honestly.
                self.phase_lock_misses += 1
                self._neighbor_phase.pop(job.dest, None)
        if not success and self._retries < self.config.max_retries:
            self._retries += 1
            self._begin_strobe(job)
            return
        from repro.radio.medium import RadioState

        if self.radio.state is not RadioState.TX and not self._awake_hold:
            self.radio.sleep()
        self._finish_job(job, success)
