"""Synchronous-flooding primitive (Glossy/Dozer family).

The paper (§IV-B, refs [28]–[30]) observes that *highly synchronous
end-to-end communication involving tight coordination of multiple
devices* minimizes latency: instead of per-hop rendezvous costing
~``wake_interval/2`` each, every node relays in lockstep slots, so a
network-wide flood completes in ``depth × slot`` — milliseconds, not
seconds.

Real implementations rely on constructive interference and sub-µs time
sync, which a packet-collision simulator cannot (and need not)
reproduce; we model the primitive at slot granularity on the
connectivity graph, with a per-hop reliability matching published Glossy
figures (>99.9%).  Energy is accounted as radio-on time per flood.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.radio.medium import Medium
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class SyncFloodConfig:
    """Slot-level parameters of the flooding primitive."""

    #: One relay slot: frame airtime + processing (Glossy: ~a few ms).
    slot_s: float = 0.004
    #: Probability a node at hop ring h hears the flood from ring h-1.
    per_hop_reliability: float = 0.999
    #: Links with PRR below this do not count as flooding edges.
    prr_threshold: float = 0.7
    #: Number of retransmissions per node within the flood (Glossy N).
    retransmissions: int = 2


@dataclass
class FloodResult:
    """Outcome of one flood."""

    initiator: int
    reached: Dict[int, float] = field(default_factory=dict)  # node -> latency
    missed: Set[int] = field(default_factory=set)
    radio_on_s_per_node: float = 0.0

    @property
    def reliability(self) -> float:
        total = len(self.reached) + len(self.missed)
        return len(self.reached) / total if total else 1.0

    def latency_to(self, node_id: int) -> Optional[float]:
        return self.reached.get(node_id)


class SyncFloodService:
    """Slot-synchronized network flooding over a shared medium.

    The service derives the flooding graph from the medium's link PRRs
    and schedules per-ring deliveries on the simulation kernel, so
    floods interleave correctly with other simulated activity.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        config: Optional[SyncFloodConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.config = config if config is not None else SyncFloodConfig()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._rng = sim.substream("syncflood")
        self._graph: Optional[Dict[int, List[int]]] = None
        self.floods_run = 0
        self.total_radio_on_s = 0.0

    # ------------------------------------------------------------------
    def connectivity(self) -> Dict[int, List[int]]:
        """Adjacency over usable links (PRR above the threshold)."""
        if self._graph is None:
            graph: Dict[int, List[int]] = {}
            radios = [r for r in self.medium.radios.values() if r.channel != 0]
            for a in radios:
                graph.setdefault(a.node_id, [])
                for b, _rssi in self.medium.audible_from(a):
                    if b.channel == 0:
                        continue
                    if self.medium.link_prr(a.node_id, b.node_id) >= self.config.prr_threshold:
                        graph[a.node_id].append(b.node_id)
            self._graph = graph
        return self._graph

    def invalidate(self) -> None:
        """Recompute connectivity on next use (after topology changes)."""
        self._graph = None

    def hop_distances(self, initiator: int) -> Dict[int, int]:
        """BFS hop count from ``initiator`` over the flooding graph."""
        graph = self.connectivity()
        if initiator not in graph:
            raise KeyError(f"unknown initiator {initiator}")
        dist = {initiator: 0}
        queue = deque([initiator])
        while queue:
            node = queue.popleft()
            for neighbor in graph[node]:
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        return dist

    # ------------------------------------------------------------------
    def flood(
        self,
        initiator: int,
        payload: Any = None,
        deliver: Optional[Callable[[int, float, Any], None]] = None,
        on_complete: Optional[Callable[[FloodResult], None]] = None,
    ) -> FloodResult:
        """Run one flood; deliveries are scheduled on the kernel.

        Returns the :class:`FloodResult`, which is fully populated only
        once simulated time passes the flood's last slot.
        """
        distances = self.hop_distances(initiator)
        live_nodes = {
            node_id for node_id, radio in self.medium.radios.items()
            if radio.channel != 0 and radio.enabled
        }
        result = FloodResult(initiator=initiator)
        max_hop = max(distances.values()) if distances else 0
        # Per-node on-time: every participant keeps its radio on for the
        # whole flood window (slot per ring + retransmissions).
        flood_window = (max_hop + self.config.retransmissions) * self.config.slot_s
        result.radio_on_s_per_node = flood_window
        self.total_radio_on_s += flood_window * len(live_nodes)
        self.floods_run += 1

        # A node is reached if every ring transition up to it succeeded
        # for at least one of its predecessors; with Glossy-grade per-hop
        # reliability we approximate per-node success independently.
        reached_rings: Dict[int, bool] = {0: True}
        for node_id, hop in sorted(distances.items(), key=lambda kv: kv[1]):
            if node_id == initiator:
                result.reached[initiator] = 0.0
                continue
            if node_id not in live_nodes:
                result.missed.add(node_id)
                continue
            success = all(
                self._rng.random() < self.config.per_hop_reliability
                for _ in range(hop)
            ) or self._rng.random() < self.config.per_hop_reliability  # retransmission rescue
            if not success:
                result.missed.add(node_id)
                self.trace.emit(self.sim.now, "syncflood.miss", node=node_id)
                continue
            latency = hop * self.config.slot_s
            result.reached[node_id] = latency
            if deliver is not None:
                self.sim.schedule(
                    latency,
                    (lambda n, lat: lambda: deliver(n, lat, payload))(node_id, latency),
                )
        for node_id in live_nodes - set(distances):
            result.missed.add(node_id)
        if on_complete is not None:
            self.sim.schedule(flood_window, lambda: on_complete(result))
        self.trace.emit(
            self.sim.now, "syncflood.flood", node=initiator,
            reached=len(result.reached), missed=len(result.missed),
        )
        return result

    # ------------------------------------------------------------------
    def collect(
        self,
        sink: int,
        values: Dict[int, Any],
        on_complete: Optional[Callable[[Dict[int, Any], float], None]] = None,
    ) -> float:
        """Dozer-style convergecast: pull one value per node to ``sink``.

        Modelled as a reverse flood: the schedule length is
        ``depth × slot × retransmissions`` plus one slot per node for its
        data frame.  Returns the completion latency.
        """
        distances = self.hop_distances(sink)
        max_hop = max(distances.values()) if distances else 0
        latency = (
            max_hop * self.config.slot_s * self.config.retransmissions
            + len(values) * self.config.slot_s
        )
        collected = {
            node: value for node, value in values.items() if node in distances
        }
        if on_complete is not None:
            self.sim.schedule(latency, lambda: on_complete(collected, latency))
        self.trace.emit(self.sim.now, "syncflood.collect", node=sink,
                        count=len(collected))
        return latency
