"""Medium-access protocols for duty-cycled low-power radios.

The paper's geographic-scalability argument (§IV-B) hinges on MAC-layer
behaviour: duty-cycled MACs trade idle-listening energy for per-hop
latency (refs [26], [27]), while tightly synchronized schemes recover
the latency at a coordination cost (refs [28]–[30]).  This package
implements one representative of each family:

- :class:`CsmaMac` — always-on CSMA/CA: minimal latency, maximal idle
  listening (the energy-unconstrained baseline);
- :class:`LplMac` — low-power listening (BoX-MAC-2 style sender strobe);
- :class:`RiMac` — receiver-initiated beacons (RI-MAC style);
- :class:`SyncFloodService` — Glossy/Dozer-style synchronous flooding,
  modelled at slot granularity.
"""

from repro.net.mac.analysis import LplExpectations, frame_airtime_s
from repro.net.mac.base import MacConfigError, MacLayer, MacStats
from repro.net.mac.csma import CsmaConfig, CsmaMac
from repro.net.mac.lpl import LplConfig, LplMac
from repro.net.mac.rimac import RiMacConfig, RiMac
from repro.net.mac.syncflood import SyncFloodConfig, SyncFloodService

__all__ = [
    "CsmaConfig",
    "CsmaMac",
    "LplConfig",
    "LplExpectations",
    "LplMac",
    "frame_airtime_s",
    "MacConfigError",
    "MacLayer",
    "MacStats",
    "RiMac",
    "RiMacConfig",
    "SyncFloodConfig",
    "SyncFloodService",
]
