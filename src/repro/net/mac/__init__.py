"""Medium-access protocols for duty-cycled low-power radios.

The paper's geographic-scalability argument (§IV-B) hinges on MAC-layer
behaviour: duty-cycled MACs trade idle-listening energy for per-hop
latency (refs [26], [27]), while tightly synchronized schemes recover
the latency at a coordination cost (refs [28]–[30]).  This package
implements one representative of each family:

- :class:`CsmaMac` — always-on CSMA/CA: minimal latency, maximal idle
  listening (the energy-unconstrained baseline);
- :class:`LplMac` — low-power listening (BoX-MAC-2 style sender strobe);
- :class:`RiMac` — receiver-initiated beacons (RI-MAC style);
- :class:`TschMac` — TSCH-style scheduled slotframe with 6P-negotiated
  cells (the 6TiSCH industrial baseline);
- :class:`SyncFloodService` — Glossy/Dozer-style synchronous flooding,
  modelled at slot granularity.
"""

from repro.net.mac.analysis import (
    LplExpectations,
    TschExpectations,
    frame_airtime_s,
    mac_summary_lines,
)
from repro.net.mac.base import MacConfigError, MacLayer, MacStats
from repro.net.mac.csma import CsmaConfig, CsmaMac
from repro.net.mac.lpl import LplConfig, LplMac
from repro.net.mac.rimac import RiMacConfig, RiMac
from repro.net.mac.syncflood import SyncFloodConfig, SyncFloodService
from repro.net.mac.tsch import (
    Cell,
    SixpMessage,
    SixpPeer,
    SlotConflictError,
    TschConfig,
    TschMac,
    TschSchedule,
    TschStats,
)

__all__ = [
    "Cell",
    "CsmaConfig",
    "CsmaMac",
    "LplConfig",
    "LplExpectations",
    "LplMac",
    "frame_airtime_s",
    "mac_summary_lines",
    "MacConfigError",
    "MacLayer",
    "MacStats",
    "RiMac",
    "RiMacConfig",
    "SixpMessage",
    "SixpPeer",
    "SlotConflictError",
    "SyncFloodConfig",
    "SyncFloodService",
    "TschConfig",
    "TschExpectations",
    "TschMac",
    "TschSchedule",
    "TschStats",
]
