"""Closed-form expectations for duty-cycled MAC behaviour.

Analytic counterparts to the simulated MACs, used two ways:

- **validation** — the test suite checks the simulator against these
  formulas (a simulator that disagrees with its own arithmetic is
  broken);
- **design** — deployments can size wake intervals from the formulas
  before simulating (the paper's §V-D "configuration requires
  expertise" problem, made a little smaller).

Model (BoX-MAC/LPL, unicast, clean channel):

- per-hop rendezvous waits for the receiver's next probe: U(0, W), so
  the expected per-hop latency is ``W/2`` plus transmission serialization;
- an idle node's duty cycle is ``probe/W`` plus the occasional hold;
- a phase-locked sender transmits for ~a guard window instead of the
  rendezvous wait.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.mac.lpl import LplConfig
from repro.net.packet import MAC_HEADER_BYTES
from repro.radio.medium import BITRATE_BPS, PHY_OVERHEAD_BYTES


def frame_airtime_s(payload_bytes: int) -> float:
    """Airtime of one data frame at the 802.15.4 PHY rate."""
    return (PHY_OVERHEAD_BYTES + MAC_HEADER_BYTES + payload_bytes) * 8 / BITRATE_BPS


@dataclass(frozen=True)
class LplExpectations:
    """Analytic predictions for one LPL configuration."""

    config: LplConfig

    def expected_hop_latency_s(self, payload_bytes: int = 20) -> float:
        """Mean unicast one-hop delay: rendezvous + one frame."""
        return (self.config.wake_interval_s / 2.0
                + frame_airtime_s(payload_bytes))

    def expected_path_latency_s(self, hops: int,
                                payload_bytes: int = 20) -> float:
        """Mean end-to-end delay over ``hops`` independent rendezvous."""
        if hops < 0:
            raise ValueError("hops must be >= 0")
        return hops * self.expected_hop_latency_s(payload_bytes)

    def idle_duty_cycle(self) -> float:
        """Radio-on fraction of a node with no traffic at all."""
        return min(1.0, self.config.probe_duration_s
                   / self.config.wake_interval_s)

    def sender_strobe_airtime_s(self, payload_bytes: int = 20) -> float:
        """Mean radio-on time a sender pays for one unicast."""
        if self.config.phase_lock:
            # Guard window before the wake, plus the exchange itself.
            return (self.config.phase_guard_s
                    + self.config.probe_duration_s
                    + frame_airtime_s(payload_bytes))
        # Strobes until the receiver's probe: W/2 on average.
        return (self.config.wake_interval_s / 2.0
                + frame_airtime_s(payload_bytes))

    def sender_duty_cycle(self, sends_per_second: float,
                          payload_bytes: int = 20) -> float:
        """Duty cycle of a node sending unicasts at a steady rate."""
        if sends_per_second < 0:
            raise ValueError("sends_per_second must be >= 0")
        traffic = sends_per_second * self.sender_strobe_airtime_s(payload_bytes)
        return min(1.0, self.idle_duty_cycle() + traffic)
