"""Closed-form expectations for duty-cycled MAC behaviour.

Analytic counterparts to the simulated MACs, used two ways:

- **validation** — the test suite checks the simulator against these
  formulas (a simulator that disagrees with its own arithmetic is
  broken);
- **design** — deployments can size wake intervals from the formulas
  before simulating (the paper's §V-D "configuration requires
  expertise" problem, made a little smaller).

Models:

- **LPL (BoX-MAC, unicast, clean channel)** — per-hop rendezvous waits
  for the receiver's next probe: U(0, W), so the expected per-hop
  latency is ``W/2`` plus transmission serialization; an idle node's
  duty cycle is ``probe/W`` plus the occasional hold; a phase-locked
  sender transmits for ~a guard window instead of the rendezvous wait.
- **TSCH (scheduled slotframe)** — per-hop rendezvous waits for the
  next usable cell: U(0, F/n) over a slotframe of period F with n
  cells toward the hop, so the expected latency is ``F/(2n)`` plus the
  in-slot exchange; an idle node's duty cycle is its listening slots
  (the shared minimal cell plus any RX cells) over the slotframe.

:func:`mac_summary_lines` is the report dashboard's MAC section: it
dispatches on the fleet's MAC type, so scheduled MACs report cells and
shared-cell contention instead of CSMA-style backoff fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.net.mac.lpl import LplConfig
from repro.net.mac.tsch import TschConfig
from repro.net.packet import MAC_HEADER_BYTES
from repro.radio.medium import BITRATE_BPS, PHY_OVERHEAD_BYTES


def frame_airtime_s(payload_bytes: int) -> float:
    """Airtime of one data frame at the 802.15.4 PHY rate."""
    return (PHY_OVERHEAD_BYTES + MAC_HEADER_BYTES + payload_bytes) * 8 / BITRATE_BPS


@dataclass(frozen=True)
class LplExpectations:
    """Analytic predictions for one LPL configuration."""

    config: LplConfig

    def expected_hop_latency_s(self, payload_bytes: int = 20) -> float:
        """Mean unicast one-hop delay: rendezvous + one frame."""
        return (self.config.wake_interval_s / 2.0
                + frame_airtime_s(payload_bytes))

    def expected_path_latency_s(self, hops: int,
                                payload_bytes: int = 20) -> float:
        """Mean end-to-end delay over ``hops`` independent rendezvous."""
        if hops < 0:
            raise ValueError("hops must be >= 0")
        return hops * self.expected_hop_latency_s(payload_bytes)

    def idle_duty_cycle(self) -> float:
        """Radio-on fraction of a node with no traffic at all."""
        return min(1.0, self.config.probe_duration_s
                   / self.config.wake_interval_s)

    def sender_strobe_airtime_s(self, payload_bytes: int = 20) -> float:
        """Mean radio-on time a sender pays for one unicast."""
        if self.config.phase_lock:
            # Guard window before the wake, plus the exchange itself.
            return (self.config.phase_guard_s
                    + self.config.probe_duration_s
                    + frame_airtime_s(payload_bytes))
        # Strobes until the receiver's probe: W/2 on average.
        return (self.config.wake_interval_s / 2.0
                + frame_airtime_s(payload_bytes))

    def sender_duty_cycle(self, sends_per_second: float,
                          payload_bytes: int = 20) -> float:
        """Duty cycle of a node sending unicasts at a steady rate."""
        if sends_per_second < 0:
            raise ValueError("sends_per_second must be >= 0")
        traffic = sends_per_second * self.sender_strobe_airtime_s(payload_bytes)
        return min(1.0, self.idle_duty_cycle() + traffic)


@dataclass(frozen=True)
class TschExpectations:
    """Analytic predictions for one TSCH configuration."""

    config: TschConfig

    def slotframe_period_s(self) -> float:
        """One slotframe revolution, seconds."""
        return self.config.slot_duration_s * self.config.slotframe_slots

    def expected_hop_latency_s(self, cells: int = 1,
                               payload_bytes: int = 20) -> float:
        """Mean one-hop delay through ``cells`` usable cells per frame.

        ``cells=1`` covers both a single dedicated cell and the shared
        minimal cell: the frame arrives uniformly within the slotframe,
        waits ``F/(2·cells)`` for the next rendezvous, then pays the
        in-slot offset and serialization.
        """
        if cells < 1:
            raise ValueError("cells must be >= 1")
        return (self.slotframe_period_s() / (2.0 * cells)
                + self.config.tx_offset_s
                + frame_airtime_s(payload_bytes))

    def expected_path_latency_s(self, hops: int, cells: int = 1,
                                payload_bytes: int = 20) -> float:
        """Mean end-to-end delay over ``hops`` independent rendezvous."""
        if hops < 0:
            raise ValueError("hops must be >= 0")
        return hops * self.expected_hop_latency_s(cells, payload_bytes)

    def idle_duty_cycle(self, rx_cells: int = 0) -> float:
        """Radio-on fraction of a node listening its shared minimal
        cell plus ``rx_cells`` dedicated RX cells (whole-slot holds)."""
        if rx_cells < 0:
            raise ValueError("rx_cells must be >= 0")
        return min(1.0, (1 + rx_cells) / self.config.slotframe_slots)


def mac_summary_lines(macs: Sequence[object]) -> List[str]:
    """Dashboard lines describing a fleet's MAC layer.

    Dispatches on the MAC implementation, so scheduled MACs render
    schedule statistics (dedicated cells, cell utilization, shared-cell
    contention, 6P traffic) while contention MACs render their
    duty-cycle parameters — the report no longer assumes CSMA-shaped
    internals.
    """
    from repro.net.mac.csma import CsmaMac
    from repro.net.mac.lpl import LplMac
    from repro.net.mac.rimac import RiMac
    from repro.net.mac.tsch import TschMac

    macs = list(macs)
    if not macs:
        return []
    head = macs[0]
    if isinstance(head, TschMac):
        cells = [len(m.schedule.dedicated_cells()) for m in macs]
        util = [m.cell_utilization() for m in macs]
        contention = [m.shared_contention() for m in macs]
        sixp = sum(m.tsch_stats.sixp_sent for m in macs)
        timeouts = sum(m.tsch_stats.sixp_timeouts for m in macs)
        added = sum(m.tsch_stats.cells_added for m in macs)
        deleted = sum(m.tsch_stats.cells_deleted for m in macs)
        expect = TschExpectations(head.config)
        return [
            (f"tsch: slotframe={head.config.slotframe_slots} slots x "
             f"{head.config.slot_duration_s * 1000:.0f}ms, "
             f"{len(head.config.hopping)}-channel hopping"),
            (f"cells: dedicated={sum(cells)} "
             f"(max/node={max(cells)}), added={added} deleted={deleted}, "
             f"6p msgs={sixp} timeouts={timeouts}"),
            (f"cell utilization: mean={sum(util) / len(util):.0%}  "
             f"shared-cell contention: mean="
             f"{sum(contention) / len(contention):.0%}"),
            (f"idle duty-cycle floor: {expect.idle_duty_cycle():.1%} "
             f"(shared minimal cell)"),
        ]
    if isinstance(head, LplMac):
        expect = LplExpectations(head.config)
        return [
            (f"lpl: wake interval={head.config.wake_interval_s:.3f}s, "
             f"probe={head.config.probe_duration_s * 1000:.1f}ms, "
             f"idle duty-cycle floor: {expect.idle_duty_cycle():.1%}"),
        ]
    if isinstance(head, RiMac):
        return [
            (f"rimac: beacon period={head.config.wake_interval_s:.3f}s "
             f"(±{head.config.jitter:.0%}), "
             f"dwell={head.config.dwell_s * 1000:.1f}ms"),
        ]
    if isinstance(head, CsmaMac):
        return [
            (f"csma: always-on CSMA/CA, max retries="
             f"{head.config.max_retries}, "
             f"cca attempts={head.config.max_cca_attempts}"),
        ]
    return []
