"""Always-on CSMA/CA with link-layer acknowledgments.

The energy-unconstrained baseline: the radio listens whenever it is not
transmitting, so receive latency is only backoff + airtime.  This is
what mains-powered border routers run, and what battery-powered nodes
*cannot afford* — the contrast that motivates duty cycling (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.mac.base import MacConfigError, MacLayer, _TxJob
from repro.net.packet import BROADCAST, MacFrame
from repro.sim.timers import Timer


@dataclass(frozen=True)
class CsmaConfig:
    """CSMA/CA parameters (defaults follow 802.15.4 unslotted CSMA)."""

    #: Initial backoff window; doubles per failed CCA.
    backoff_unit_s: float = 0.00032
    #: Initial backoff exponent (window = unit * 2**be slots).
    min_be: int = 3
    max_be: int = 5
    #: Clear-channel attempts before declaring channel-access failure.
    max_cca_attempts: int = 5
    #: Retransmissions of an unacknowledged unicast frame.
    max_retries: int = 3
    #: How long to wait for the ACK after the data frame ends.
    ack_timeout_s: float = 0.003

    def validate(self) -> None:
        if self.max_cca_attempts < 1:
            raise MacConfigError("max_cca_attempts must be >= 1")
        if self.max_retries < 0:
            raise MacConfigError("max_retries must be >= 0")
        if not self.min_be <= self.max_be:
            raise MacConfigError("min_be must not exceed max_be")


class CsmaMac(MacLayer):
    """Unslotted CSMA/CA over an always-listening radio."""

    def __init__(self, sim, radio, config: Optional[CsmaConfig] = None, **kwargs) -> None:
        super().__init__(sim, radio, **kwargs)
        self.config = config if config is not None else CsmaConfig()
        self.config.validate()
        self._ack_timer = Timer(sim, self._ack_timeout)
        self._awaiting: Optional[_TxJob] = None
        self._retries = 0

    # ------------------------------------------------------------------
    def _on_start(self) -> None:
        self.radio.set_listening()

    def _on_stop(self) -> None:
        self._ack_timer.cancel()
        self._awaiting = None
        from repro.radio.medium import RadioState

        if self.radio.state is not RadioState.TX:
            self.radio.sleep()

    # ------------------------------------------------------------------
    def _start_job(self, job: _TxJob) -> None:
        self._retries = 0
        self._attempt(job)

    def _attempt(self, job: _TxJob) -> None:
        self._cca(job, cca_attempt=0)

    def _cca(self, job: _TxJob, cca_attempt: int) -> None:
        be = min(self.config.min_be + cca_attempt, self.config.max_be)
        window = self.config.backoff_unit_s * (2**be)
        delay = self._rng.uniform(0, window)

        def check() -> None:
            if not self._started:
                self._finish_job(job, False)
                return
            from repro.radio.medium import RadioState

            if self.radio.carrier_busy() or self.radio.state is RadioState.TX:
                if cca_attempt + 1 >= self.config.max_cca_attempts:
                    self._finish_job(job, False)
                else:
                    self._cca(job, cca_attempt + 1)
                return
            self._transmit_data(job)

        self.sim.schedule(delay, check)

    def _transmit_data(self, job: _TxJob) -> None:
        frame = self.data_frame(job)

        def tx_done() -> None:
            if job.dest == BROADCAST:
                self._finish_job(job, True)
                return
            self._awaiting = job
            self._ack_timer.start(self.config.ack_timeout_s)

        self._transmit_frame(frame, tx_done)

    def _ack_timeout(self) -> None:
        job = self._awaiting
        self._awaiting = None
        if job is None:
            return
        self._retries += 1
        if self._retries > self.config.max_retries:
            self._finish_job(job, False)
        else:
            self._attempt(job)

    def _handle_ack(self, frame: MacFrame) -> None:
        job = self._awaiting
        if job is None or frame.src != job.dest or frame.seq != job.seq:
            return
        self._ack_timer.cancel()
        self._awaiting = None
        self._finish_job(job, True)

    def _handle_data(self, frame: MacFrame) -> None:
        if frame.dst == self.radio.node_id:
            self._send_ack(frame.src, frame.seq)
        super()._handle_data(frame)
