"""Receiver-initiated MAC (RI-MAC style).

Receivers wake on their own schedule and announce availability with a
short beacon; a sender keeps its radio on until it hears the intended
receiver's beacon, then transmits immediately.  Compared with LPL, the
cost of rendezvous moves from the channel (long strobes) to the sender's
idle listening, which behaves much better under contention — the reason
ref [27] proposed it for dynamic traffic loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.mac.base import MacConfigError, MacLayer, _TxJob
from repro.net.packet import BROADCAST, FrameKind, MacFrame
from repro.sim.timers import Timer


@dataclass(frozen=True)
class RiMacConfig:
    """Receiver-initiated MAC parameters."""

    #: Mean beacon period; actual periods are jittered ±``jitter``.
    wake_interval_s: float = 0.5
    jitter: float = 0.2
    #: How long a receiver listens after its beacon for incoming data.
    dwell_s: float = 0.008
    #: Random pre-transmission delay spreading contending senders.
    tx_spread_s: float = 0.002
    #: How long past a full wake interval a sender keeps waiting.
    wait_margin_s: float = 0.1
    #: Whole-wait retries for unacknowledged unicast.
    max_retries: int = 1

    def validate(self) -> None:
        if self.wake_interval_s <= 0:
            raise MacConfigError("wake_interval_s must be positive")
        if not 0 <= self.jitter < 1:
            raise MacConfigError("jitter must be in [0, 1)")


class RiMac(MacLayer):
    """RI-MAC style receiver-initiated duty-cycled MAC."""

    def __init__(self, sim, radio, config: Optional[RiMacConfig] = None, **kwargs) -> None:
        super().__init__(sim, radio, **kwargs)
        self.config = config if config is not None else RiMacConfig()
        self.config.validate()
        self._beacon_timer = Timer(sim, self._beacon)
        self._dwell_timer = Timer(sim, self._dwell_over)
        self._wait_timer = Timer(sim, self._wait_expired)
        self._job: Optional[_TxJob] = None
        self._job_deadline = 0.0
        self._retries = 0
        self._got_ack = False
        self._broadcast_targets_served = 0

    # ------------------------------------------------------------------
    # receiver duty cycle
    # ------------------------------------------------------------------
    def _on_start(self) -> None:
        self._beacon_timer.start(self._rng.uniform(0, self.config.wake_interval_s))

    def _on_stop(self) -> None:
        for timer in (self._beacon_timer, self._dwell_timer, self._wait_timer):
            timer.cancel()
        from repro.radio.medium import RadioState

        if self.radio.state is not RadioState.TX:
            self.radio.sleep()

    def _next_beacon_delay(self) -> float:
        w, j = self.config.wake_interval_s, self.config.jitter
        return self._rng.uniform(w * (1 - j), w * (1 + j))

    def _beacon(self) -> None:
        self._beacon_timer.start(self._next_beacon_delay())
        from repro.radio.medium import RadioState

        if self.radio.state is RadioState.TX:
            return
        self.radio.set_listening()
        beacon = MacFrame(
            kind=FrameKind.BEACON,
            src=self.radio.node_id,
            dst=BROADCAST,
            seq=0,
        )
        self._transmit_frame(
            beacon, lambda: self._dwell_timer.start(self.config.dwell_s)
        )

    def _dwell_over(self) -> None:
        from repro.radio.medium import RadioState

        if self.radio.state is RadioState.TX:
            self._dwell_timer.start(self.config.dwell_s)
            return
        if self._job is None:
            self.radio.sleep()

    def _handle_data(self, frame: MacFrame) -> None:
        if frame.dst == self.radio.node_id:
            self._send_ack(frame.src, frame.seq)
            # Hold the radio briefly in case the sender has more.
            self._dwell_timer.start(self.config.dwell_s)
        super()._handle_data(frame)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def _start_job(self, job: _TxJob) -> None:
        self._retries = 0
        self._begin_wait(job)

    def _begin_wait(self, job: _TxJob) -> None:
        self._job = job
        self._got_ack = False
        self._broadcast_targets_served = 0
        self._job_deadline = (
            self.sim.now
            + self.config.wake_interval_s * (1 + self.config.jitter)
            + self.config.wait_margin_s
        )
        self.radio.set_listening()
        self._wait_timer.start(self._job_deadline - self.sim.now)

    def _handle_beacon(self, frame: MacFrame) -> None:
        job = self._job
        if job is None:
            return
        if job.dest != BROADCAST and frame.src != job.dest:
            return

        delay = self._rng.uniform(0, self.config.tx_spread_s)

        def fire() -> None:
            if self._job is not job:
                return
            from repro.radio.medium import RadioState

            if self.radio.state is RadioState.TX or self.radio.carrier_busy():
                return  # lost the race to another sender; next beacon
            self._transmit_frame(self.data_frame(job))
            if job.dest == BROADCAST:
                self._broadcast_targets_served += 1

        self.sim.schedule(delay, fire)

    def _handle_ack(self, frame: MacFrame) -> None:
        job = self._job
        if job is None or frame.src != job.dest or frame.seq != job.seq:
            return
        self._got_ack = True
        self._wait_timer.cancel()
        self._complete(True)

    def _wait_expired(self) -> None:
        job = self._job
        if job is None:
            return
        if job.dest == BROADCAST:
            self._complete(self._broadcast_targets_served > 0
                           or not self.radio.medium.audible_from(self.radio))
            return
        self._complete(False)

    def _complete(self, success: bool) -> None:
        job = self._job
        self._job = None
        self._wait_timer.cancel()
        assert job is not None
        if not success and job.dest != BROADCAST and self._retries < self.config.max_retries:
            self._retries += 1
            self._begin_wait(job)
            return
        from repro.radio.medium import RadioState

        if self.radio.state is not RadioState.TX and not self._dwell_timer.armed:
            self.radio.sleep()
        self._finish_job(job, success)
