PYTHON ?= python
PYTHONPATH := src

.PHONY: test check-invariants check-dependability sweep bench bench-perf \
	bench-perf-quick bench-scale bench-scale-quick report demo diff-core \
	diff-core-baseline dependability-baseline diff-taxonomy \
	diff-taxonomy-baseline explain-core explain-core-baseline \
	bench-taxonomy-matrix diff-taxonomy-matrix taxonomy-matrix-baseline

# Tier-1: the fast correctness suite (must always pass).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The invariant-checking suite: per-checker unit tests, determinism
# regressions, and the multi-seed fault sweeps. Kept separate from
# tier-1 so its longer scenario runs don't slow the inner loop. The CLI
# sweep runs with --jobs 2 as a standing smoke of the parallel engine
# (outcomes are identical for every jobs count); REPRO_PARALLEL_FORCE=1
# routes it through the warm worker pool even on a single-core host,
# where the executor's serial fast-path would otherwise (correctly)
# skip multiprocessing entirely.
check-invariants: check-dependability explain-core diff-taxonomy-matrix
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/checking -q
	REPRO_PARALLEL_FORCE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep --seeds 10 --jobs 2
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_perf_scale.py --identity-only >/dev/null \
		&& echo "spatial-index identity: OK (indexed medium == brute force)"

# Dependability gate: runs the declarative fault-plan scenarios (HVAC
# safety under a fault schedule + the availability probe) at the pinned
# gate seed, asserts zero violations and a non-zero availability-axis
# score, then diffs the emitted dependability/fault metrics against the
# committed baseline (same DIFF_FAIL_ON contract as diff-core).
DEPENDABILITY_BASELINE := benchmarks/results/dependability.baseline.json
check-dependability:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro dependability --export .dependability.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro diff $(DEPENDABILITY_BASELINE) .dependability.json --fail-on $(DIFF_FAIL_ON)
	rm -f .dependability.json

dependability-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro dependability --export $(DEPENDABILITY_BASELINE)
	@echo "refreshed $(DEPENDABILITY_BASELINE) — review and commit it"

# Just the CLI sweep (SEEDS=n to widen, JOBS=n to parallelize; 0 = all
# cores).
SEEDS ?= 10
JOBS ?= 1
sweep:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep --seeds $(SEEDS) --jobs $(JOBS)

# The paper's experiment suite (REPRO_BENCH_JOBS=0 uses all cores for
# benchmarks wired through benchmarks/_common.py trial helpers).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# The perf baseline: kernel events/sec, medium frames/sec, serial vs
# parallel trials/sec. Writes BENCH_core.json at the repo root —
# rerun before and after optimization PRs and compare. BENCH_JOBS=0
# (the default) sizes the parallel leg to all available cores.
BENCH_JOBS ?= 0
bench-perf:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_perf_core.py --jobs $(BENCH_JOBS)

# Same bench at tier-1 scale: every leg runs (warm pool, sampled
# observability, serial-vs-parallel sweep) with reduced counts, and
# BENCH_core.json is left untouched — a seconds-long smoke that the
# perf harness itself still works.
bench-perf-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_perf_core.py --jobs $(BENCH_JOBS) --quick

# The scale baseline: campus deployments at N=1k/10k/50k radios —
# frames/sec, events/sec, an RSS proxy, and the indexed-vs-brute-force
# speedup at N=10k (asserted >= 5x). Writes BENCH_scale.json at the
# repo root. The identity legs (indexed medium reproduces brute force
# byte-for-byte) also run standalone inside check-invariants.
bench-scale:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_perf_scale.py

# Reduced counts, tier-1 time budget; leaves BENCH_scale.json alone.
bench-scale-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_perf_scale.py --quick

# The observability dashboard: runs an instrumented demo deployment and
# prints delivery metrics, latency percentiles, duty cycles, profiler
# hot spots, and one reconstructed packet-lifecycle span tree.
# EXPORT=dir additionally writes spans.jsonl/metrics.csv/trace.jsonl.
EXPORT ?=
report:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report $(if $(EXPORT),--export $(EXPORT))

demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro

# Metrics regression gate: re-runs the deterministic dashboard demo
# (fixed seed, profiler off — its snapshot is byte-identical across
# runs) and diffs the exported metrics against the committed baseline.
# Any series moving more than DIFF_FAIL_ON (relative; default exact)
# fails the target — the same net that caught the delivery regression
# of the medium's heap rework. After an *intentional* behaviour change,
# refresh with make diff-core-baseline and commit the new baseline.
DIFF_FAIL_ON ?= 0.0
DIFF_CORE_BASELINE := benchmarks/results/core_metrics.baseline.json
DIFF_CORE_ARGS := --side 3 --duration 120 --no-profile
diff-core:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report $(DIFF_CORE_ARGS) --export .diff-core >/dev/null
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro diff $(DIFF_CORE_BASELINE) .diff-core/metrics.json --fail-on $(DIFF_FAIL_ON)
	rm -rf .diff-core

diff-core-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report $(DIFF_CORE_ARGS) --export .diff-core >/dev/null
	cp .diff-core/metrics.json $(DIFF_CORE_BASELINE)
	rm -rf .diff-core
	@echo "refreshed $(DIFF_CORE_BASELINE) — review and commit it"

# Latency-attribution gate: re-runs the deterministic demo through
# `repro explain` (same fixed config as diff-core) and exact-diffs the
# per-layer attribution table against the committed baseline — a shift
# in any layer's share of p95 latency fails the target even when the
# aggregate metrics still match.
EXPLAIN_BASELINE := benchmarks/results/explain_core.baseline.json
explain-core:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro explain --metric net.latency_s --p 95 \
		--export .explain-core.json >/dev/null
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro explain --diff $(EXPLAIN_BASELINE) .explain-core.json \
		--fail-on $(DIFF_FAIL_ON)
	rm -f .explain-core.json

explain-core-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro explain --metric net.latency_s --p 95 \
		--export $(EXPLAIN_BASELINE) >/dev/null
	@echo "refreshed $(EXPLAIN_BASELINE) — review and commit it"

# Same gate for the taxonomy capstone: re-runs the report-card bench
# with metrics export on and diffs its row snapshot against the
# committed baseline, so a silent shift in any axis score fails CI.
TAXONOMY_BASELINE := benchmarks/results/taxonomy_report.baseline.json
TAXONOMY_EXPORT := benchmarks/results/taxonomy_report.metrics.json
diff-taxonomy:
	REPRO_BENCH_EXPORT_METRICS=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_taxonomy_report.py --benchmark-only -q >/dev/null
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro diff $(TAXONOMY_BASELINE) $(TAXONOMY_EXPORT) --fail-on $(DIFF_FAIL_ON)
	rm -f $(TAXONOMY_EXPORT)

diff-taxonomy-baseline:
	REPRO_BENCH_EXPORT_METRICS=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_taxonomy_report.py --benchmark-only -q >/dev/null
	mv $(TAXONOMY_EXPORT) $(TAXONOMY_BASELINE)
	@echo "refreshed $(TAXONOMY_BASELINE) — review and commit it"

# The MAC x Trickle comparative matrix (E15): every {csma, lpl, rimac,
# tsch} x {classic, adaptive-imin, adaptive-k} combination measured on
# one grid. bench-taxonomy-matrix prints the table (REPRO_BENCH_JOBS=0
# fans the 12 cells over all cores); diff-taxonomy-matrix re-runs it
# with metrics export on and diffs every cell against the committed
# baseline — any MAC or Trickle behaviour drift fails the gate.
TAXONOMY_MATRIX_BASELINE := benchmarks/results/taxonomy_matrix.baseline.json
TAXONOMY_MATRIX_EXPORT := benchmarks/results/taxonomy_matrix.metrics.json
bench-taxonomy-matrix:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_taxonomy_matrix.py --benchmark-only -q -s

diff-taxonomy-matrix:
	REPRO_BENCH_EXPORT_METRICS=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_taxonomy_matrix.py --benchmark-only -q >/dev/null
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro diff $(TAXONOMY_MATRIX_BASELINE) $(TAXONOMY_MATRIX_EXPORT) --fail-on $(DIFF_FAIL_ON)
	rm -f $(TAXONOMY_MATRIX_EXPORT)

taxonomy-matrix-baseline:
	REPRO_BENCH_EXPORT_METRICS=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_taxonomy_matrix.py --benchmark-only -q >/dev/null
	mv $(TAXONOMY_MATRIX_EXPORT) $(TAXONOMY_MATRIX_BASELINE)
	@echo "refreshed $(TAXONOMY_MATRIX_BASELINE) — review and commit it"
