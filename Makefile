PYTHON ?= python
PYTHONPATH := src

.PHONY: test check-invariants sweep bench bench-perf report demo

# Tier-1: the fast correctness suite (must always pass).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The invariant-checking suite: per-checker unit tests, determinism
# regressions, and the multi-seed fault sweeps. Kept separate from
# tier-1 so its longer scenario runs don't slow the inner loop. The CLI
# sweep runs with --jobs 2 as a standing smoke of the parallel engine
# (outcomes are identical for every jobs count).
check-invariants:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/checking -q
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep --seeds 10 --jobs 2

# Just the CLI sweep (SEEDS=n to widen, JOBS=n to parallelize; 0 = all
# cores).
SEEDS ?= 10
JOBS ?= 1
sweep:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep --seeds $(SEEDS) --jobs $(JOBS)

# The paper's experiment suite (REPRO_BENCH_JOBS=0 uses all cores for
# benchmarks wired through benchmarks/_common.py trial helpers).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# The perf baseline: kernel events/sec, medium frames/sec, serial vs
# parallel trials/sec. Writes BENCH_core.json at the repo root —
# rerun before and after optimization PRs and compare. BENCH_JOBS=0
# (the default) sizes the parallel leg to all available cores.
BENCH_JOBS ?= 0
bench-perf:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_perf_core.py --jobs $(BENCH_JOBS)

# The observability dashboard: runs an instrumented demo deployment and
# prints delivery metrics, latency percentiles, duty cycles, profiler
# hot spots, and one reconstructed packet-lifecycle span tree.
# EXPORT=dir additionally writes spans.jsonl/metrics.csv/trace.jsonl.
EXPORT ?=
report:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report $(if $(EXPORT),--export $(EXPORT))

demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro
