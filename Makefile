PYTHON ?= python
PYTHONPATH := src

.PHONY: test check-invariants sweep bench demo

# Tier-1: the fast correctness suite (must always pass).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The invariant-checking suite: per-checker unit tests, determinism
# regressions, and the multi-seed fault sweeps. Kept separate from
# tier-1 so its longer scenario runs don't slow the inner loop.
check-invariants:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/checking -q
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep --seeds 10

# Just the CLI sweep (SEEDS=n to widen).
SEEDS ?= 10
sweep:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep --seeds $(SEEDS)

# The paper's experiment suite.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro
