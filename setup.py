"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; this legacy entry point lets ``pip install -e .`` fall
back to ``setup.py develop``.  All metadata lives in ``pyproject.toml``
conceptually; it is mirrored here because the legacy path reads it from
``setup()``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Executable reproduction of 'A Distributed Systems Perspective on "
        "Industrial IoT' (Iwanicki, ICDCS 2018)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
)
