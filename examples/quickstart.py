"""Quickstart: build a small industrial IoT system and watch it work.

Runs in a few seconds::

    python examples/quickstart.py

What it shows:

1. a 5x5 grid of constrained devices self-organizes into a DODAG rooted
   at the border router (nobody configures routes);
2. telemetry flows: an in-network AVG query returns one result per epoch;
3. a device is read on demand through the CoAP middleware;
4. the energy story: per-node duty cycle and projected battery life.
"""

from repro import IIoTSystem, grid_topology
from repro.aggregation import AggregationService
from repro.core.metrics import collect_energy, mean
from repro.devices import DiurnalField
from repro.middleware import CoapClient, CoapServer, CoapTransport
from repro.middleware.coap.resource import CallbackResource


def main() -> None:
    # --- build the sensing/actuation tier -----------------------------
    system = IIoTSystem.build(grid_topology(side=5, spacing_m=20.0), seed=42)
    outside = DiurnalField(mean=18.0, amplitude=6.0)
    system.add_field_sensors("temp", outside)
    system.start()
    system.run(240.0)
    print(f"network of {system.topology.size} devices: "
          f"{system.joined_fraction():.0%} joined, "
          f"depth {system.topology.network_depth(25.0)} hops")

    # --- continuous telemetry: in-network aggregation -----------------
    services = [AggregationService(node) for node in system.nodes.values()]
    results = []
    services[0].run_query("temp", "avg", epoch_s=60.0, lifetime_epochs=5,
                          on_result=results.append)
    system.run(360.0)
    for result in results:
        print(f"  epoch {result.epoch}: avg temp "
              f"{result.value:.2f} C over {result.node_count} nodes")

    # --- on-demand access: CoAP through the middleware ----------------
    device = system.nodes[24]  # far corner
    transport = CoapTransport(device.stack)
    server = CoapServer(transport)
    server.add_resource(CallbackResource(
        "/sensors/temp",
        on_get=lambda: (device.read("temp"), 4),
    ))
    answers = []
    client = system.gateway.client
    client.get(24, "/sensors/temp", lambda r: answers.append(r))
    system.run(30.0)
    response = answers[0]
    print(f"CoAP GET coap://node24/sensors/temp -> {response.code}: "
          f"{response.payload:.2f} C "
          f"(across {system.topology.network_depth(25.0)} wireless hops)")

    # --- the energy reality of the sensing/actuation layer ------------
    summaries = collect_energy(system.nodes.values(), system.sim.now)
    print(f"mean radio duty cycle: "
          f"{mean([s.duty_cycle for s in summaries]):.1%} "
          f"(CSMA keeps radios on; see examples/smart_building_hvac.py "
          f"for the duty-cycled variant)")


if __name__ == "__main__":
    main()
