"""Factory retrofit: integrating legacy equipment, securely.

Runs in seconds::

    python examples/factory_retrofit.py

What it shows (paper sections in brackets):

1. a brownfield integration: new wireless CoAP sensors coexist with a
   1990s Modbus-like drive and a proprietary-ASCII chiller, all unified
   behind the gateway's northbound API [§III];
2. the middleware economics: adapters grow linearly, pairwise
   integration quadratically [§III-B];
3. the security story: an attacker in the parking lot injects actuation
   commands — they land when link-layer security is off, and die at the
   MAC with MIC-32 enabled, raising an alarm [§V-E].
"""

from repro import IIoTSystem, grid_topology
from repro.middleware import (
    CoapClient,
    CoapServer,
    CoapTransport,
    LegacyModbusDevice,
    ModbusAdapter,
    ProprietaryAdapter,
    ProprietaryAsciiDevice,
)
from repro.middleware.adapters.modbus import RegisterSpec
from repro.middleware.coap.codes import CoapCode
from repro.middleware.coap.resource import CallbackResource
from repro.middleware.gateway import (
    middleware_integration_cost,
    pairwise_integration_cost,
)
from repro.security import (
    AnomalyDetector,
    CommandInjector,
    FrameAuthenticator,
    KeyStore,
)

NETWORK_KEY = 0x5EC2E7


def main() -> None:
    system = IIoTSystem.build(grid_topology(3), seed=99)
    system.start()
    system.run(300.0)
    gateway = system.gateway
    print(f"retrofit network: {system.joined_fraction():.0%} of "
          f"{system.topology.size - 1} new wireless sensors joined")

    # --- native devices register their resources ----------------------
    for node_id, value in ((4, 61.2), (8, 58.9)):
        node = system.nodes[node_id]
        transport = CoapTransport(node.stack)
        server = CoapServer(transport)
        client = CoapClient(transport)
        server.add_resource(CallbackResource(
            "/sensors/vibration", on_get=(lambda v: lambda: (v, 4))(value)))
        client.request(0, CoapCode.POST, "/rd", callback=lambda r: None,
                       payload={"node": node_id,
                                "paths": ["/sensors/vibration"]},
                       payload_bytes=16)
    system.run(60.0)

    # --- legacy equipment wires into the gateway ----------------------
    drive = LegacyModbusDevice(system.sim, unit_id=3,
                               registers={100: 1480, 101: 752})
    gateway.attach_legacy("main-drive", ModbusAdapter(drive, {
        "rpm": RegisterSpec(address=100, scale=1.0),
        "temp": RegisterSpec(address=101, scale=10.0),
        "setpoint_rpm": RegisterSpec(address=102, scale=1.0, writable=True),
    }))
    chiller = ProprietaryAsciiDevice(system.sim, "chiller",
                                     {"TEMP": 6.8, "VLV": 0.4})
    gateway.attach_legacy("chiller", ProprietaryAdapter(chiller))

    print(f"gateway namespace: {gateway.targets()}")
    readings = {}
    plan = [("native/4", "/sensors/vibration"),
            ("native/8", "/sensors/vibration"),
            ("legacy/main-drive", "rpm"),
            ("legacy/main-drive", "temp"),
            ("legacy/chiller", "TEMP")]
    for target, point in plan:
        gateway.read(target, point,
                     (lambda t, p: lambda v: readings.update({f"{t}:{p}": v})
                      )(target, point))
    system.run(30.0)
    for key, value in readings.items():
        print(f"  {key} = {value}")
    gateway.write("legacy/main-drive", "setpoint_rpm", 1200.0,
                  lambda ok: print(f"  write setpoint_rpm=1200 -> {ok}"))
    system.run(5.0)

    n = 12
    print(f"integration cost at {n} systems: middleware "
          f"{middleware_integration_cost(n)} adapters vs pairwise "
          f"{pairwise_integration_cost(n)} translators")

    # --- the parking-lot attacker --------------------------------------
    victim = system.nodes[8]
    opened = []
    victim.stack.bind(55, lambda d: opened.append(d.payload))
    attacker = CommandInjector(system.sim, system.medium, 666,
                               (45.0, 32.0), trace=system.trace)
    attacker.inject(victim=8, port=55, payload="VALVE_OPEN", payload_bytes=8)
    system.run(30.0)
    print(f"security OFF: injected commands applied = {opened}")

    print("enabling link-layer security (MIC-32, network key)...")
    for node in system.nodes.values():
        keystore = KeyStore(node.node_id)
        keystore.provision_network_key(NETWORK_KEY)
        FrameAuthenticator(node.stack.mac, keystore,
                           trace=system.trace).enable()
    detector = AnomalyDetector(system.sim, system.trace,
                               rejection_threshold=3, window_s=600.0)
    opened.clear()
    for i in range(5):
        system.sim.schedule(10.0 * i,
                            (lambda: attacker.inject(8, 55, "VALVE_OPEN", 8)))
    system.run(120.0)
    print(f"security ON: injected commands applied = {opened}; "
          f"alarms = {[a.kind for a in detector.alarms]}")


if __name__ == "__main__":
    main()
