"""Construction site: incremental rollout, multi-tenant spectrum, and
shared state between contractors.

Runs in under a minute::

    python examples/construction_site.py

What it shows (paper sections in brackets):

1. the deployment grows in place from a 3-node pilot to 40+ devices over
   staged rollouts, converging at every stage [§IV, size scalability];
2. another contractor's Wi-Fi backhaul appears mid-project and degrades
   telemetry until the network retunes its channel [§IV-C,
   administrative scalability];
3. two contractors share an equipment-checkout ledger as a replicated
   CRDT — it keeps accepting updates on both sides of a connectivity
   gap and converges when the gap closes [§IV-B, §V-C].
"""

from repro import IIoTSystem, SystemConfig, StackConfig
from repro.crdt import AntiEntropyConfig, CrdtReplica, NetworkReplicator, ORSet
from repro.deployment import RolloutPlan, clustered_site_topology
from repro.faults import GeometricPartition, PartitionController
from repro.radio.interference import InterfererConfig, WifiInterferer


def probe_delivery(system, sources, port=7):
    """Send one probe from each source node; fraction delivered."""
    delivered = set()
    if port in system.root.stack._sockets:
        system.root.stack.unbind(port)
    system.root.stack.bind(port, lambda d: delivered.add(d.src))
    for node in sources:
        node.stack.send_datagram(0, port, "probe", 8)
    system.run(60.0)
    return len(delivered) / max(len(sources), 1)


def main() -> None:
    topology = clustered_site_topology(clusters=6, nodes_per_cluster=7,
                                       site_span_m=140.0,
                                       radio_range_m=30.0, seed=4)
    config = SystemConfig(stack=StackConfig(mac="csma", channel=18))
    system = IIoTSystem.build(topology, config=config, seed=13)

    # --- staged rollout ------------------------------------------------
    plan = RolloutPlan.geometric(topology, pilot_size=3, growth_factor=4,
                                 stage_interval_s=600.0)
    print(f"site plan: {topology.size} devices in "
          f"{len(plan.stages)} stages")
    plan.execute(system.sim, system.activate, trace=system.trace)
    system.start([])
    for index, stage in enumerate(plan.stages):
        # Measure just before the next stage activates, so the report
        # reflects a settled stage rather than freshly-booted nodes.
        system.run(590.0)
        print(f"  {stage.name}: {len(system.active_nodes())} active, "
              f"{system.joined_fraction():.0%} joined")
        system.run(10.0)

    active = [n for n in system.active_nodes() if not n.is_root]
    print(f"pre-interference probe delivery: "
          f"{probe_delivery(system, active[-8:]):.0%}")

    # --- another tenant moves in ---------------------------------------
    print("a contractor's Wi-Fi (channel 6) goes live next to the site...")
    interferers = [
        WifiInterferer(system.sim, system.medium, 900 + i,
                       (40.0 + 40.0 * i, 8.0),
                       config=InterfererConfig(wifi_channel=6,
                                               duty_cycle=0.35,
                                               tx_power_dbm=16.0))
        for i in range(3)
    ]
    for interferer in interferers:
        interferer.start()
    degraded = probe_delivery(system, active[-8:])
    print(f"  probe delivery with co-located Wi-Fi: {degraded:.0%}")

    print("site retunes to 802.15.4 channel 26 (outside the Wi-Fi mask)...")
    for node in system.nodes.values():
        node.stack.radio.channel = 26
    system.run(120.0)
    recovered = probe_delivery(system, active[-8:])
    print(f"  probe delivery after retune: {recovered:.0%}")

    # --- shared equipment ledger across contractors ---------------------
    ledger = {}
    replicators = {}
    for node in system.active_nodes():
        replica = CrdtReplica(node.node_id, ORSet(node.node_id))
        ledger[node.node_id] = replica
        replicator = NetworkReplicator(
            node.stack, replica, AntiEntropyConfig(period_s=20.0))
        replicator.start()
        replicators[node.node_id] = replicator

    east = active[-1].node_id
    west = active[0].node_id
    cutter = PartitionController(system.sim, system.medium, system.trace)
    cutter.apply(GeometricPartition(cut_x=70.0))
    print("trenching cuts the site in half; both offices keep working:")
    ledger[west].mutate(lambda s: s.add("excavator-1 checked out"))
    replicators[west].notify_local_update()
    ledger[east].mutate(lambda s: s.add("crane-2 checked out"))
    replicators[east].notify_local_update()
    system.run(240.0)
    print(f"  west office sees: {sorted(ledger[west].state.value())}")
    print(f"  east office sees: {sorted(ledger[east].state.value())}")

    cutter.heal()
    system.run(400.0)
    values = {frozenset(replica.state.value()) for replica in ledger.values()}
    print(f"link restored: all {len(ledger)} replicas agree: "
          f"{len(values) == 1}; ledger = {sorted(next(iter(values)))}")


if __name__ == "__main__":
    main()
