"""Smart building: duty-cycled HVAC control with partition tolerance.

Runs a 2-floor office building through a 12-hour working window
(06:00-18:00), a mid-day partition included::

    python examples/smart_building_hvac.py

What it shows (paper sections in brackets):

1. zones run over a *low-power-listening* MAC with ContikiMAC-style
   phase lock — radios sleep ~98% of the time [§IV-B];
2. an occupancy-aware setback policy deliberately relaxes comfort
   margins at night to save energy, priced by the provider's revenue
   model [§V-B];
3. control is remote (on the border router), but when a partition cuts
   half the building off, the zones fall back to a local safe policy and
   recover when the network heals [§V-C].
"""

from repro import IIoTSystem, SystemConfig, StackConfig, building_topology
from repro.core.metrics import collect_energy, mean
from repro.devices import DiurnalField
from repro.faults import GeometricPartition, PartitionController
from repro.net.mac import LplConfig
from repro.net.rpl import RplConfig
from repro.safety import (
    BangBangController,
    ComfortBand,
    OccupancySchedule,
    RevenueModel,
    SetbackController,
)
from repro.safety.hvac import HvacZone, RemoteControlLoop, RemoteHvacController

BAND = ComfortBand(20.0, 23.0)
SCHEDULE = OccupancySchedule([(8.0, 18.0, 6)])
WINDOW_H = 12.0  # simulated hours


def main() -> None:
    # Duty-cycled stack: LPL with a 1 s wake interval, slow Trickle.
    config = SystemConfig(stack=StackConfig(
        mac="lpl",
        mac_config=LplConfig(wake_interval_s=1.0, phase_lock=True),
        rpl=RplConfig(trickle_imin_s=8.0, trickle_doublings=7, trickle_k=3,
                      dis_period_s=60.0, float_delay_s=300.0),
    ))
    topology = building_topology(floors=2, zones_per_floor=3)
    system = IIoTSystem.build(topology, config=config, seed=7)
    system.start()
    system.run(1200.0)
    print(f"building network: {system.joined_fraction():.0%} of "
          f"{topology.size - 1} zone controllers joined (LPL, W=1s)")

    outside = DiurnalField(mean=6.0, amplitude=6.0, gradient_per_m=0.0,
                           phase_s=-6 * 3600.0)
    controller = RemoteHvacController(system.root)
    zones, loops = [], []
    for node in system.nodes.values():
        if node.is_root:
            continue
        zone = HvacZone(node, lambda t: outside.value_at(t, (0.0, 0.0)),
                        BAND, schedule=SCHEDULE, initial_temp_c=20.5,
                        control_period_s=300.0)
        controller.manage(zone.name, SetbackController(
            BAND, SCHEDULE, setback_margin_c=4.0))
        loop = RemoteControlLoop(
            zone, controller_node=0,
            fallback=BangBangController(BAND.widened(1.5)),
            fallback_timeout_s=900.0,
        )
        zone.start()
        loop.start()
        zones.append(zone)
        loops.append(loop)

    # Morning: normal operation.
    system.run(6 * 3600.0)
    print(f"06:00 (night setback, relaxed band): mean zone temp "
          f"{mean([z.zone.temperature_c for z in zones]):.1f} C, "
          f"commands delivered {controller.reports_handled}")

    # Afternoon: a partition cuts the far half of the building off.
    cutter = PartitionController(system.sim, system.medium, system.trace)
    cutter.apply(GeometricPartition(cut_x=45.0))
    print("partition applied at x=45m (backhaul side vs far wing)")
    system.run(3 * 3600.0)
    in_fallback = sum(1 for loop in loops if loop.in_fallback)
    worst = max(z.comfort.worst_violation_c for z in zones)
    print(f"after 3h partitioned: {in_fallback} zones on local fallback, "
          f"worst comfort violation {worst:.1f} C (soft-safe)")

    cutter.heal()
    system.run(3 * 3600.0)
    print(f"healed: {sum(1 for l in loops if l.in_fallback)} zones still "
          f"in fallback")

    # The bill.
    pricing = RevenueModel(base_fee_per_day=24.0,
                           energy_price_per_kwh=0.30,
                           comfort_penalty_per_degree_hour=1.5)
    total_energy = sum(z.zone.energy_used_kwh for z in zones)
    total_violation = sum(z.comfort.violation_degree_hours for z in zones)
    statement = pricing.statement(
        days=WINDOW_H / 24.0 * len(zones), energy_kwh=total_energy,
        violation_degree_hours=total_violation,
        worst_violation_c=worst,
    )
    print(f"12-hour bill for {len(zones)} zones: energy {total_energy:.0f} kWh"
          f" ({statement.energy_cost:.2f}), comfort penalty "
          f"{statement.comfort_penalty:.2f}, net {statement.net:.2f}")

    summaries = collect_energy(system.nodes.values(), system.sim.now)
    lifetime = mean([s.projected_lifetime_days for s in summaries])
    print(f"radio duty cycle {mean([s.duty_cycle for s in summaries]):.1%}, "
          f"projected battery life {lifetime / 365:.1f} years on 2xAA")


if __name__ == "__main__":
    main()
