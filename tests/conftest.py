"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.net.stack import NetworkStack, StackConfig
from repro.radio.medium import Medium
from repro.radio.propagation import UnitDiskModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def trace() -> TraceLog:
    return TraceLog(enabled=True)


def build_medium(
    sim: Simulator,
    trace: Optional[TraceLog] = None,
    radius_m: float = 25.0,
) -> Medium:
    """A unit-disk medium (deterministic links) for protocol tests."""
    return Medium(sim, UnitDiskModel(radius_m=radius_m),
                  trace if trace is not None else TraceLog(enabled=False))


def build_line_network(
    n: int,
    mac: str = "csma",
    spacing_m: float = 20.0,
    seed: int = 1,
    config: Optional[StackConfig] = None,
    radius_m: float = 25.0,
) -> Tuple[Simulator, TraceLog, List[NetworkStack]]:
    """A line of ``n`` stacks with the root at index 0, all started."""
    simulator = Simulator(seed=seed)
    log = TraceLog(enabled=True)
    medium = Medium(simulator, UnitDiskModel(radius_m=radius_m), log)
    stack_config = config if config is not None else StackConfig(mac=mac)
    stacks = [
        NetworkStack(
            simulator, medium, i, (i * spacing_m, 0.0),
            stack_config, is_root=(i == 0), trace=log,
        )
        for i in range(n)
    ]
    for stack in stacks:
        stack.start()
    return simulator, log, stacks


def build_grid_network(
    side: int,
    mac: str = "csma",
    spacing_m: float = 20.0,
    seed: int = 1,
    config: Optional[StackConfig] = None,
) -> Tuple[Simulator, TraceLog, List[NetworkStack]]:
    """A ``side x side`` grid of stacks, root at the corner, started."""
    simulator = Simulator(seed=seed)
    log = TraceLog(enabled=True)
    medium = Medium(simulator, UnitDiskModel(radius_m=25.0), log)
    stack_config = config if config is not None else StackConfig(mac=mac)
    stacks = []
    node_id = 0
    for y in range(side):
        for x in range(side):
            stacks.append(
                NetworkStack(
                    simulator, medium, node_id,
                    (x * spacing_m, y * spacing_m),
                    stack_config, is_root=(node_id == 0), trace=log,
                )
            )
            node_id += 1
    for stack in stacks:
        stack.start()
    return simulator, log, stacks
