"""RFC 6206 Trickle timer invariants."""

import pytest

from repro.net.rpl.trickle import TrickleTimer
from repro.sim.kernel import Simulator


def make_trickle(sim, imin=1.0, doublings=4, k=1, sink=None):
    fired = [] if sink is None else sink
    timer = TrickleTimer(sim, imin, doublings, k,
                         lambda: fired.append(sim.now))
    return timer, fired


class TestIntervalGrowth:
    def test_interval_doubles_up_to_imax(self, sim):
        timer, _ = make_trickle(sim, imin=1.0, doublings=3)
        timer.start()
        sim.run(until=0.01)
        observed = [timer.interval]
        # Sample interval after each boundary.
        for t in (1.5, 3.5, 7.5, 16.0, 40.0):
            sim.run(until=t)
            observed.append(timer.interval)
        assert max(observed) == 8.0  # imin * 2**3
        assert observed == sorted(observed)

    def test_transmission_within_second_half(self, sim):
        times = []
        timer = TrickleTimer(sim, 4.0, 0, 1, lambda: times.append(sim.now))
        timer.start()
        sim.run(until=4.0)
        assert len(times) == 1
        assert 2.0 <= times[0] <= 4.0

    def test_steady_state_rate_decays(self, sim):
        timer, fired = make_trickle(sim, imin=1.0, doublings=6, k=10)
        timer.start()
        sim.run(until=60.0)
        early = sum(1 for t in fired if t < 10.0)
        late = sum(1 for t in fired if t >= 50.0)
        assert early > late


class TestSuppression:
    def test_k_consistent_messages_suppress(self, sim):
        timer, fired = make_trickle(sim, imin=10.0, doublings=0, k=2)
        timer.start()
        # Two consistent receptions early in every interval: suppress all.
        def feed():
            timer.hear_consistent()
            timer.hear_consistent()
            sim.schedule(10.0, feed)

        sim.schedule(0.1, feed)
        sim.run(until=100.0)
        assert fired == []
        assert timer.suppressions > 0

    def test_below_k_does_not_suppress(self, sim):
        timer, fired = make_trickle(sim, imin=10.0, doublings=0, k=2)
        timer.start()
        sim.schedule(0.1, timer.hear_consistent)
        sim.run(until=10.0)
        assert len(fired) == 1


class TestReset:
    def test_reset_returns_to_imin(self, sim):
        timer, _ = make_trickle(sim, imin=1.0, doublings=5)
        timer.start()
        sim.run(until=20.0)
        assert timer.interval > 1.0
        timer.reset()
        assert timer.interval == 1.0

    def test_reset_at_imin_is_noop(self, sim):
        timer, fired = make_trickle(sim, imin=10.0, doublings=2)
        timer.start()
        sim.run(until=1.0)
        before = timer.resets
        timer.reset()
        # Counter increments but interval unchanged and no double-fire.
        assert timer.interval == 10.0
        assert timer.resets == before + 1
        sim.run(until=10.0)
        assert len(fired) == 1

    def test_inconsistency_resets(self, sim):
        timer, _ = make_trickle(sim, imin=1.0, doublings=5)
        timer.start()
        sim.run(until=20.0)
        timer.hear_inconsistent()
        assert timer.interval == 1.0

    def test_reset_speeds_up_transmissions(self, sim):
        timer, fired = make_trickle(sim, imin=1.0, doublings=6, k=10)
        timer.start()
        sim.run(until=60.0)
        quiet = sum(1 for t in fired if 50.0 <= t < 60.0)
        timer.reset()
        sim.run(until=70.0)
        burst = sum(1 for t in fired if 60.0 <= t < 70.0)
        assert burst > quiet


class TestLifecycle:
    def test_stop_halts_transmissions(self, sim):
        timer, fired = make_trickle(sim, imin=1.0, doublings=2)
        timer.start()
        sim.run(until=5.0)
        count = len(fired)
        timer.stop()
        sim.run(until=20.0)
        assert len(fired) == count

    def test_restart_after_stop(self, sim):
        timer, fired = make_trickle(sim, imin=1.0, doublings=2)
        timer.start()
        sim.run(until=3.0)
        timer.stop()
        timer.start()
        assert timer.interval == 1.0
        sim.run(until=6.0)
        assert len(fired) >= 2

    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            TrickleTimer(sim, 0.0, 3, 1, lambda: None)
        with pytest.raises(ValueError):
            TrickleTimer(sim, 1.0, -1, 1, lambda: None)
        with pytest.raises(ValueError):
            TrickleTimer(sim, 1.0, 3, 0, lambda: None)
