"""Property-based verification of Trickle invariants (RFC 6206)."""

from hypothesis import given, settings, strategies as st

from repro.net.rpl.trickle import TrickleTimer
from repro.sim.kernel import Simulator


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    imin=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    doublings=st.integers(min_value=0, max_value=8),
    run_s=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_interval_always_bounded(seed, imin, doublings, run_s):
    """I stays within [Imin, Imax] no matter how long it runs."""
    sim = Simulator(seed=seed)
    timer = TrickleTimer(sim, imin, doublings, 1, lambda: None)
    timer.start()
    imax = imin * (2 ** doublings)
    step = max(run_s / 20.0, 0.1)
    t = 0.0
    while t < run_s:
        t += step
        sim.run(until=t)
        assert imin - 1e-9 <= timer.interval <= imax + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    imin=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    reset_times=st.lists(
        st.floats(min_value=0.1, max_value=200.0, allow_nan=False),
        max_size=5,
    ),
)
@settings(max_examples=40, deadline=None)
def test_transmissions_in_second_half_of_interval(seed, imin, reset_times):
    """Every firing time t satisfies I/2 <= t within its interval, even
    under arbitrary external resets."""
    sim = Simulator(seed=seed)
    intervals = []
    firings = []

    timer = TrickleTimer(sim, imin, 4, 1, lambda: firings.append(sim.now))

    original_begin = timer._begin_interval

    def tracking_begin():
        intervals.append((sim.now, timer.interval))
        original_begin()

    timer._begin_interval = tracking_begin
    timer.start()
    for reset_at in reset_times:
        sim.schedule_at(max(reset_at, sim.now), timer.reset)
    sim.run(until=250.0)

    for fired_at in firings:
        # Find the interval this firing belongs to.
        owner = None
        for start, length in intervals:
            if start <= fired_at <= start + length + 1e-9:
                owner = (start, length)
        assert owner is not None
        start, length = owner
        assert fired_at - start >= length / 2.0 - 1e-9


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_saturated_listening_suppresses_everything(seed, k):
    """Hearing >= k consistent messages every interval suppresses all
    transmissions, forever."""
    sim = Simulator(seed=seed)
    fired = []
    timer = TrickleTimer(sim, 1.0, 4, k, lambda: fired.append(sim.now))
    timer.start()

    def saturate():
        for _ in range(k):
            timer.hear_consistent()
        sim.schedule(0.4, saturate)  # well under Imin/2

    sim.schedule(0.0, saturate)
    sim.run(until=60.0)
    assert fired == []
    assert timer.suppressions > 0
