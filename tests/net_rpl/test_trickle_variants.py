"""Pluggable Trickle adaptation variants: policy units and wiring.

The classic variant's byte-identity with the pre-refactor timer is
enforced by ``make diff-core``; these tests cover the adaptive policies
themselves, the config plumbing (``RplConfig`` / ``SystemConfig``), and
the jobs=1 vs jobs=N DIO-count determinism the taxonomy matrix relies
on.
"""

import pytest

from repro.core.system import IIoTSystem, SystemConfig
from repro.deployment.topology import grid_topology
from repro.net.rpl.dodag import RplConfig
from repro.net.rpl.trickle import (
    TRICKLE_VARIANTS,
    AdaptiveIminVariant,
    AdaptiveKVariant,
    TrickleTimer,
    TrickleVariant,
    make_trickle_variant,
)
from repro.net.stack import StackConfig
from repro.obs import MetricsSnapshot, Observability
from repro.parallel import TrialExecutor
from repro.sim.kernel import Simulator
from tests.conftest import build_line_network

VARIANTS = sorted(TRICKLE_VARIANTS)


class TestRegistry:
    def test_names_are_stable(self):
        assert VARIANTS == ["adaptive-imin", "adaptive-k", "classic"]

    @pytest.mark.parametrize("name", VARIANTS)
    def test_factory_builds_each_variant(self, name):
        variant = make_trickle_variant(name)
        assert variant.name == name
        assert isinstance(variant, TrickleVariant)

    def test_unknown_name_lists_the_choices(self):
        with pytest.raises(ValueError, match="adaptive-imin"):
            make_trickle_variant("qtrickle")

    def test_variant_binds_to_exactly_one_timer(self):
        sim = Simulator(seed=1)
        variant = make_trickle_variant("classic")
        TrickleTimer(sim, 1.0, 4, 1, lambda: None, variant=variant)
        with pytest.raises(ValueError, match="exactly one timer"):
            TrickleTimer(sim, 1.0, 4, 1, lambda: None, variant=variant)

    @pytest.mark.parametrize("ctor", [
        lambda: AdaptiveIminVariant(shrink=0.0),
        lambda: AdaptiveIminVariant(shrink=1.0),
        lambda: AdaptiveIminVariant(floor_factor=0.0),
        lambda: AdaptiveIminVariant(relax_after=0),
        lambda: AdaptiveKVariant(k_min=0),
        lambda: AdaptiveKVariant(k_min=3, k_max=2),
    ])
    def test_invalid_parameters_rejected(self, ctor):
        with pytest.raises(ValueError):
            ctor()


class TestAdaptiveImin:
    def make(self, sim, **kwargs):
        variant = AdaptiveIminVariant(**kwargs)
        timer = TrickleTimer(sim, 8.0, 4, 1, lambda: None, variant=variant)
        timer.start()
        return timer, variant

    def test_resets_shrink_the_effective_imin(self):
        sim = Simulator(seed=3)
        timer, variant = self.make(sim, shrink=0.5, floor_factor=0.25)
        assert variant.imin_eff == timer.imin
        sim.run(until=100.0)        # let I grow past imin
        timer.reset()
        assert variant.imin_eff == pytest.approx(4.0)
        assert timer.interval == pytest.approx(4.0)
        timer.reset()
        assert variant.imin_eff == pytest.approx(2.0)    # floor at 2.0
        timer.reset()
        assert variant.imin_eff == pytest.approx(2.0)

    def test_quiet_intervals_relax_back_toward_imin(self):
        sim = Simulator(seed=3)
        timer, variant = self.make(sim, shrink=0.5, relax_after=2)
        sim.run(until=100.0)
        timer.reset()
        timer.reset()
        shrunk = variant.imin_eff
        assert shrunk < timer.imin
        sim.run(until=sim.now + 300.0)      # many quiet intervals
        assert variant.imin_eff == timer.imin

    def test_reset_storm_converges_faster_than_classic(self):
        def resets_fired(variant_name):
            sim = Simulator(seed=9)
            fired = []
            timer = TrickleTimer(sim, 4.0, 6, 10,
                                 lambda: fired.append(sim.now),
                                 variant=make_trickle_variant(variant_name))
            timer.start()
            # An inconsistency storm: reset every 3 s for a minute.
            for i in range(1, 21):
                sim.schedule(3.0 * i, timer.reset)
            sim.run(until=90.0)
            return len(fired)

        # Shrinking I_min below the reset period lets transmissions
        # land between resets; classic I_min=4 > period=3 mostly starves.
        assert resets_fired("adaptive-imin") > resets_fired("classic")


class TestAdaptiveK:
    def make(self, sim, k=2, **kwargs):
        variant = AdaptiveKVariant(**kwargs)
        timer = TrickleTimer(sim, 10.0, 0, k, lambda: None, variant=variant)
        timer.start()
        return timer, variant

    def test_dense_neighborhood_lowers_k(self):
        sim = Simulator(seed=5)
        timer, variant = self.make(sim, k=2)
        assert variant.k_eff == 2

        def chatter():
            for _ in range(5):      # heard > k_eff every interval
                timer.hear_consistent()

        for i in range(4):
            sim.schedule(10.0 * i + 1.0, chatter)
        sim.run(until=45.0)
        assert variant.k_eff == variant.k_min == 1

    def test_sparse_neighborhood_raises_k(self):
        sim = Simulator(seed=5)
        timer, variant = self.make(sim, k=2)
        sim.run(until=200.0)        # hears nothing at all
        assert variant.k_eff == variant.k_max
        assert variant.k_max == max(2 * timer.k, timer.k + 1)

    def test_threshold_is_consulted_at_fire_time(self):
        sim = Simulator(seed=5)
        timer, variant = self.make(sim, k=2)
        variant.k_eff = 1
        timer.hear_consistent()     # c=1 >= k_eff=1 -> suppress
        sim.run(until=10.0)
        assert timer.suppressions == 1
        assert timer.transmissions == 0


class TestWiring:
    def test_rpl_config_selects_the_variant(self):
        sim, log, stacks = build_line_network(
            2, config=StackConfig(
                rpl=RplConfig(trickle_variant="adaptive-k")))
        for stack in stacks:
            assert stack.rpl.trickle.variant.name == "adaptive-k"

    def test_system_config_overrides_the_stack(self):
        config = SystemConfig(trickle_variant="adaptive-imin")
        system = IIoTSystem.build(grid_topology(2), config=config)
        assert config.stack.rpl.trickle_variant == "adaptive-imin"
        for node in system.nodes.values():
            assert node.stack.rpl.trickle.variant.name == "adaptive-imin"

    def test_system_config_rejects_unknown_variant_up_front(self):
        with pytest.raises(ValueError, match="unknown Trickle variant"):
            IIoTSystem.build(grid_topology(2),
                             config=SystemConfig(trickle_variant="nope"))


def _dio_trial(variant, seed):
    """Instrumented 3-node line under one Trickle variant; returns the
    registry snapshot (module-level for the process pool)."""
    sim, log, stacks = build_line_network(
        3, seed=seed,
        config=StackConfig(rpl=RplConfig(trickle_variant=variant)))
    obs = Observability(spans=False).attach(log)
    sim.run(until=600.0)
    return obs.registry.snapshot()


class TestDeterminism:
    """The satellite gate: identical DIO counts across jobs."""

    SEEDS = [21, 22, 23]

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_dio_counts_identical_across_jobs(self, variant, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")
        tasks = [(variant, seed) for seed in self.SEEDS]
        serial = MetricsSnapshot.merge(
            TrialExecutor(jobs=1).map(_dio_trial, tasks))
        parallel = MetricsSnapshot.merge(
            TrialExecutor(jobs=2).map(_dio_trial, tasks))
        assert serial.counter_total("rpl.trickle.tx") > 0
        assert serial == parallel

    def test_variants_actually_change_the_dio_schedule(self):
        # Under an inconsistency storm the adaptive-imin policy shrinks
        # its reset interval below the churn period, landing DIOs that
        # classic (I_min above the churn period) mostly cannot.
        def churn_dios(variant):
            sim, log, stacks = build_line_network(
                3, seed=21,
                config=StackConfig(rpl=RplConfig(trickle_variant=variant)))
            obs = Observability(spans=False).attach(log)
            sim.run(until=200.0)
            for i in range(1, 40):
                sim.schedule(200.0 + 3.0 * i, stacks[0].rpl.trickle.reset)
            sim.run(until=400.0)
            return obs.registry.snapshot().counter_total("rpl.trickle.tx")

        assert churn_dios("adaptive-imin") > churn_dios("classic")
