"""RNFD: CFRC lattice behaviour and end-to-end root-failure detection."""

import pytest

from repro.net.rpl.rnfd import Cfrc, RnfdConfig, RootState
from repro.net.stack import StackConfig
from tests.conftest import build_grid_network


class TestCfrc:
    def test_record_and_fraction(self):
        cfrc = Cfrc()
        assert cfrc.record(1, down=True)
        assert cfrc.record(2, down=False)
        assert cfrc.down_count == 1
        assert cfrc.sentinel_count == 2
        assert cfrc.down_fraction() == pytest.approx(0.5)

    def test_record_same_verdict_is_noop(self):
        cfrc = Cfrc()
        cfrc.record(1, down=True)
        assert not cfrc.record(1, down=True)

    def test_revoke_bumps_epoch(self):
        cfrc = Cfrc()
        cfrc.record(1, down=True)
        assert cfrc.record(1, down=False)
        assert cfrc.entries[1] == (2, False)

    def test_merge_takes_higher_epoch(self):
        a, b = Cfrc(), Cfrc()
        a.record(1, down=True)          # epoch 1
        b.record(1, down=True)          # epoch 1
        b.record(1, down=False)         # epoch 2
        assert a.merge(b)
        assert a.entries[1] == (2, False)

    def test_merge_is_idempotent(self):
        a, b = Cfrc(), Cfrc()
        b.record(1, down=True)
        assert a.merge(b)
        assert not a.merge(b)

    def test_merge_is_commutative_in_result(self):
        x, y = Cfrc(), Cfrc()
        x.record(1, down=True)
        y.record(2, down=True)
        left = x.copy()
        left.merge(y)
        right = y.copy()
        right.merge(x)
        assert left.entries == right.entries

    def test_empty_fraction_is_zero(self):
        assert Cfrc().down_fraction() == 0.0


def build_rnfd_grid(side=4, seed=20, **rnfd_kwargs):
    config = StackConfig(
        mac="csma",
        rnfd_enabled=True,
        rnfd=RnfdConfig(**rnfd_kwargs) if rnfd_kwargs else RnfdConfig(),
    )
    return build_grid_network(side, config=config, seed=seed)


class TestDetection:
    def test_sentinels_are_root_neighbors(self):
        sim, trace, stacks = build_rnfd_grid()
        sim.run(until=200.0)
        sentinels = [s.node_id for s in stacks if s.rnfd and s.rnfd.is_sentinel]
        # Corner root at 20 m grid spacing, 25 m disk: exactly 1 and 4.
        assert sorted(sentinels) == [1, 4]

    def test_healthy_root_raises_no_verdict(self):
        sim, trace, stacks = build_rnfd_grid()
        sim.run(until=600.0)
        assert all(
            s.rnfd.root_state is RootState.ALIVE for s in stacks[1:]
        )

    def test_root_death_detected_network_wide(self):
        sim, trace, stacks = build_rnfd_grid()
        sim.run(until=300.0)
        kill_time = sim.now
        stacks[0].fail()
        sim.run(until=kill_time + 300.0)
        detections = [
            s.rnfd.detection_time for s in stacks[1:]
            if s.rnfd.detection_time is not None
        ]
        assert len(detections) == len(stacks) - 1
        # Detection latency is probe-period scale, far below the
        # 1500 s staleness baseline.
        worst = max(detections) - kill_time
        assert worst < 120.0

    def test_detection_detaches_routers(self):
        from repro.net.rpl.dodag import RplState

        sim, trace, stacks = build_rnfd_grid()
        sim.run(until=300.0)
        stacks[0].fail()
        sim.run(until=sim.now + 300.0)
        assert all(
            s.rpl.state is not RplState.JOINED or not s.rpl.grounded
            for s in stacks[1:]
        )

    def test_transient_probe_failures_below_threshold_recover(self):
        sim, trace, stacks = build_rnfd_grid(fail_threshold=5)
        sim.run(until=300.0)
        # Briefly disable then restore the root radio: a couple of lost
        # probes must not convict it.
        stacks[0].radio.enabled = False
        sim.schedule(15.0, lambda: setattr(stacks[0].radio, "enabled", True))
        sim.run(until=sim.now + 400.0)
        assert all(
            s.rnfd.root_state is not RootState.GLOBALLY_DOWN
            for s in stacks[1:]
        )

    def test_quorum_prevents_single_sentinel_verdict(self):
        # With quorum over 0.5 and two sentinels, one sentinel's bad link
        # cannot convict the root.
        sim, trace, stacks = build_rnfd_grid(quorum=0.75)
        sim.run(until=300.0)
        # Cut only sentinel 1's link to the root.
        stacks[0].medium.set_link_filter(
            lambda a, b: {a, b} == {0, 1}
        )
        sim.run(until=sim.now + 400.0)
        assert all(
            s.rnfd.root_state is not RootState.GLOBALLY_DOWN
            for s in stacks[1:]
        )

    def test_reset_clears_state(self):
        sim, trace, stacks = build_rnfd_grid()
        sim.run(until=300.0)
        stacks[0].fail()
        sim.run(until=sim.now + 300.0)
        agent = stacks[1].rnfd
        agent.reset()
        assert agent.root_state is RootState.ALIVE
        assert agent.detection_time is None
        assert agent.cfrc.sentinel_count == 0
