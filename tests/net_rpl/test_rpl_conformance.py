"""Finer-grained RPL conformance behaviours."""

import pytest

from repro.net.rpl.dodag import RplConfig, RplState
from repro.net.rpl.messages import DaoMessage, DioMessage, DisMessage
from repro.net.rpl.objective import INFINITE_RANK, ROOT_RANK
from repro.net.stack import StackConfig
from tests.conftest import build_line_network


class TestDisBehaviour:
    def test_detached_node_solicits_with_dis(self):
        # A node booted in isolation keeps sending DIS.
        sim, trace, stacks = build_line_network(1, seed=270)
        lone = stacks[0]
        # Rebuild as a non-root: single non-root node, no DODAG around.
        from repro.net.stack import NetworkStack

        orphan = NetworkStack(sim, lone.medium, 99, (100.0, 0.0),
                              StackConfig(mac="csma"), trace=trace)
        orphan.start()
        sim.run(until=120.0)
        assert orphan.rpl.state is RplState.DETACHED
        dis_count = sum(
            1 for r in trace.query("radio.tx", node=99)
        )
        assert dis_count >= 3  # periodic solicitation kept running

    def test_dis_triggers_neighbor_dio_burst(self):
        sim, trace, stacks = build_line_network(3, seed=271)
        sim.run(until=300.0)  # Trickle slowed down by now
        dio_before = stacks[1].rpl.dio_sent
        stacks[1].rpl.handle_dis(src=99)
        sim.run(until=sim.now + 5.0)
        assert stacks[1].rpl.dio_sent > dio_before


class TestVersioning:
    def test_old_version_dio_does_not_regress(self):
        sim, trace, stacks = build_line_network(3, seed=272)
        sim.run(until=120.0)
        stacks[0].rpl.trigger_global_repair()  # version 1
        sim.run(until=400.0)
        node = stacks[2].rpl
        assert node.version == 1
        # A stale version-0 DIO must not drag the node backwards.
        node.handle_dio(7, DioMessage(dodag_id=0, version=0, rank=ROOT_RANK))
        assert node.version == 1
        assert node.preferred_parent != 7

    def test_dao_path_seq_prevents_stale_overwrite(self):
        sim, trace, stacks = build_line_network(2, seed=273)
        sim.run(until=120.0)
        root = stacks[0].rpl
        root.handle_dao(DaoMessage(node=5, parent=3, path_seq=10))
        root.handle_dao(DaoMessage(node=5, parent=9, path_seq=4))  # stale
        assert root.dao_table[5][0] == 3
        root.handle_dao(DaoMessage(node=5, parent=9, path_seq=11))
        assert root.dao_table[5][0] == 9


class TestLoopGuards:
    def test_node_never_picks_higher_ranked_parent(self):
        sim, trace, stacks = build_line_network(4, seed=274)
        sim.run(until=200.0)
        node = stacks[2].rpl
        # Offer a "parent" that advertises a worse rank than ours.
        node.handle_dio(99, DioMessage(dodag_id=0, version=0,
                                       rank=node.rank + 512))
        assert node.preferred_parent != 99

    def test_poisoned_neighbor_not_selected(self):
        sim, trace, stacks = build_line_network(3, seed=275)
        sim.run(until=120.0)
        node = stacks[2].rpl
        node.handle_dio(99, DioMessage(dodag_id=0, version=0,
                                       rank=INFINITE_RANK))
        assert node.preferred_parent != 99

    def test_blacklist_expires(self):
        config = StackConfig(mac="csma",
                             rpl=RplConfig(blacklist_s=30.0,
                                           parent_fail_threshold=1))
        sim, trace, stacks = build_line_network(3, config=config, seed=276)
        sim.run(until=120.0)
        node = stacks[2].rpl
        parent = node.preferred_parent
        node.link_feedback(parent, False)  # threshold 1: blacklist now
        entry = node.neighbors.get(parent)
        assert entry.blacklisted_until > sim.now
        sim.run(until=sim.now + 120.0)
        # The only viable parent returns after the blacklist expires.
        assert node.state is RplState.JOINED
        assert node.preferred_parent == parent


class TestControlMessageSizes:
    def test_dio_options_add_bytes(self):
        plain = DioMessage(dodag_id=0, version=0, rank=512)
        rich = DioMessage(dodag_id=0, version=0, rank=512,
                          options={"cfrc": object()})
        assert rich.size_bytes > plain.size_bytes

    def test_message_sizes_are_sane(self):
        assert DisMessage().size_bytes < DioMessage(
            dodag_id=0, version=0, rank=0).size_bytes
        assert DaoMessage(node=1, parent=0, path_seq=1).size_bytes <= 24
