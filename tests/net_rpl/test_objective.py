"""Objective function rank arithmetic and hysteresis."""

from repro.net.rpl.objective import (
    INFINITE_RANK,
    MIN_HOP_RANK_INCREASE,
    Mrhof,
    Of0,
    ROOT_RANK,
)


class TestMrhof:
    def test_rank_grows_with_etx(self):
        of = Mrhof()
        perfect = of.rank_through(ROOT_RANK, 1.0)
        lossy = of.rank_through(ROOT_RANK, 2.0)
        assert perfect == ROOT_RANK + MIN_HOP_RANK_INCREASE
        assert lossy == ROOT_RANK + 2 * MIN_HOP_RANK_INCREASE

    def test_minimum_one_hop_increase(self):
        of = Mrhof()
        # Even an implausibly good ETX cannot shrink the increase below
        # one MinHopRankIncrease (RFC 6550 rank monotonicity).
        assert of.rank_through(ROOT_RANK, 0.1) >= ROOT_RANK + MIN_HOP_RANK_INCREASE

    def test_terrible_link_is_infinite(self):
        of = Mrhof(max_link_etx=8.0)
        assert of.rank_through(ROOT_RANK, 9.0) == INFINITE_RANK

    def test_rank_clamps_at_infinite(self):
        of = Mrhof()
        assert of.rank_through(INFINITE_RANK - 10, 4.0) == INFINITE_RANK

    def test_acceptable_rejects_infinite_parents(self):
        of = Mrhof()
        assert not of.acceptable(INFINITE_RANK, 1.0)
        assert of.acceptable(ROOT_RANK, 1.0)

    def test_hysteresis_blocks_marginal_switch(self):
        of = Mrhof()
        current = 1024
        slightly_better = current - of.parent_switch_threshold
        assert not of.should_switch(current, slightly_better)
        clearly_better = current - of.parent_switch_threshold - 1
        assert of.should_switch(current, clearly_better)


class TestOf0:
    def test_rank_is_hop_count(self):
        of = Of0()
        assert of.rank_through(ROOT_RANK, 1.0) == ROOT_RANK + MIN_HOP_RANK_INCREASE
        # OF0 ignores link quality entirely: the ablation hazard.
        assert of.rank_through(ROOT_RANK, 7.9) == of.rank_through(ROOT_RANK, 1.0)

    def test_of0_accepts_lossy_links(self):
        of = Of0()
        assert of.acceptable(ROOT_RANK, 20.0)
