"""DODAG formation, repair, and partition behaviour (integration-level,
driven through full network stacks on a simulated medium)."""

import pytest

from repro.net.rpl.dodag import RplConfig, RplState
from repro.net.rpl.objective import INFINITE_RANK, ROOT_RANK
from repro.net.stack import StackConfig
from tests.conftest import build_grid_network, build_line_network


class TestFormation:
    def test_line_converges_to_chain(self):
        sim, trace, stacks = build_line_network(6, mac="csma", seed=2)
        sim.run(until=120.0)
        assert all(s.rpl.state is RplState.JOINED for s in stacks[1:])
        assert [s.rpl.preferred_parent for s in stacks] == [None, 0, 1, 2, 3, 4]
        assert [s.rpl.rank for s in stacks] == [
            ROOT_RANK * (i + 1) for i in range(6)
        ]

    def test_grid_all_join(self):
        sim, trace, stacks = build_grid_network(4, seed=3)
        sim.run(until=180.0)
        joined = sum(1 for s in stacks[1:] if s.rpl.state is RplState.JOINED)
        assert joined == 15

    def test_ranks_decrease_toward_root(self):
        sim, trace, stacks = build_grid_network(4, seed=3)
        sim.run(until=180.0)
        for stack in stacks[1:]:
            parent = stacks[stack.rpl.preferred_parent]
            assert parent.rpl.rank < stack.rpl.rank

    def test_dao_table_covers_network(self):
        sim, trace, stacks = build_grid_network(4, seed=3)
        sim.run(until=300.0)
        assert len(stacks[0].rpl.dao_table) == 15

    def test_root_source_routes(self):
        sim, trace, stacks = build_line_network(5, seed=4)
        sim.run(until=300.0)
        route = stacks[0].rpl.route_to(4)
        assert route == [1, 2, 3, 4]

    def test_route_to_unknown_is_none(self):
        sim, trace, stacks = build_line_network(3, seed=4)
        sim.run(until=120.0)
        assert stacks[0].rpl.route_to(77) is None

    def test_late_joiner_is_absorbed(self):
        from repro.net.stack import NetworkStack

        sim, trace, stacks = build_line_network(4, seed=5)
        sim.run(until=120.0)
        late = NetworkStack(sim, stacks[0].medium, 99, (4 * 20.0, 0.0),
                            StackConfig(mac="csma"), trace=trace)
        late.start()
        sim.run(until=240.0)
        assert late.rpl.state is RplState.JOINED
        assert late.rpl.preferred_parent == 3


class TestRepair:
    def test_parent_death_triggers_local_repair(self):
        sim, trace, stacks = build_grid_network(3, seed=6)
        sim.run(until=120.0)
        # Node 4 (center) may route via 1 or 3; kill its parent.
        victim = stacks[4]
        parent = victim.rpl.preferred_parent
        stacks[parent].fail()
        # Drive traffic so MAC feedback exposes the death.
        for i in range(20):
            sim.schedule(sim.now + 5.0 * i,
                         (lambda: victim.send_datagram(0, 7, "x", 10)))
        sim.run(until=sim.now + 300.0)
        assert victim.rpl.state is RplState.JOINED
        assert victim.rpl.preferred_parent != parent

    def test_global_repair_bumps_version_and_reconverges(self):
        sim, trace, stacks = build_line_network(4, seed=7)
        sim.run(until=120.0)
        stacks[0].rpl.trigger_global_repair()
        assert stacks[0].rpl.version == 1
        sim.run(until=600.0)
        assert all(s.rpl.state is RplState.JOINED for s in stacks[1:])
        assert all(s.rpl.version == 1 for s in stacks[1:])

    def test_only_root_may_trigger_global_repair(self):
        sim, trace, stacks = build_line_network(3, seed=7)
        with pytest.raises(RuntimeError):
            stacks[1].rpl.trigger_global_repair()

    def test_detached_node_poisons(self):
        sim, trace, stacks = build_line_network(3, seed=8)
        sim.run(until=120.0)
        # Cut everything off from node 2 by killing node 1 (its parent).
        stacks[1].fail()
        for i in range(30):
            sim.schedule(sim.now + 5.0 * i,
                         (lambda: stacks[2].send_datagram(0, 7, "x", 10)))
        sim.run(until=sim.now + 400.0)
        assert stacks[2].rpl.state is RplState.DETACHED
        assert stacks[2].rpl.rank == INFINITE_RANK
        assert trace.count("rpl.poison") >= 1

    def test_crashed_node_rejoins_after_recovery(self):
        sim, trace, stacks = build_line_network(4, seed=9)
        sim.run(until=120.0)
        stacks[2].fail()
        sim.run(until=240.0)
        stacks[2].recover()
        sim.run(until=500.0)
        assert stacks[2].rpl.state is RplState.JOINED


class TestStaleness:
    def test_silent_parent_detected_by_staleness(self):
        config = StackConfig(
            mac="csma",
            rpl=RplConfig(staleness_timeout_s=120.0,
                          staleness_check_period_s=10.0),
        )
        sim, trace, stacks = build_line_network(3, config=config, seed=10)
        sim.run(until=60.0)
        stacks[1].fail()
        # No data traffic: only the staleness path can notice.
        sim.run(until=400.0)
        assert stacks[2].rpl.state is RplState.DETACHED


class TestFloating:
    def test_detached_group_forms_floating_dodag(self):
        config = StackConfig(
            mac="csma",
            rpl=RplConfig(float_delay_s=60.0),
        )
        sim, trace, stacks = build_line_network(5, config=config, seed=11)
        sim.run(until=120.0)
        stacks[1].fail()  # severs 2,3,4 from the root
        for i in range(30):
            sim.schedule(sim.now + 5.0 * i,
                         (lambda: stacks[2].send_datagram(0, 7, "x", 10)))
        sim.run(until=sim.now + 600.0)
        states = {s.rpl.state for s in stacks[2:]}
        assert RplState.FLOATING_ROOT in states
        floaters = [s for s in stacks[2:] if s.rpl.state is RplState.JOINED]
        assert all(not s.rpl.grounded for s in floaters)

    def test_float_dissolves_when_grounded_returns(self):
        config = StackConfig(
            mac="csma",
            rpl=RplConfig(float_delay_s=60.0),
        )
        sim, trace, stacks = build_line_network(5, config=config, seed=12)
        sim.run(until=120.0)
        stacks[1].fail()
        for i in range(30):
            sim.schedule(sim.now + 5.0 * i,
                         (lambda: stacks[2].send_datagram(0, 7, "x", 10)))
        sim.run(until=sim.now + 400.0)
        stacks[1].recover()
        sim.run(until=sim.now + 900.0)
        assert all(s.rpl.state is RplState.JOINED for s in stacks[1:])
        assert all(s.rpl.grounded for s in stacks[1:])
