"""Neighbor tables and ETX estimation."""

import pytest

from repro.net.rpl.messages import DioMessage
from repro.net.rpl.neighbors import LinkEstimator, NeighborTable


class TestLinkEstimator:
    def test_successes_push_probability_up(self):
        estimator = LinkEstimator(probability=0.5)
        for _ in range(20):
            estimator.update(True)
        assert estimator.probability > 0.9
        assert estimator.etx < 1.2

    def test_failures_push_etx_up(self):
        estimator = LinkEstimator(probability=0.9)
        for _ in range(20):
            estimator.update(False)
        assert estimator.etx > 8.0

    def test_etx_clamped_at_16(self):
        estimator = LinkEstimator(probability=0.001)
        assert estimator.etx == 16.0

    def test_perfect_link_etx_is_one(self):
        estimator = LinkEstimator(probability=1.0)
        assert estimator.etx == pytest.approx(1.0)


class TestNeighborTable:
    def _dio(self, rank=512, version=1):
        return DioMessage(dodag_id=0, version=version, rank=rank)

    def test_get_or_create_and_observe(self):
        table = NeighborTable()
        entry = table.get_or_create(5)
        entry.observe_dio(self._dio(rank=768), now=10.0)
        assert table.get(5).rank == 768
        assert table.get(5).last_dio_time == 10.0
        assert table.get(5).dio_count == 1

    def test_capacity_evicts_stalest(self):
        table = NeighborTable(capacity=3)
        for node, time in ((1, 10.0), (2, 5.0), (3, 20.0)):
            table.get_or_create(node).observe_dio(self._dio(), now=time)
        table.get_or_create(4).observe_dio(self._dio(), now=30.0)
        assert len(table) == 3
        assert 2 not in table  # stalest was evicted
        assert 4 in table

    def test_blacklist_excludes_from_candidates(self):
        table = NeighborTable()
        table.get_or_create(1).observe_dio(self._dio(), now=0.0)
        table.get_or_create(2).observe_dio(self._dio(), now=0.0)
        table.blacklist(1, until=100.0)
        candidates = {e.node_id for e in table.candidates(now=50.0)}
        assert candidates == {2}
        candidates_later = {e.node_id for e in table.candidates(now=150.0)}
        assert candidates_later == {1, 2}

    def test_remove(self):
        table = NeighborTable()
        table.get_or_create(1)
        table.remove(1)
        assert 1 not in table
        table.remove(99)  # idempotent

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            NeighborTable(capacity=0)
