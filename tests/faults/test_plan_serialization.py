"""FaultPlan JSON serialization — the injection script rides the bundle."""

import json

import pytest

from repro.faults.plan import (BORDER_ROUTER, FaultPlan, SensorClause,
                               _clause_from_jsonable, _clause_to_jsonable)
from repro.devices.sensors import SensorFault


def full_plan():
    return (FaultPlan()
            .crash(at_s=30.0, node=5, recover_after_s=60.0)
            .kill_border_router(at_s=40.0)
            .partition(at_s=100.0, cut_x=45.0, heal_after_s=300.0)
            .flap_link(at_s=200.0, a=1, b=2, down_s=5.0, cycles=3, up_s=2.0)
            .sensor_fault(at_s=300.0, node=7, sensor="temperature",
                          mode=SensorFault.DRIFT, clear_after_s=120.0)
            .interference(at_s=400.0, duration_s=60.0, position=(12.0, 8.0),
                          wifi_channel=11, duty_cycle=0.5)
            .random_crashes(at_s=500.0, duration_s=600.0, mtbf_s=120.0,
                            mttr_s=30.0, spare_root=False))


class TestClauseRoundtrip:
    def test_every_kind_roundtrips(self):
        for clause in full_plan().clauses:
            payload = _clause_to_jsonable(clause)
            assert payload["kind"] == clause.kind
            assert _clause_from_jsonable(payload) == clause

    def test_payloads_are_json_safe(self):
        for clause in full_plan().clauses:
            restored = json.loads(json.dumps(_clause_to_jsonable(clause)))
            assert _clause_from_jsonable(restored) == clause

    def test_enum_and_tuple_fields_lowered(self):
        plan = full_plan()
        sensor = _clause_to_jsonable(plan.clauses[4])
        assert sensor["mode"] == "drift"  # string, not SensorFault
        interference = _clause_to_jsonable(plan.clauses[5])
        assert interference["position"] == [12.0, 8.0]
        restored = _clause_from_jsonable(interference)
        assert restored.position == (12.0, 8.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault clause"):
            _clause_from_jsonable({"kind": "meteor_strike", "at_s": 1.0})


class TestPlanRoundtrip:
    def test_plan_roundtrips_in_order(self):
        plan = full_plan()
        payload = plan.to_jsonable()
        assert payload["format"] == "repro.faultplan/1"
        assert [c["kind"] for c in payload["clauses"]] == [
            "crash", "crash", "partition", "link_flap", "sensor",
            "interference", "random_crashes"]
        restored = FaultPlan.from_jsonable(json.loads(json.dumps(payload)))
        assert restored.clauses == plan.clauses

    def test_border_router_sentinel_survives(self):
        plan = FaultPlan().kill_border_router(at_s=10.0)
        restored = FaultPlan.from_jsonable(plan.to_jsonable())
        assert restored.clauses[0].node == BORDER_ROUTER

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_jsonable({"format": "repro.faultplan/999",
                                     "clauses": []})


class TestInstallRegistersPlan:
    def _system(self):
        from repro.core.system import IIoTSystem, SystemConfig
        from repro.deployment.topology import grid_topology

        system = IIoTSystem.build(
            grid_topology(2), config=SystemConfig(observability=True), seed=3)
        system.start()
        return system

    def test_install_records_plan_on_trace(self):
        system = self._system()
        plan = FaultPlan().crash(at_s=50.0, node=1)
        plan.install(system)
        assert system.trace.fault_plan is not None
        assert system.trace.fault_plan.clauses == plan.clauses

    def test_installs_accumulate(self):
        system = self._system()
        FaultPlan().crash(at_s=50.0, node=1).install(system)
        FaultPlan().partition(at_s=80.0, cut_x=10.0).install(system)
        kinds = [c.kind for c in system.trace.fault_plan.clauses]
        assert kinds == ["crash", "partition"]

    def test_registered_plan_is_a_copy_of_clauses(self):
        # Mutating the original plan after install must not rewrite the
        # record of what was actually injected.
        system = self._system()
        plan = FaultPlan().crash(at_s=50.0, node=1)
        plan.install(system)
        plan.partition(at_s=90.0, cut_x=5.0)
        assert [c.kind for c in system.trace.fault_plan.clauses] == ["crash"]
