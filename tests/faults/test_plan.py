"""The declarative fault-plan engine: builders, windows, compilation
onto the live fault primitives, observability surface, determinism.

``_plan_trial`` is module-level because the jobs=1 vs jobs=N snapshot
identity check moves work through pickle (same contract as
tests/obs/test_parallel_snapshots.py).
"""

import math

import pytest

from repro.core.system import IIoTSystem, SystemConfig
from repro.deployment.topology import grid_topology
from repro.devices.phenomena import UniformField
from repro.devices.sensors import SensorFault
from repro.faults.plan import (
    BORDER_ROUTER,
    CrashClause,
    FaultPlan,
    InterferenceClause,
    LinkFlapClause,
    PartitionClause,
    RandomCrashesClause,
    SensorClause,
)
from repro.obs import MetricsSnapshot
from repro.parallel import TrialExecutor


# ----------------------------------------------------------------------
# declarative layer (no simulator needed)
# ----------------------------------------------------------------------
class TestPlanBuilder:
    def test_builders_chain_and_append_in_order(self):
        plan = (FaultPlan()
                .crash(at_s=10.0, node=5, recover_after_s=20.0)
                .kill_border_router(at_s=40.0)
                .partition(at_s=50.0, cut_x=30.0, heal_after_s=25.0)
                .flap_link(at_s=80.0, a=1, b=2, down_s=5.0, cycles=3,
                           up_s=5.0)
                .sensor_fault(at_s=100.0, node=4, sensor="temp",
                              mode=SensorFault.DRIFT, clear_after_s=30.0)
                .interference(at_s=140.0, duration_s=60.0,
                              position=(20.0, 20.0))
                .random_crashes(at_s=210.0, duration_s=300.0))
        assert len(plan) == 7
        kinds = [clause.kind for clause in plan.clauses]
        assert kinds == ["crash", "crash", "partition", "link_flap",
                         "sensor", "interference", "random_crashes"]
        assert plan.clauses[1].node == BORDER_ROUTER

    def test_windows_cover_each_clause(self):
        plan = (FaultPlan()
                .crash(at_s=10.0, node=5, recover_after_s=20.0)
                .partition(at_s=50.0, cut_x=30.0, heal_after_s=25.0)
                .flap_link(at_s=80.0, a=1, b=2, down_s=5.0, cycles=3,
                           up_s=5.0)
                .interference(at_s=140.0, duration_s=60.0,
                              position=(0.0, 0.0)))
        assert plan.windows() == [
            (10.0, 30.0),
            (50.0, 75.0),
            (80.0, 105.0),  # 3 cycles of (5 down + 5 up), minus final up
            (140.0, 200.0),
        ]

    def test_open_ended_clauses_have_infinite_windows(self):
        plan = (FaultPlan()
                .crash(at_s=10.0, node=5)
                .partition(at_s=20.0, cut_x=30.0)
                .sensor_fault(at_s=30.0, node=4, sensor="temp"))
        assert all(end == math.inf for _, end in plan.windows())

    def test_extend_composes_plans(self):
        base = FaultPlan().crash(at_s=10.0, node=1)
        extra = FaultPlan().partition(at_s=20.0, cut_x=30.0)
        combined = base.extend(extra)
        assert combined is base
        assert [c.kind for c in combined.clauses] == ["crash", "partition"]

    def test_declare_windows_feeds_every_clause(self):
        class Recorder:
            def __init__(self):
                self.windows = []

            def declare_fault_window(self, start, end, grace_s=0.0):
                self.windows.append((start, end, grace_s))

        plan = (FaultPlan()
                .crash(at_s=10.0, node=5, recover_after_s=20.0)
                .partition(at_s=50.0, cut_x=30.0))
        recorder = Recorder()
        plan.declare_windows(recorder, grace_s=60.0)
        assert recorder.windows == [(10.0, 30.0, 60.0),
                                    (50.0, math.inf, 60.0)]

    def test_validate_rejects_negative_start(self):
        with pytest.raises(ValueError):
            FaultPlan().crash(at_s=-1.0, node=2).validate()

    def test_validate_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            FaultPlan().crash(at_s=10.0, node=2,
                              recover_after_s=-20.0).validate()


# ----------------------------------------------------------------------
# compiled runtime on a live system
# ----------------------------------------------------------------------
def build_system(seed=31, observability=True):
    system = IIoTSystem.build(
        grid_topology(3),
        config=SystemConfig(observability=observability),
        seed=seed,
    )
    system.add_field_sensors("temp", UniformField(20.0))
    system.start()
    system.run(240.0)
    assert system.converged()
    return system


class TestRuntimeEffects:
    def test_install_rejects_clauses_in_the_past(self):
        system = build_system()
        plan = FaultPlan().crash(at_s=10.0, node=5)  # now is 240
        with pytest.raises(ValueError, match="past"):
            plan.install(system)

    def test_crash_clause_crashes_and_recovers(self):
        system = build_system()
        start = system.sim.now
        plan = FaultPlan().crash(at_s=start + 60.0, node=5,
                                 recover_after_s=120.0)
        runtime = plan.install(system)
        system.run(120.0)
        assert not system.nodes[5].alive
        assert runtime.active_clauses == 1
        system.run(120.0)
        assert system.nodes[5].alive
        assert runtime.active_clauses == 0
        assert [f.kind for f in runtime.injected] == ["crash", "recover"]

    def test_border_router_sentinel_resolves_to_root(self):
        system = build_system()
        plan = FaultPlan().kill_border_router(at_s=system.sim.now + 30.0,
                                              recover_after_s=60.0)
        plan.install(system)
        system.run(60.0)
        assert not system.root.alive
        system.run(90.0)
        assert system.root.alive

    def test_partition_clause_applies_and_heals(self):
        system = build_system()
        start = system.sim.now
        plan = FaultPlan().partition(at_s=start + 30.0, cut_x=30.0,
                                     heal_after_s=90.0)
        runtime = plan.install(system)
        system.run(60.0)
        sides = runtime.partitions.sides
        assert sides is not None
        assert {sides[nid] for nid in system.nodes} == {0, 1}
        system.run(90.0)
        assert runtime.partitions.sides is None

    def test_link_flap_blocks_then_restores_the_link(self):
        system = build_system()
        start = system.sim.now
        plan = FaultPlan().flap_link(at_s=start + 30.0, a=0, b=1,
                                     down_s=20.0, cycles=2, up_s=20.0)
        runtime = plan.install(system)
        system.run(40.0)   # inside cycle 1 down
        assert runtime.partitions.blocked_links
        system.run(20.0)   # inside cycle 1 up
        assert not runtime.partitions.blocked_links
        system.run(20.0)   # inside cycle 2 down
        assert runtime.partitions.blocked_links
        system.run(40.0)   # past the window
        assert not runtime.partitions.blocked_links
        assert runtime.active_clauses == 0

    def test_sensor_clause_faults_and_clears(self):
        system = build_system()
        start = system.sim.now
        plan = FaultPlan().sensor_fault(at_s=start + 30.0, node=4,
                                        sensor="temp",
                                        mode=SensorFault.STUCK,
                                        clear_after_s=60.0)
        plan.install(system)
        system.run(60.0)
        assert system.nodes[4].sensors["temp"].fault is SensorFault.STUCK
        system.run(60.0)
        assert system.nodes[4].sensors["temp"].fault is SensorFault.NONE

    def test_random_crashes_window_is_bounded(self):
        system = build_system()
        start = system.sim.now
        # MTBF short enough that several nodes are down mid-window.
        plan = FaultPlan().random_crashes(at_s=start + 30.0,
                                          duration_s=600.0,
                                          mtbf_s=300.0, mttr_s=10_000.0)
        runtime = plan.install(system)
        system.run(620.0)
        (process,) = runtime.failure_processes
        assert process.down_node_ids()  # disturbance actually happened
        system.run(60.0)  # past the window end
        assert not process.down_node_ids()
        assert all(node.alive for node in system.nodes.values())
        assert runtime.active_clauses == 0

    def test_interference_clause_starts_and_stops_the_jammer(self):
        system = build_system()
        start = system.sim.now
        plan = FaultPlan().interference(at_s=start + 30.0, duration_s=60.0,
                                        position=(20.0, 20.0))
        runtime = plan.install(system)
        system.run(60.0)
        (interferer,) = runtime.interferers
        assert interferer._running
        system.run(60.0)
        assert not interferer._running
        assert runtime.active_clauses == 0


class TestObservabilitySurface:
    def _run_full_plan(self, seed=33):
        system = build_system(seed=seed)
        start = system.sim.now
        plan = (FaultPlan()
                .crash(at_s=start + 30.0, node=5, recover_after_s=60.0)
                .partition(at_s=start + 120.0, cut_x=30.0, heal_after_s=60.0)
                .flap_link(at_s=start + 200.0, a=0, b=1, down_s=10.0,
                           cycles=2, up_s=10.0)
                .sensor_fault(at_s=start + 260.0, node=4, sensor="temp",
                              clear_after_s=30.0)
                .interference(at_s=start + 300.0, duration_s=60.0,
                              position=(20.0, 20.0)))
        runtime = plan.install(system)
        system.run(420.0)
        return system, runtime

    def test_every_clause_kind_emits_a_fault_span(self):
        system, _ = self._run_full_plan()
        categories = {span.category
                      for span in system.obs.spans.spans.values()
                      if span.category.startswith("fault.")}
        assert categories == {"fault.crash", "fault.partition",
                              "fault.link_flap", "fault.sensor",
                              "fault.interference"}

    def test_fault_spans_cover_their_windows_and_close(self):
        system, _ = self._run_full_plan()
        fault_spans = [span for span in system.obs.spans.spans.values()
                       if span.category.startswith("fault.")]
        assert len(fault_spans) == 5
        for span in fault_spans:
            assert span.end is not None
            assert span.end > span.start

    def test_fault_active_gauge_returns_to_zero(self):
        system, runtime = self._run_full_plan()
        assert runtime.active_clauses == 0
        assert system.obs.registry.gauge("fault.active").value == 0

    def test_fault_injected_counters_label_each_kind(self):
        system, _ = self._run_full_plan()
        registry = system.obs.registry
        assert registry.counter("fault.injected", kind="crash",
                                node=5).value == 1
        assert registry.counter("fault.injected", kind="recover",
                                node=5).value == 1
        assert registry.counter("fault.injected",
                                kind="interference").value == 1
        assert registry.total("fault.injected") >= 5

    def test_plan_without_observability_runs_silently(self):
        system = build_system(observability=False)
        start = system.sim.now
        plan = (FaultPlan()
                .crash(at_s=start + 30.0, node=5, recover_after_s=30.0)
                .partition(at_s=start + 90.0, cut_x=30.0, heal_after_s=30.0))
        runtime = plan.install(system)
        system.run(180.0)
        assert system.obs is None
        assert runtime.active_clauses == 0
        assert [f.kind for f in runtime.injected] == ["crash", "recover"]


# ----------------------------------------------------------------------
# determinism: the plan is a pure function of the seed
# ----------------------------------------------------------------------
SEEDS = [11, 12, 13, 14]


def _plan_trial(seed):
    """One fully loaded plan run; returns the metrics snapshot."""
    system = build_system(seed=seed)
    start = system.sim.now
    plan = (FaultPlan()
            .crash(at_s=start + 30.0, node=5, recover_after_s=60.0)
            .partition(at_s=start + 120.0, cut_x=30.0, heal_after_s=60.0)
            .sensor_fault(at_s=start + 200.0, node=4, sensor="temp",
                          clear_after_s=30.0)
            .interference(at_s=start + 240.0, duration_s=60.0,
                          position=(20.0, 20.0))
            .random_crashes(at_s=start + 320.0, duration_s=200.0,
                            mtbf_s=400.0, mttr_s=60.0))
    runtime = plan.install(system)
    system.run(600.0)
    runtime.detach()
    return system.obs.registry.snapshot()


class TestDeterminism:
    def test_same_seed_same_snapshot(self):
        assert _plan_trial(11) == _plan_trial(11)

    def test_jobs1_and_jobs3_snapshots_identical(self):
        serial = TrialExecutor(jobs=1).map(
            _plan_trial, [(seed,) for seed in SEEDS])
        parallel = TrialExecutor(jobs=3).map(
            _plan_trial, [(seed,) for seed in SEEDS])
        assert MetricsSnapshot.merge(serial) == MetricsSnapshot.merge(parallel)
        for a, b in zip(serial, parallel):
            assert a == b
