"""Fault injection: scripted, stochastic, and partitions."""

import pytest

from repro.devices.node import DeviceNode
from repro.devices.phenomena import UniformField
from repro.devices.sensors import SensorFault
from repro.faults.failures import FailureProcess, FailureProcessConfig
from repro.faults.injector import FaultInjector
from repro.faults.partitions import GeometricPartition, PartitionController
from repro.net.stack import StackConfig
from repro.radio.medium import Medium
from repro.radio.propagation import UnitDiskModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


def device_line(n=4, seed=110):
    sim = Simulator(seed=seed)
    trace = TraceLog()
    medium = Medium(sim, UnitDiskModel(radius_m=25.0), trace)
    config = StackConfig(mac="csma")
    nodes = {}
    for i in range(n):
        node = DeviceNode(sim, medium, i, (i * 20.0, 0.0), config,
                          is_root=(i == 0), trace=trace)
        node.add_sensor("temp", UniformField(20.0))
        node.start()
        nodes[i] = node
    return sim, trace, medium, nodes


class TestFaultInjector:
    def test_scheduled_crash_and_recovery(self):
        sim, trace, medium, nodes = device_line()
        injector = FaultInjector(sim, nodes, trace)
        injector.crash_at(100.0, 2, recover_after=50.0)
        sim.run(until=120.0)
        assert not nodes[2].alive
        sim.run(until=200.0)
        assert nodes[2].alive
        kinds = [fault.kind for fault in injector.injected]
        assert kinds == ["crash", "recover"]

    def test_separate_recover_schedule(self):
        sim, trace, medium, nodes = device_line()
        injector = FaultInjector(sim, nodes, trace)
        injector.crash_at(50.0, 1)
        injector.recover_at(150.0, 1)
        sim.run(until=100.0)
        assert not nodes[1].alive
        sim.run(until=200.0)
        assert nodes[1].alive

    def test_sensor_fault_window(self):
        sim, trace, medium, nodes = device_line()
        injector = FaultInjector(sim, nodes, trace)
        injector.sensor_fault_at(50.0, 3, "temp", SensorFault.DEAD,
                                 clear_after=100.0)
        sim.run(until=60.0)
        assert nodes[3].read("temp") is None
        sim.run(until=200.0)
        assert nodes[3].read("temp") is not None


class TestFailureProcess:
    def test_failures_and_repairs_cycle(self):
        sim, trace, medium, nodes = device_line()
        process = FailureProcess(
            sim, nodes,
            FailureProcessConfig(mtbf_s=500.0, mttr_s=100.0),
            trace,
        )
        process.start()
        sim.run(until=6000.0)
        assert process.failures > 0
        assert process.repairs > 0

    def test_root_is_spared_by_default(self):
        sim, trace, medium, nodes = device_line()
        process = FailureProcess(
            sim, nodes,
            FailureProcessConfig(mtbf_s=100.0, mttr_s=1e9),
            trace,
        )
        process.start()
        sim.run(until=5000.0)
        assert nodes[0].alive

    def test_availability_accounting(self):
        sim, trace, medium, nodes = device_line()
        process = FailureProcess(
            sim, nodes,
            FailureProcessConfig(mtbf_s=1000.0, mttr_s=200.0),
            trace,
        )
        process.start()
        sim.run(until=20_000.0)
        availability = process.fleet_availability(20_000.0, sim.now)
        # MTBF/(MTBF+MTTR) ≈ 0.83; allow wide stochastic slack.
        assert 0.5 < availability < 1.0

    def test_node_availability_one_when_never_failed(self):
        sim, trace, medium, nodes = device_line()
        process = FailureProcess(sim, nodes)
        assert process.node_availability(1, 100.0, 100.0) == 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FailureProcessConfig(mtbf_s=0.0).validate()


class TestPartitions:
    def test_geometric_side_assignment(self):
        partition = GeometricPartition(cut_x=50.0)
        assert partition.side((10.0, 0.0)) == 0
        assert partition.side((60.0, 0.0)) == 1

    def test_apply_cuts_cross_links_only(self):
        sim, trace, medium, nodes = device_line()
        controller = PartitionController(sim, medium, trace)
        sides = controller.apply(GeometricPartition(cut_x=30.0))
        assert sides == {0: 0, 1: 0, 2: 1, 3: 1}
        assert controller.partitioned
        groups = controller.isolated_sides()
        assert sorted(len(g) for g in groups) == [2, 2]
        # Same-side traffic still flows.
        got = []
        sim.run(until=120.0)
        nodes[0].stack.bind(7, lambda d: got.append(d.src))
        nodes[1].stack.send_datagram(0, 7, "x", 4)
        sim.run(until=140.0)
        assert got == [1]

    def test_heal_restores(self):
        sim, trace, medium, nodes = device_line()
        controller = PartitionController(sim, medium, trace)
        controller.apply(GeometricPartition(cut_x=30.0))
        controller.heal()
        assert not controller.partitioned
        assert controller.isolated_sides() == []

    def test_scheduled_partition_with_heal(self):
        sim, trace, medium, nodes = device_line()
        controller = PartitionController(sim, medium, trace)
        controller.apply_at(100.0, GeometricPartition(cut_x=30.0),
                            heal_after=50.0)
        sim.run(until=120.0)
        assert controller.partitioned
        sim.run(until=200.0)
        assert not controller.partitioned
        assert trace.count("partition.applied") == 1
        assert trace.count("partition.healed") == 1
