"""Topology generators and rollout plans."""

import pytest

from repro.deployment.rollout import RolloutPlan, RolloutStage
from repro.deployment.topology import (
    Topology,
    building_topology,
    campus_topology,
    clustered_site_topology,
    grid_topology,
    line_topology,
    random_topology,
)
from repro.sim.kernel import Simulator


class TestGenerators:
    def test_line(self):
        topology = line_topology(5, spacing_m=10.0)
        assert topology.size == 5
        assert topology.positions[4] == (40.0, 0.0)
        assert topology.is_connected(15.0)

    def test_grid(self):
        topology = grid_topology(4, spacing_m=20.0)
        assert topology.size == 16
        assert topology.positions[5] == (20.0, 20.0)
        assert topology.is_connected(25.0)

    def test_random_is_connected_and_deterministic(self):
        a = random_topology(30, area_m=100.0, radio_range_m=30.0, seed=5)
        b = random_topology(30, area_m=100.0, radio_range_m=30.0, seed=5)
        assert a.positions == b.positions
        assert a.is_connected(30.0)

    def test_random_impossible_raises(self):
        with pytest.raises(RuntimeError):
            random_topology(3, area_m=10_000.0, radio_range_m=10.0,
                            max_attempts=3)

    def test_clustered_site_connected(self):
        topology = clustered_site_topology(4, 6, seed=2)
        assert topology.size == 25
        assert topology.is_connected(30.0)

    def test_building(self):
        topology = building_topology(3, 5)
        assert topology.size == 16
        assert topology.is_connected(25.0)

    def test_depth_grows_with_size(self):
        small = line_topology(5).network_depth(25.0)
        large = line_topology(20).network_depth(25.0)
        assert large > small

    def test_root_must_have_position(self):
        with pytest.raises(ValueError):
            Topology(positions={1: (0.0, 0.0)}, root_id=0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            line_topology(0)
        with pytest.raises(ValueError):
            grid_topology(0)
        with pytest.raises(ValueError):
            building_topology(0, 3)
        with pytest.raises(ValueError):
            campus_topology(0, 10)
        with pytest.raises(ValueError):
            campus_topology(3, 0)


class TestCampus:
    def test_exact_size_and_contiguous_domains(self):
        campus = campus_topology(4, 25)
        assert campus.size == 100
        assert campus.name == "campus-4x25"
        assert sorted(campus.domains) == [f"bldg-{b}" for b in range(4)]
        for b in range(4):
            assert campus.domains[f"bldg-{b}"] == list(range(25 * b,
                                                             25 * (b + 1)))

    def test_border_routers_anchor_building_corners(self):
        campus = campus_topology(3, 16, building_span_m=80.0,
                                 building_gap_m=40.0, buildings_per_row=2)
        assert campus.border_routers == {
            "bldg-0": 0, "bldg-1": 16, "bldg-2": 32}
        assert campus.root_id == 0
        # Row-major district layout at pitch span+gap, corners unjittered.
        assert campus.positions[0] == (0.0, 0.0)
        assert campus.positions[16] == (120.0, 0.0)
        assert campus.positions[32] == (0.0, 120.0)

    def test_domain_of(self):
        campus = campus_topology(2, 9)
        assert campus.domain_of(0) == "bldg-0"
        assert campus.domain_of(9) == "bldg-1"
        assert campus.domain_of(99) is None

    def test_nodes_stay_near_their_building(self):
        span, gap, jitter = 90.0, 60.0, 4.0
        campus = campus_topology(4, 25, building_span_m=span,
                                 building_gap_m=gap, jitter_m=jitter,
                                 buildings_per_row=2)
        pitch = span + gap
        for b, members in enumerate(campus.domains.values()):
            origin = ((b % 2) * pitch, (b // 2) * pitch)
            for node_id in members:
                x, y = campus.positions[node_id]
                assert origin[0] - jitter <= x <= origin[0] + span + jitter
                assert origin[1] - jitter <= y <= origin[1] + span + jitter

    def test_deterministic_in_seed(self):
        assert (campus_topology(3, 12, seed=5).positions
                == campus_topology(3, 12, seed=5).positions)
        assert (campus_topology(3, 12, seed=5).positions
                != campus_topology(3, 12, seed=6).positions)


class TestRollout:
    def test_geometric_plan_covers_everything_once(self):
        topology = grid_topology(5)
        plan = RolloutPlan.geometric(topology, pilot_size=3, growth_factor=3)
        plan.validate()
        covered = [n for stage in plan.stages for n in stage.node_ids]
        assert sorted(covered) == topology.node_ids()[1:]
        assert plan.stages[0].size == 3
        assert plan.stages[1].size == 9

    def test_cumulative_size(self):
        topology = grid_topology(4)
        plan = RolloutPlan.geometric(topology, pilot_size=5, growth_factor=2)
        assert plan.cumulative_size(0) == 5
        assert plan.cumulative_size(1) == 15

    def test_duplicate_node_rejected(self):
        topology = line_topology(4)
        plan = RolloutPlan(topology, [
            RolloutStage("a", 0.0, [1, 2]),
            RolloutStage("b", 10.0, [2, 3]),
        ])
        with pytest.raises(ValueError):
            plan.validate()

    def test_out_of_order_stages_rejected(self):
        topology = line_topology(4)
        plan = RolloutPlan(topology, [
            RolloutStage("a", 10.0, [1]),
            RolloutStage("b", 0.0, [2]),
        ])
        with pytest.raises(ValueError):
            plan.validate()

    def test_unknown_node_rejected(self):
        topology = line_topology(3)
        plan = RolloutPlan(topology, [RolloutStage("a", 0.0, [99])])
        with pytest.raises(ValueError):
            plan.validate()

    def test_execute_activates_on_schedule(self, sim):
        topology = line_topology(8)  # 7 non-root -> stages of 2, 4, 1
        plan = RolloutPlan.geometric(topology, pilot_size=2, growth_factor=2,
                                     stage_interval_s=100.0)
        activated = []
        stages_done = []
        plan.execute(sim, activated.append,
                     on_stage_complete=lambda s: stages_done.append(
                         (sim.now, s.name)))
        sim.run(until=50.0)
        assert len(activated) == 2
        sim.run(until=350.0)
        assert sorted(activated) == topology.node_ids()[1:]
        assert [name for _t, name in stages_done] == [
            "stage-0", "stage-1", "stage-2"]
