"""Link-quality model behaviour."""

from repro.radio.propagation import LogDistanceModel, UnitDiskModel, distance


class TestUnitDisk:
    def test_binary_connectivity(self):
        model = UnitDiskModel(radius_m=30.0)
        near = model.rssi_dbm((0, 0), (10, 0), 0.0)
        far = model.rssi_dbm((0, 0), (40, 0), 0.0)
        assert model.reception_probability(near) == 1.0
        assert model.reception_probability(far) == 0.0

    def test_boundary_inclusive(self):
        model = UnitDiskModel(radius_m=30.0)
        edge = model.rssi_dbm((0, 0), (30, 0), 0.0)
        assert model.reception_probability(edge) == 1.0


class TestLogDistance:
    def test_rssi_decreases_with_distance(self):
        model = LogDistanceModel(shadowing_sigma_db=0.0)
        rssis = [
            model.rssi_dbm((0, 0), (d, 0), 0.0) for d in (5, 10, 20, 40, 80)
        ]
        assert rssis == sorted(rssis, reverse=True)

    def test_prr_monotone_in_rssi(self):
        model = LogDistanceModel()
        assert model.reception_probability(-70) > model.reception_probability(-95)

    def test_prr_saturates(self):
        model = LogDistanceModel()
        assert model.reception_probability(-20) > 0.999999
        assert model.reception_probability(-200) == 0.0

    def test_prr_half_at_sensitivity(self):
        model = LogDistanceModel(sensitivity_dbm=-90.0)
        assert abs(model.reception_probability(-90.0) - 0.5) < 1e-9

    def test_shadowing_is_per_link_stable(self):
        model = LogDistanceModel(shadowing_sigma_db=6.0, seed=3)
        first = model.rssi_dbm((0, 0), (30, 0), 0.0)
        second = model.rssi_dbm((0, 0), (30, 0), 0.0)
        assert first == second

    def test_shadowing_is_symmetric(self):
        model = LogDistanceModel(shadowing_sigma_db=6.0, seed=3)
        ab = model.rssi_dbm((0, 0), (30, 0), 0.0)
        ba = model.rssi_dbm((30, 0), (0, 0), 0.0)
        assert ab == ba

    def test_shadowing_differs_across_links(self):
        model = LogDistanceModel(shadowing_sigma_db=6.0, seed=3)
        links = {
            model.rssi_dbm((0, 0), (30, float(k)), 0.0) for k in range(8)
        }
        assert len(links) > 1

    def test_transitional_region_exists(self):
        # Some distance band should have PRR strictly between 5% and 95%.
        model = LogDistanceModel(shadowing_sigma_db=0.0)
        prrs = [
            model.reception_probability(model.rssi_dbm((0, 0), (d, 0), 0.0))
            for d in range(5, 120, 2)
        ]
        assert any(0.05 < p < 0.95 for p in prrs)

    def test_minimum_distance_clamped(self):
        model = LogDistanceModel(shadowing_sigma_db=0.0)
        at_zero = model.rssi_dbm((0, 0), (0, 0), 0.0)
        at_half = model.rssi_dbm((0, 0), (0.5, 0), 0.0)
        assert at_zero == at_half


def test_distance_euclidean():
    assert distance((0, 0), (3, 4)) == 5.0
