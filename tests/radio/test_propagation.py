"""Link-quality model behaviour."""

from hypothesis import given, settings, strategies as st

from repro.radio.propagation import (
    SHADOWING_CLAMP_SIGMA,
    LogDistanceModel,
    UnitDiskModel,
    distance,
)


class TestUnitDisk:
    def test_binary_connectivity(self):
        model = UnitDiskModel(radius_m=30.0)
        near = model.rssi_dbm((0, 0), (10, 0), 0.0)
        far = model.rssi_dbm((0, 0), (40, 0), 0.0)
        assert model.reception_probability(near) == 1.0
        assert model.reception_probability(far) == 0.0

    def test_boundary_inclusive(self):
        model = UnitDiskModel(radius_m=30.0)
        edge = model.rssi_dbm((0, 0), (30, 0), 0.0)
        assert model.reception_probability(edge) == 1.0


class TestLogDistance:
    def test_rssi_decreases_with_distance(self):
        model = LogDistanceModel(shadowing_sigma_db=0.0)
        rssis = [
            model.rssi_dbm((0, 0), (d, 0), 0.0) for d in (5, 10, 20, 40, 80)
        ]
        assert rssis == sorted(rssis, reverse=True)

    def test_prr_monotone_in_rssi(self):
        model = LogDistanceModel()
        assert model.reception_probability(-70) > model.reception_probability(-95)

    def test_prr_saturates(self):
        model = LogDistanceModel()
        assert model.reception_probability(-20) > 0.999999
        assert model.reception_probability(-200) == 0.0

    def test_prr_half_at_sensitivity(self):
        model = LogDistanceModel(sensitivity_dbm=-90.0)
        assert abs(model.reception_probability(-90.0) - 0.5) < 1e-9

    def test_shadowing_is_per_link_stable(self):
        model = LogDistanceModel(shadowing_sigma_db=6.0, seed=3)
        first = model.rssi_dbm((0, 0), (30, 0), 0.0)
        second = model.rssi_dbm((0, 0), (30, 0), 0.0)
        assert first == second

    def test_shadowing_is_symmetric(self):
        model = LogDistanceModel(shadowing_sigma_db=6.0, seed=3)
        ab = model.rssi_dbm((0, 0), (30, 0), 0.0)
        ba = model.rssi_dbm((30, 0), (0, 0), 0.0)
        assert ab == ba

    def test_shadowing_differs_across_links(self):
        model = LogDistanceModel(shadowing_sigma_db=6.0, seed=3)
        links = {
            model.rssi_dbm((0, 0), (30, float(k)), 0.0) for k in range(8)
        }
        assert len(links) > 1

    def test_transitional_region_exists(self):
        # Some distance band should have PRR strictly between 5% and 95%.
        model = LogDistanceModel(shadowing_sigma_db=0.0)
        prrs = [
            model.reception_probability(model.rssi_dbm((0, 0), (d, 0), 0.0))
            for d in range(5, 120, 2)
        ]
        assert any(0.05 < p < 0.95 for p in prrs)

    def test_minimum_distance_clamped(self):
        model = LogDistanceModel(shadowing_sigma_db=0.0)
        at_zero = model.rssi_dbm((0, 0), (0, 0), 0.0)
        at_half = model.rssi_dbm((0, 0), (0.5, 0), 0.0)
        assert at_zero == at_half


def test_distance_euclidean():
    assert distance((0, 0), (3, 4)) == 5.0


coords = st.floats(min_value=0.0, max_value=500.0,
                   allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)


class TestBatchScalarEquivalence:
    """The vectorized paths must be *bitwise* equal to the scalar ones.

    The medium batches neighborhood math through ``rssi_dbm_batch`` /
    ``reception_probability_batch`` when it has several candidates and
    falls back to the scalar calls for singletons — any numeric drift
    between the two would break the trace-identity contract.
    """

    @given(sender=points,
           receivers=st.lists(points, min_size=1, max_size=16),
           tx=st.floats(-25.0, 25.0),
           model_seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_log_distance_batch_bitwise(self, sender, receivers, tx,
                                        model_seed):
        model = LogDistanceModel(shadowing_sigma_db=3.0, seed=model_seed)
        batch = model.rssi_dbm_batch(sender, receivers, tx)
        scalars = [model.rssi_dbm(sender, r, tx) for r in receivers]
        assert batch == scalars
        assert (model.reception_probability_batch(batch)
                == [model.reception_probability(r) for r in batch])

    @given(sender=points,
           receivers=st.lists(points, min_size=1, max_size=16),
           radius=st.floats(1.0, 200.0))
    @settings(max_examples=60, deadline=None)
    def test_unit_disk_batch_bitwise(self, sender, receivers, radius):
        model = UnitDiskModel(radius_m=radius)
        batch = model.rssi_dbm_batch(sender, receivers, 0.0)
        assert batch == [model.rssi_dbm(sender, r, 0.0) for r in receivers]


class TestAudibleRangeBound:
    @given(sender=points, receiver=points,
           tx=st.floats(-25.0, 25.0),
           sigma=st.floats(0.0, 8.0),
           model_seed=st.integers(0, 500))
    @settings(max_examples=100, deadline=None)
    def test_range_is_conservative(self, sender, receiver, tx, sigma,
                                   model_seed):
        """Nothing outside max_audible_range_m can clear the threshold.

        This is the inequality the whole grid index rests on: a cell
        neighborhood sized by this range is a *superset* of the audible
        set, whatever the shadowing draw.
        """
        threshold = -100.0
        model = LogDistanceModel(shadowing_sigma_db=sigma, seed=model_seed)
        if distance(sender, receiver) > model.max_audible_range_m(
                tx, threshold):
            assert model.rssi_dbm(sender, receiver, tx) < threshold

    @given(sigma=st.floats(0.1, 10.0), model_seed=st.integers(0, 500),
           receiver=points)
    @settings(max_examples=60, deadline=None)
    def test_shadowing_clamped(self, sigma, model_seed, receiver):
        model = LogDistanceModel(shadowing_sigma_db=sigma, seed=model_seed)
        deterministic = LogDistanceModel(shadowing_sigma_db=0.0)
        drawn = model.rssi_dbm((0.0, 0.0), receiver, 0.0)
        base = deterministic.rssi_dbm((0.0, 0.0), receiver, 0.0)
        assert abs(drawn - base) <= SHADOWING_CLAMP_SIGMA * sigma + 1e-9

    def test_unit_disk_range_is_radius(self):
        model = UnitDiskModel(radius_m=42.0)
        assert model.max_audible_range_m(0.0, -100.0) == 42.0


class TestShadowingOrderIndependence:
    def test_query_order_does_not_matter(self):
        """Per-link draws are hash-derived, not sequential RNG state.

        Two models with the same seed must agree on every link no
        matter which links were evaluated first — the property that
        lets indexed and brute-force media (which evaluate links in
        different orders) produce identical RSSI values.
        """
        forward = LogDistanceModel(shadowing_sigma_db=5.0, seed=9)
        backward = LogDistanceModel(shadowing_sigma_db=5.0, seed=9)
        links = [((0.0, 0.0), (float(k), 10.0)) for k in range(12)]
        a = [forward.rssi_dbm(s, r, 0.0) for s, r in links]
        b = [backward.rssi_dbm(s, r, 0.0) for s, r in reversed(links)]
        assert a == list(reversed(b))
