"""Cross-technology interference behaviour."""

import pytest

from repro.radio.interference import InterfererConfig, WifiInterferer
from repro.radio.medium import Medium, Radio
from repro.radio.propagation import UnitDiskModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


class TestInterfererConfig:
    def test_mean_gap_matches_duty_cycle(self):
        config = InterfererConfig(duty_cycle=0.5, burst_airtime_s=0.002)
        assert config.mean_gap_s() == pytest.approx(0.002)

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            InterfererConfig(duty_cycle=0.0).mean_gap_s()
        with pytest.raises(ValueError):
            InterfererConfig(duty_cycle=1.0).mean_gap_s()


class TestWifiInterferer:
    def _setup(self, sim, victim_channel, wifi_channel, duty=0.6):
        trace = TraceLog()
        medium = Medium(sim, UnitDiskModel(radius_m=50.0), trace)
        sender = Radio(medium, 1, (0, 0), channel=victim_channel)
        receiver = Radio(medium, 2, (10, 0), channel=victim_channel)
        receiver.set_listening()
        interferer = WifiInterferer(
            sim, medium, 99, (5, 5),
            config=InterfererConfig(wifi_channel=wifi_channel,
                                    duty_cycle=duty),
        )
        return trace, medium, sender, receiver, interferer

    def _run_traffic(self, sim, sender, count=60, gap=0.05):
        for i in range(count):
            sim.schedule(1.0 + i * gap, (lambda: sender.transmit("d", 20)))
        sim.run(until=1.0 + count * gap + 1.0)

    def test_overlapping_interferer_degrades_prr(self):
        sim = Simulator(seed=3)
        trace, medium, sender, receiver, interferer = self._setup(
            sim, victim_channel=18, wifi_channel=6,  # overlapping
        )
        interferer.start()
        self._run_traffic(sim, sender)
        received_with = receiver.frames_received

        sim2 = Simulator(seed=3)
        trace2, medium2, sender2, receiver2, _ = self._setup(
            sim2, victim_channel=18, wifi_channel=6,
        )
        self._run_traffic(sim2, sender2)
        received_without = receiver2.frames_received
        assert received_with < received_without

    def test_non_overlapping_channel_unaffected(self):
        sim = Simulator(seed=3)
        trace, medium, sender, receiver, interferer = self._setup(
            sim, victim_channel=26, wifi_channel=6,  # clear channel
        )
        interferer.start()
        self._run_traffic(sim, sender)
        assert receiver.frames_received == 60

    def test_interferer_frames_are_never_received(self):
        sim = Simulator(seed=3)
        trace, medium, sender, receiver, interferer = self._setup(
            sim, victim_channel=18, wifi_channel=6,
        )
        interferer.start()
        sim.run(until=5.0)
        assert interferer.bursts_sent > 0
        assert receiver.frames_received == 0

    def test_stop_ceases_bursts(self):
        sim = Simulator(seed=3)
        _, _, _, _, interferer = self._setup(sim, 18, 6)
        interferer.start()
        sim.run(until=2.0)
        interferer.stop()
        sent = interferer.bursts_sent
        sim.run(until=10.0)
        assert interferer.bursts_sent == sent
