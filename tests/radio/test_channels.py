"""2.4 GHz channel plan arithmetic."""

import pytest

from repro.radio.channels import (
    IEEE802154_CHANNELS,
    WIFI_CHANNELS,
    clear_802154_channels,
    ieee802154_center_mhz,
    ieee802154_channels_hit_by_wifi,
    wifi_center_mhz,
    wifi_overlaps_802154,
)


class TestChannelPlan:
    def test_channel_counts(self):
        assert len(IEEE802154_CHANNELS) == 16
        assert len(WIFI_CHANNELS) == 13

    def test_known_centers(self):
        assert ieee802154_center_mhz(11) == 2405.0
        assert ieee802154_center_mhz(26) == 2480.0
        assert wifi_center_mhz(1) == 2412.0
        assert wifi_center_mhz(6) == 2437.0

    def test_invalid_channels_rejected(self):
        with pytest.raises(ValueError):
            ieee802154_center_mhz(10)
        with pytest.raises(ValueError):
            wifi_center_mhz(0)

    def test_wifi6_blankets_middle_channels(self):
        hit = ieee802154_channels_hit_by_wifi(6)
        # Wi-Fi 6 is centered at 2437: 802.15.4 channels 16-19 fall inside.
        assert {16, 17, 18, 19} <= hit
        assert 26 not in hit

    def test_each_wifi_channel_hits_about_four(self):
        for wifi in WIFI_CHANNELS:
            assert 3 <= len(ieee802154_channels_hit_by_wifi(wifi)) <= 5

    def test_classic_survivor_set(self):
        # With Wi-Fi 1/6/11 active, the textbook clear channels remain.
        clear = clear_802154_channels(1, 6, 11)
        assert clear == {15, 20, 25, 26}

    def test_overlap_is_symmetric_in_distance(self):
        assert wifi_overlaps_802154(1, 11)
        assert not wifi_overlaps_802154(1, 26)
