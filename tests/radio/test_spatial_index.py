"""The spatial grid index: identity with brute force, invalidation.

The medium's scalability rework (DESIGN.md, "Scaling the medium")
replaced all-pairs scans with a cell grid plus versioned caches.  The
contract is *trace-exact equivalence*: an indexed medium must be
indistinguishable from the brute-force one — same audible sets, same
CCA answers, same collisions, byte for byte.  The property tests here
pin that over random placements; the regression tests pin the cache
invalidation rules (move, power change, attach, link filter) that keep
the caches honest.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.radio.medium import Frame, Medium, Radio
from repro.radio.propagation import LogDistanceModel, UnitDiskModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


def build_pair(positions, model_factory, seed=1, trace=False):
    """The same placement twice: spatially indexed and brute force."""
    out = []
    for spatial in (True, False):
        sim = Simulator(seed=seed)
        medium = Medium(sim, model_factory(),
                        TraceLog(enabled=trace), spatial_index=spatial)
        radios = []
        for node_id, position in enumerate(positions):
            radio = Radio(medium, node_id, position)
            radio.on_receive = lambda frame, rssi: None
            radio.set_listening()
            radios.append(radio)
        out.append((sim, medium, radios))
    return out


def audible_ids(medium, radio):
    return [(r.node_id, rssi) for r, rssi in medium.audible_from(radio)]


coords = st.floats(min_value=0.0, max_value=400.0,
                   allow_nan=False, allow_infinity=False)
placements = st.lists(st.tuples(coords, coords), min_size=2, max_size=20)


class TestIdentityProperties:
    @given(positions=placements, model_seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_audible_from_matches_brute_force(self, positions, model_seed):
        (_, indexed, idx_radios), (_, brute, bf_radios) = build_pair(
            positions,
            lambda: LogDistanceModel(path_loss_exponent=3.5,
                                     shadowing_sigma_db=3.0,
                                     seed=model_seed),
        )
        assert indexed.grid_info()["spatial_index"]
        assert not brute.grid_info()["spatial_index"]
        for ir, br in zip(idx_radios, bf_radios):
            assert audible_ids(indexed, ir) == audible_ids(brute, br)

    @given(positions=placements, radius=st.floats(5.0, 120.0))
    @settings(max_examples=30, deadline=None)
    def test_unit_disk_audible_matches(self, positions, radius):
        (_, indexed, idx_radios), (_, brute, bf_radios) = build_pair(
            positions, lambda: UnitDiskModel(radius_m=radius))
        for ir, br in zip(idx_radios, bf_radios):
            assert audible_ids(indexed, ir) == audible_ids(brute, br)

    @given(positions=st.lists(st.tuples(coords, coords),
                              min_size=4, max_size=14),
           model_seed=st.integers(0, 200),
           sim_seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_traffic_trace_identical(self, positions, model_seed, sim_seed):
        """Overlapping transmissions: CCA, collisions, drops all equal."""
        (isim, indexed, idx_radios), (bsim, brute, bf_radios) = build_pair(
            positions,
            lambda: LogDistanceModel(shadowing_sigma_db=2.0,
                                     seed=model_seed),
            seed=sim_seed, trace=True,
        )
        picker = random.Random(model_seed)
        senders = picker.sample(range(len(positions)),
                                k=min(6, len(positions)))
        for sim, medium, radios in ((isim, indexed, idx_radios),
                                    (bsim, brute, bf_radios)):
            cca = []
            for k, sender in enumerate(senders):
                def send(radio=radios[sender]):
                    cca.append(medium.carrier_busy(radio))
                    medium.transmit(radio, Frame(
                        payload="p", size_bytes=40,
                        channel=radio.channel, sender=radio.node_id))
                # Offsets inside one ~1.6 ms airtime: real contention.
                sim.schedule(0.001 + k * 0.0003, send)
            sim.run()
            medium.trace.records.append(("cca", tuple(cca)))
        assert indexed.trace.records == brute.trace.records

    @given(moves=st.lists(st.tuples(st.integers(0, 7), coords, coords),
                          min_size=1, max_size=10),
           model_seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_identity_survives_moves(self, moves, model_seed):
        """Random relocations between queries never desync the caches."""
        positions = [(40.0 * (i % 4), 40.0 * (i // 4)) for i in range(8)]
        (_, indexed, idx_radios), (_, brute, bf_radios) = build_pair(
            positions,
            lambda: LogDistanceModel(shadowing_sigma_db=2.0,
                                     seed=model_seed),
        )
        # Warm every cache before the first move.
        for ir, br in zip(idx_radios, bf_radios):
            assert audible_ids(indexed, ir) == audible_ids(brute, br)
        for who, x, y in moves:
            idx_radios[who].move_to((x, y))
            bf_radios[who].move_to((x, y))
            for ir, br in zip(idx_radios, bf_radios):
                assert audible_ids(indexed, ir) == audible_ids(brute, br)


class TestCacheInvalidation:
    def _medium(self, sim, **kw):
        model = LogDistanceModel(shadowing_sigma_db=0.0, seed=1)
        return Medium(sim, model, TraceLog(enabled=False), **kw)

    def test_move_invalidates_rssi_and_neighborhoods(self, sim):
        medium = self._medium(sim)
        a = Radio(medium, 1, (0.0, 0.0))
        b = Radio(medium, 2, (1000.0, 0.0))
        b.set_listening()
        assert audible_ids(medium, a) == []
        b.move_to((10.0, 0.0))
        after = audible_ids(medium, a)
        assert [node for node, _ in after] == [2]
        assert after[0][1] == medium.rssi_between(a, b)

    def test_power_change_invalidates(self, sim):
        medium = self._medium(sim)
        a = Radio(medium, 1, (0.0, 0.0), tx_power_dbm=-20.0)
        b = Radio(medium, 2, (150.0, 0.0))
        b.set_listening()
        assert audible_ids(medium, a) == []
        a.set_tx_power(20.0)
        assert [node for node, _ in audible_ids(medium, a)] == [2]
        a.set_tx_power(-20.0)
        assert audible_ids(medium, a) == []

    def test_attach_after_queries_is_visible(self, sim):
        medium = self._medium(sim)
        a = Radio(medium, 1, (0.0, 0.0))
        assert audible_ids(medium, a) == []
        late = Radio(medium, 2, (5.0, 0.0))
        late.set_listening()
        assert [node for node, _ in audible_ids(medium, a)] == [2]

    def test_link_filter_invalidates_both_ways(self, sim):
        medium = self._medium(sim)
        a = Radio(medium, 1, (0.0, 0.0))
        b = Radio(medium, 2, (10.0, 0.0))
        for radio in (a, b):
            radio.set_listening()
        assert [node for node, _ in audible_ids(medium, a)] == [2]
        medium.set_link_filter(lambda s, r: (s, r) == (1, 2))
        assert audible_ids(medium, a) == []
        assert [node for node, _ in audible_ids(medium, b)] == [1]
        medium.set_link_filter(None)
        assert [node for node, _ in audible_ids(medium, a)] == [2]

    def test_rssi_cache_stays_bounded(self, sim):
        medium = self._medium(sim, rssi_cache_max=64)
        radios = [Radio(medium, i, (float(i), 0.0)) for i in range(40)]
        for sender in radios:
            for receiver in radios:
                if sender is not receiver:
                    medium.rssi_between(sender, receiver)
        assert medium.grid_info()["rssi_cache"] <= 64

    def test_stale_rssi_cache_entry_not_served(self, sim):
        medium = self._medium(sim)
        a = Radio(medium, 1, (0.0, 0.0))
        b = Radio(medium, 2, (10.0, 0.0))
        near = medium.rssi_between(a, b)
        b.move_to((200.0, 0.0))
        far = medium.rssi_between(a, b)
        assert far < near


class TestGridEngagement:
    def test_subclass_without_range_falls_back(self, sim):
        """A model overriding only rssi_dbm must not inherit the grid.

        Its base class advertises max_audible_range_m, but that bound
        describes the *base* math — trusting it for arbitrary override
        math could silently drop audible radios.  The capability check
        reads the model's own class dict, so this subclass gets the
        brute-force path (capabilities are own-``__dict__`` opt-ins).
        """
        class Weird(UnitDiskModel):
            def rssi_dbm(self, sender, receiver, tx_power_dbm):
                return -60.0  # everyone hears everyone

        medium = Medium(sim, Weird(radius_m=1.0), TraceLog(enabled=False))
        assert not medium.grid_info()["spatial_index"]
        a = Radio(medium, 1, (0.0, 0.0))
        b = Radio(medium, 2, (5000.0, 0.0))
        b.set_listening()
        assert [node for node, _ in audible_ids(medium, a)] == [2]

    def test_grid_engages_for_builtin_models(self, sim):
        for model in (UnitDiskModel(), LogDistanceModel()):
            medium = Medium(Simulator(seed=1), model,
                            TraceLog(enabled=False))
            Radio(medium, 1, (0.0, 0.0))
            info = medium.grid_info()
            assert info["spatial_index"]
            assert info["cell_size_m"] >= 1.0

    def test_spatial_index_false_disables(self, sim):
        medium = Medium(sim, UnitDiskModel(), TraceLog(enabled=False),
                        spatial_index=False)
        Radio(medium, 1, (0.0, 0.0))
        assert not medium.grid_info()["spatial_index"]

    def test_cells_follow_moves(self, sim):
        medium = Medium(sim, UnitDiskModel(radius_m=30.0),
                        TraceLog(enabled=False))
        a = Radio(medium, 1, (0.0, 0.0))
        before = medium.grid_info()["cells"]
        a.move_to((500.0, 500.0))
        Radio(medium, 2, (0.0, 0.0))
        assert medium.grid_info()["cells"] >= before
        # The moved radio is findable at its new home.
        b = Radio(medium, 3, (505.0, 500.0))
        b.set_listening()
        assert [node for node, _ in audible_ids(medium, a)] == [3]
